package experiment

import (
	"strings"
	"testing"

	"socialrec/internal/dp"
	"socialrec/internal/generator"
	"socialrec/internal/similarity"
)

func tinyRunner(t *testing.T) *Runner {
	t.Helper()
	ds, _, err := BuildDataset(generator.TinyTest(3))
	if err != nil {
		t.Fatal(err)
	}
	clusters, _ := ClusterSocial(ds, 3, 1)
	eval := SampleUsers(ds.Social.NumUsers(), 80, 2)
	r, err := NewRunner(ds, similarity.CommonNeighbors{}, clusters, eval)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunnerValidation(t *testing.T) {
	ds, _, err := BuildDataset(generator.TinyTest(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(ds, similarity.CommonNeighbors{}, nil, []int32{0, 0}); err == nil {
		t.Error("duplicate eval users should fail")
	}
	if _, err := NewRunner(ds, similarity.CommonNeighbors{}, nil, []int32{int32(ds.Social.NumUsers())}); err == nil {
		t.Error("out-of-range eval user should fail")
	}
}

func TestExactScoresPerfectNDCG(t *testing.T) {
	r := tinyRunner(t)
	res := r.EvaluateExact([]int{10, 50})
	for _, n := range []int{10, 50} {
		if got := res.Mean(n); got != 1 {
			t.Errorf("exact NDCG@%d = %v, want 1", n, got)
		}
	}
}

func TestClusterNoNoiseBeatsStrongNoise(t *testing.T) {
	r := tinyRunner(t)
	inf, err := r.EvaluateCluster(dp.Inf, 1, []int{50})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := r.EvaluateCluster(dp.Epsilon(0.01), 1, []int{50})
	if err != nil {
		t.Fatal(err)
	}
	if inf.Mean(50) <= strong.Mean(50) {
		t.Errorf("ε=∞ (%v) should beat ε=0.01 (%v)", inf.Mean(50), strong.Mean(50))
	}
	if inf.Mean(50) < 0.8 {
		t.Errorf("approximation-only NDCG@50 = %v, want high", inf.Mean(50))
	}
}

func TestClusterRequiresClustering(t *testing.T) {
	ds, _, err := BuildDataset(generator.TinyTest(3))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ds, similarity.CommonNeighbors{}, nil, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.EvaluateCluster(dp.Epsilon(1), 1, []int{10}); err == nil {
		t.Error("missing clustering should fail")
	}
}

func TestBaselineMechanismsRun(t *testing.T) {
	r := tinyRunner(t)
	ns := []int{10}
	if _, err := r.EvaluateNOU(dp.Epsilon(1), 1, ns); err != nil {
		t.Errorf("NOU: %v", err)
	}
	if _, err := r.EvaluateNOE(dp.Epsilon(1), 1, ns); err != nil {
		t.Errorf("NOE: %v", err)
	}
	if _, err := r.EvaluateGS(dp.Epsilon(1), 1, ns); err != nil {
		t.Errorf("GS: %v", err)
	}
	if _, err := r.EvaluateLRM(dp.Epsilon(1), 40, 1, ns); err != nil {
		t.Errorf("LRM: %v", err)
	}
}

func TestResultStats(t *testing.T) {
	res := &Result{NDCG: map[int][]float64{10: {1, 0, 1, 0}}}
	if res.Mean(10) != 0.5 {
		t.Errorf("Mean = %v", res.Mean(10))
	}
	if res.Std(10) != 0.5 {
		t.Errorf("Std = %v", res.Std(10))
	}
}

func TestSampleUsers(t *testing.T) {
	s := SampleUsers(100, 10, 3)
	if len(s) != 10 {
		t.Fatalf("sample size = %d", len(s))
	}
	seen := make(map[int32]bool)
	for i, u := range s {
		if u < 0 || u >= 100 {
			t.Fatalf("sample out of range: %d", u)
		}
		if seen[u] {
			t.Fatal("duplicate in sample")
		}
		seen[u] = true
		if i > 0 && s[i-1] >= u {
			t.Fatal("sample not sorted")
		}
	}
	all := SampleUsers(5, 10, 3)
	if len(all) != 5 {
		t.Errorf("oversized sample should return everyone; got %d", len(all))
	}
}

func TestNDCGSweepSmoke(t *testing.T) {
	sw, err := NDCGSweep(generator.TinyTest(5),
		[]dp.Epsilon{dp.Inf, 0.1}, []int{10}, Opts{Repeats: 1, EvalSample: 40, LouvainRuns: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Measures) != 4 {
		t.Fatalf("measures = %v", sw.Measures)
	}
	for _, m := range sw.Measures {
		infCell := sw.Cells[m][0][0]
		noisy := sw.Cells[m][1][0]
		if infCell.Mean < noisy.Mean {
			t.Errorf("%s: ε=∞ (%v) below ε=0.1 (%v)", m, infCell.Mean, noisy.Mean)
		}
	}
	out := sw.Format()
	for _, needle := range []string{"NDCG@10", "AA", "CN", "GD", "KZ", "inf"} {
		if !strings.Contains(out, needle) {
			t.Errorf("formatted sweep missing %q", needle)
		}
	}
}

func TestDegreeVsAccuracySmoke(t *testing.T) {
	da, err := DegreeVsAccuracy(generator.TinyTest(5), Opts{EvalSample: 100, LouvainRuns: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(da.Points) == 0 {
		t.Fatal("no points")
	}
	if c := da.Correlation(); c <= 0 {
		t.Errorf("degree-accuracy correlation = %v, want positive (paper Fig. 3)", c)
	}
	if !strings.Contains(da.Format(), "degree") {
		t.Error("format missing degree rows")
	}
}

func TestBaselineComparisonSmoke(t *testing.T) {
	bl, err := BaselineComparison(generator.TinyTest(5), []dp.Epsilon{1.0}, 30,
		Opts{Repeats: 1, EvalSample: 40, LouvainRuns: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	byMech := make(map[string]float64)
	for _, c := range bl.Cells {
		byMech[c.Mechanism] = c.NDCG.Mean
	}
	// The paper's Fig. 4 ordering: cluster beats every baseline, and NOU
	// is essentially random.
	for _, m := range []string{"noe", "gs", "lrm", "nou"} {
		if byMech["cluster"] <= byMech[m] {
			t.Errorf("cluster (%v) should beat %s (%v)", byMech["cluster"], m, byMech[m])
		}
	}
	if !strings.Contains(bl.Format(), "cluster") {
		t.Error("format missing mechanisms")
	}
}

func TestClusterStatsSmoke(t *testing.T) {
	cr, err := ClusterStats(generator.TinyTest(5), Opts{LouvainRuns: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cr.NumClusters < 2 {
		t.Errorf("clusters = %d", cr.NumClusters)
	}
	if cr.Modularity <= 0 {
		t.Errorf("modularity = %v", cr.Modularity)
	}
	if !strings.Contains(cr.Format(), "modularity") {
		t.Error("format missing modularity")
	}
}

func TestEvaluateClusterAllMetrics(t *testing.T) {
	r := tinyRunner(t)
	rep, err := r.EvaluateClusterAllMetrics(dp.Inf, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	// At eps=inf with tiny clusters the approximation is good but not
	// perfect; all three metrics must be sane and NDCG must not fall
	// below precision (equal-utility swaps cost precision only).
	if rep.NDCG <= 0 || rep.NDCG > 1 || rep.Precision < 0 || rep.Precision > 1 {
		t.Fatalf("metrics out of range: %+v", rep)
	}
	if rep.NDCG < rep.Precision-1e-9 {
		t.Errorf("NDCG (%v) below precision (%v): §2.4 inversion", rep.NDCG, rep.Precision)
	}
	// Without a clustering the call must fail.
	ds, _, err := BuildDataset(generator.TinyTest(3))
	if err != nil {
		t.Fatal(err)
	}
	bare, err := NewRunner(ds, similarity.CommonNeighbors{}, nil, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.EvaluateClusterAllMetrics(dp.Inf, 1, 5); err == nil {
		t.Error("missing clustering should fail")
	}
}

func TestTable1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the full-scale presets")
	}
	out, err := Table1(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"lastfm-like", "flixster-like", "|E_p|"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Table1 output missing %q", needle)
		}
	}
}
