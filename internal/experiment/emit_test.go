package experiment

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"socialrec/internal/dp"
	"socialrec/internal/generator"
)

func TestSweepWriteCSV(t *testing.T) {
	sw, err := NDCGSweep(generator.TinyTest(5),
		[]dp.Epsilon{dp.Inf, 0.5}, []int{10, 50}, Opts{Repeats: 1, EvalSample: 30, LouvainRuns: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sw.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 4 measures × 2 eps × 2 N.
	if want := 1 + 4*2*2; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	if strings.Join(rows[0], ",") != "dataset,measure,epsilon,n,ndcg_mean,ndcg_std" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "tiny-test" || rows[1][2] != "inf" {
		t.Errorf("first row = %v", rows[1])
	}
}

func TestDegreeAccuracyWriteCSV(t *testing.T) {
	da := &DegreeAccuracy{
		Dataset: "t",
		Points:  []DegreePoint{{User: 3, Degree: 7, NDCG: 0.5}},
	}
	var buf bytes.Buffer
	if err := da.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][1] != "3" || rows[1][2] != "7" {
		t.Errorf("rows = %v", rows)
	}
}

func TestBaselinesWriteCSV(t *testing.T) {
	bl := &Baselines{
		Dataset: "t",
		Cells: []BaselineCell{
			{Mechanism: "cluster", Eps: 1.0, NDCG: Cell{Mean: 0.9, Std: 0.01}},
			{Mechanism: "nou", Eps: 1.0, NDCG: Cell{Mean: 0.1, Std: 0.0}},
		},
	}
	var buf bytes.Buffer
	if err := bl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[1][1] != "cluster" || rows[2][1] != "nou" {
		t.Errorf("rows = %v", rows)
	}
}
