package experiment

import (
	"math"
	"strings"
	"testing"

	"socialrec/internal/dp"
)

func TestDecomposeError(t *testing.T) {
	r := tinyRunner(t)
	d, err := r.DecomposeError(dp.Epsilon(0.5), 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.ApproxNDCG) != len(r.EvalUsers) || len(d.PredictedPE) != len(r.EvalUsers) {
		t.Fatal("per-user slices wrong length")
	}
	// The approximation-only score must dominate the noisy score on
	// average (noise can only hurt in expectation).
	var am, nm float64
	for k := range d.ApproxNDCG {
		am += d.ApproxNDCG[k]
		nm += d.NoisyNDCG[k]
	}
	if am < nm {
		t.Errorf("approx mean %v below noisy mean %v", am, nm)
	}
	// Predictions are positive for users with any similarity mass.
	anyPE := false
	for _, pe := range d.PredictedPE {
		if pe < 0 {
			t.Fatal("negative predicted perturbation error")
		}
		if pe > 0 {
			anyPE = true
		}
	}
	if !anyPE {
		t.Error("no user has predicted perturbation error")
	}
	out := d.Format()
	for _, needle := range []string{"approximation", "perturbation", "signal-to-noise"} {
		if !strings.Contains(out, needle) {
			t.Errorf("format missing %q", needle)
		}
	}
}

func TestDecomposePredictionScalesWithEps(t *testing.T) {
	r := tinyRunner(t)
	strong, err := r.DecomposeError(dp.Epsilon(0.1), 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := r.DecomposeError(dp.Epsilon(1.0), 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 5: expected perturbation error is ∝ 1/ε.
	for k := range strong.PredictedPE {
		if weak.PredictedPE[k] == 0 {
			continue
		}
		ratio := strong.PredictedPE[k] / weak.PredictedPE[k]
		if math.Abs(ratio-10) > 1e-9 {
			t.Fatalf("PE ratio = %v, want exactly 10 (1/ε scaling)", ratio)
		}
	}
}

func TestDecomposeInfEpsHasNoPE(t *testing.T) {
	r := tinyRunner(t)
	d, err := r.DecomposeError(dp.Inf, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range d.PredictedPE {
		if pe != 0 {
			t.Fatal("ε = ∞ must predict zero perturbation error")
		}
	}
	if !math.IsInf(d.MeanSNR(), 1) {
		t.Errorf("SNR at ε=∞ = %v, want +Inf", d.MeanSNR())
	}
}
