package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the sweep as tidy CSV (one measurement per row:
// dataset, measure, epsilon, n, mean, std), the format plotting tools
// ingest directly to redraw the paper's Figs. 1 and 2.
func (s *Sweep) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "measure", "epsilon", "n", "ndcg_mean", "ndcg_std"}); err != nil {
		return err
	}
	for _, m := range s.Measures {
		for ei, e := range s.Eps {
			for ni, n := range s.Ns {
				c := s.Cells[m][ei][ni]
				rec := []string{
					s.Dataset,
					m,
					epsLabel(e),
					strconv.Itoa(n),
					formatFloat(c.Mean),
					formatFloat(c.Std),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the per-user degree/NDCG points behind Fig. 3 as tidy CSV.
func (d *DegreeAccuracy) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "user", "degree", "ndcg50"}); err != nil {
		return err
	}
	for _, p := range d.Points {
		rec := []string{
			d.Dataset,
			strconv.Itoa(int(p.User)),
			strconv.Itoa(p.Degree),
			formatFloat(p.NDCG),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Fig. 4 mechanism comparison as tidy CSV.
func (bl *Baselines) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "mechanism", "epsilon", "ndcg50_mean", "ndcg50_std"}); err != nil {
		return err
	}
	for _, c := range bl.Cells {
		rec := []string{
			bl.Dataset,
			c.Mechanism,
			epsLabel(c.Eps),
			formatFloat(c.NDCG.Mean),
			formatFloat(c.NDCG.Std),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(f float64) string {
	return fmt.Sprintf("%.6f", f)
}
