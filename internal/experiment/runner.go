// Package experiment provides the evaluation harness behind the paper's
// experimental section (§6): it wires datasets, similarity measures,
// clusterings and private mechanisms together, evaluates NDCG@N over a set
// of evaluation users, and regenerates every table and figure of the paper
// (see figures.go).
package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"socialrec/internal/community"
	"socialrec/internal/core"
	"socialrec/internal/dataset"
	"socialrec/internal/dp"
	"socialrec/internal/mechanism"
	"socialrec/internal/metrics"
	"socialrec/internal/similarity"
)

// Runner evaluates private mechanisms against the exact recommender on a
// fixed dataset, similarity measure, clustering and evaluation-user sample.
// Construction precomputes the evaluation users' similarity vectors and
// exact utilities once; each Evaluate* call then costs only the mechanism
// under test.
type Runner struct {
	DS       *dataset.Dataset
	Measure  similarity.Measure
	Clusters *community.Clustering

	EvalUsers []int32
	evalSims  []similarity.Scores
	truth     [][]float64

	// Lazily computed, shared across evaluations.
	allSims      []similarity.Scores
	maxInfluence float64
	haveMaxInf   bool
}

// NewRunner precomputes the evaluation state. evalUsers must be distinct,
// valid user ids; clusters may be nil if only mechanisms that do not need a
// clustering will be evaluated.
func NewRunner(ds *dataset.Dataset, m similarity.Measure, clusters *community.Clustering, evalUsers []int32) (*Runner, error) {
	return NewRunnerWithSims(ds, m, clusters, evalUsers, nil)
}

// NewRunnerWithSims is NewRunner with the evaluation users' similarity
// vectors already computed (e.g. resumed from a pipeline checkpoint);
// evalSims must be parallel to evalUsers. A nil evalSims computes them
// here, exactly as NewRunner does.
func NewRunnerWithSims(ds *dataset.Dataset, m similarity.Measure, clusters *community.Clustering, evalUsers []int32, evalSims []similarity.Scores) (*Runner, error) {
	seen := make(map[int32]struct{}, len(evalUsers))
	for _, u := range evalUsers {
		if u < 0 || int(u) >= ds.Social.NumUsers() {
			return nil, fmt.Errorf("experiment: eval user %d out of range [0, %d)", u, ds.Social.NumUsers())
		}
		if _, dup := seen[u]; dup {
			return nil, fmt.Errorf("experiment: duplicate eval user %d", u)
		}
		seen[u] = struct{}{}
	}
	if evalSims != nil && len(evalSims) != len(evalUsers) {
		return nil, fmt.Errorf("experiment: %d similarity vectors for %d eval users", len(evalSims), len(evalUsers))
	}
	r := &Runner{
		DS:        ds,
		Measure:   m,
		Clusters:  clusters,
		EvalUsers: append([]int32(nil), evalUsers...),
	}
	if evalSims != nil {
		r.evalSims = evalSims
	} else {
		r.evalSims = similarity.ComputeAll(ds.Social, m, r.EvalUsers, 0)
	}
	r.truth = make([][]float64, len(r.EvalUsers))
	for k := range r.truth {
		r.truth[k] = make([]float64, ds.Prefs.NumItems())
	}
	mechanism.NewExact(ds.Prefs).Utilities(r.EvalUsers, r.evalSims, r.truth)
	return r, nil
}

// AllSims returns (computing on first use) the similarity vectors of every
// user in the graph, needed by the GS comparator and the NOU sensitivity.
func (r *Runner) AllSims() []similarity.Scores {
	if r.allSims == nil {
		users := make([]int32, r.DS.Social.NumUsers())
		for i := range users {
			users[i] = int32(i)
		}
		r.allSims = similarity.ComputeAll(r.DS.Social, r.Measure, users, 0)
	}
	return r.allSims
}

// MaxInfluence returns (computing on first use) Δ_A = max_v Σ_u sim(u, v).
func (r *Runner) MaxInfluence() float64 {
	if !r.haveMaxInf {
		var max float64
		for _, s := range r.AllSims() {
			if t := s.Sum(); t > max {
				max = t
			}
		}
		r.maxInfluence = max
		r.haveMaxInf = true
	}
	return r.maxInfluence
}

// Truth returns the exact utility row of evaluation user index k.
func (r *Runner) Truth(k int) []float64 { return r.truth[k] }

// Result holds the per-evaluation-user NDCG@N scores of one mechanism run.
type Result struct {
	Mechanism string
	Eps       dp.Epsilon
	// NDCG maps each requested N to per-user scores parallel to the
	// runner's EvalUsers.
	NDCG map[int][]float64
}

// Mean returns the average NDCG@n over evaluation users.
func (res *Result) Mean(n int) float64 { return metrics.Mean(res.NDCG[n]) }

// Std returns the standard deviation of NDCG@n over evaluation users.
func (res *Result) Std(n int) float64 { return metrics.Std(res.NDCG[n]) }

// score runs the estimator over the evaluation users in bounded-memory
// chunks and scores NDCG at every requested N.
func (r *Runner) score(est core.Estimator, eps dp.Epsilon, ns []int) *Result {
	res := &Result{Mechanism: est.Name(), Eps: eps, NDCG: make(map[int][]float64, len(ns))}
	for _, n := range ns {
		res.NDCG[n] = make([]float64, len(r.EvalUsers))
	}
	maxN := 0
	for _, n := range ns {
		if n > maxN {
			maxN = n
		}
	}
	const chunk = 128
	ni := r.DS.Prefs.NumItems()
	rows := make([][]float64, chunk)
	for i := range rows {
		rows[i] = make([]float64, ni)
	}
	for start := 0; start < len(r.EvalUsers); start += chunk {
		end := start + chunk
		if end > len(r.EvalUsers) {
			end = len(r.EvalUsers)
		}
		batch := r.EvalUsers[start:end]
		buf := rows[:len(batch)]
		for i := range buf {
			clear(buf[i])
		}
		est.Utilities(batch, r.evalSims[start:end], buf)
		for i := range batch {
			list := core.TopN(buf[i], maxN, negInf())
			for _, n := range ns {
				l := list
				if len(l) > n {
					l = l[:n]
				}
				res.NDCG[n][start+i] = metrics.NDCGAtN(l, r.truth[start+i], n)
			}
		}
	}
	return res
}

func negInf() float64 { return math.Inf(-1) }

// EvaluateCluster runs the paper's cluster mechanism (Algorithm 1) at the
// given budget and scores NDCG at every n in ns. seed drives the Laplace
// noise only; the clustering is fixed in the runner.
func (r *Runner) EvaluateCluster(eps dp.Epsilon, seed int64, ns []int) (*Result, error) {
	if r.Clusters == nil {
		return nil, fmt.Errorf("experiment: runner has no clustering")
	}
	est, err := mechanism.NewCluster(r.Clusters, r.DS.Prefs, eps, dp.SourceFor(eps, seed))
	if err != nil {
		return nil, err
	}
	return r.score(est, eps, ns), nil
}

// EvaluateExact scores the non-private recommender (trivially 1.0 at every
// N; useful as a harness self-check).
func (r *Runner) EvaluateExact(ns []int) *Result {
	return r.score(mechanism.NewExact(r.DS.Prefs), dp.Inf, ns)
}

// MetricReport holds the §2.4 metric comparison for one mechanism run.
type MetricReport struct {
	NDCG      float64
	Precision float64
	Recall    float64
}

// EvaluateClusterAllMetrics runs the cluster mechanism once and scores it
// with NDCG@n *and* precision/recall@n, reproducing the paper's §2.4
// argument that set-overlap metrics over-penalize private rankings: a
// private list that swaps equal-utility items or trades a tail item for an
// equally useful substitute loses precision but not NDCG.
func (r *Runner) EvaluateClusterAllMetrics(eps dp.Epsilon, seed int64, n int) (*MetricReport, error) {
	if r.Clusters == nil {
		return nil, fmt.Errorf("experiment: runner has no clustering")
	}
	est, err := mechanism.NewCluster(r.Clusters, r.DS.Prefs, eps, dp.SourceFor(eps, seed))
	if err != nil {
		return nil, err
	}
	rep := &MetricReport{}
	const chunk = 128
	ni := r.DS.Prefs.NumItems()
	rows := make([][]float64, chunk)
	for i := range rows {
		rows[i] = make([]float64, ni)
	}
	for start := 0; start < len(r.EvalUsers); start += chunk {
		end := start + chunk
		if end > len(r.EvalUsers) {
			end = len(r.EvalUsers)
		}
		batch := r.EvalUsers[start:end]
		buf := rows[:len(batch)]
		for i := range buf {
			clear(buf[i])
		}
		est.Utilities(batch, r.evalSims[start:end], buf)
		for i := range batch {
			list := core.TopN(buf[i], n, negInf())
			rep.NDCG += metrics.NDCGAtN(list, r.truth[start+i], n)
			p, rc := metrics.PrecisionRecallAtN(list, r.truth[start+i], n)
			rep.Precision += p
			rep.Recall += rc
		}
	}
	cnt := float64(len(r.EvalUsers))
	rep.NDCG /= cnt
	rep.Precision /= cnt
	rep.Recall /= cnt
	return rep, nil
}

// EvaluateNOU runs the Noise-on-Utility strawman.
func (r *Runner) EvaluateNOU(eps dp.Epsilon, seed int64, ns []int) (*Result, error) {
	est, err := mechanism.NewNOU(r.DS.Prefs, r.MaxInfluence(), eps, dp.SourceFor(eps, seed))
	if err != nil {
		return nil, err
	}
	return r.score(est, eps, ns), nil
}

// EvaluateNOE runs the Noise-on-Edges strawman.
func (r *Runner) EvaluateNOE(eps dp.Epsilon, seed int64, ns []int) (*Result, error) {
	est, err := mechanism.NewNOE(r.DS.Prefs, eps, seed)
	if err != nil {
		return nil, err
	}
	return r.score(est, eps, ns), nil
}

// EvaluateGS runs the Group-and-Smooth comparator.
func (r *Runner) EvaluateGS(eps dp.Epsilon, seed int64, ns []int) (*Result, error) {
	est, err := mechanism.NewGS(r.DS.Prefs, r.EvalUsers, r.evalSims, r.AllSims(), mechanism.GSConfig{
		Eps:          eps,
		MaxInfluence: r.MaxInfluence(),
		Seed:         seed,
	})
	if err != nil {
		return nil, err
	}
	return r.score(est, eps, ns), nil
}

// EvaluateLRM runs the Low-Rank Mechanism comparator with the given rank
// (0 selects the default).
func (r *Runner) EvaluateLRM(eps dp.Epsilon, rank int, seed int64, ns []int) (*Result, error) {
	est, err := mechanism.NewLRM(r.DS.Social, r.DS.Prefs, r.Measure, mechanism.LRMConfig{
		Eps:  eps,
		Rank: rank,
		Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return r.score(est, eps, ns), nil
}

// SampleUsers draws a uniform sample (without replacement) of size n from
// the user population, sorted ascending, mirroring the paper's 10,000-user
// Flixster evaluation sample. If n >= the population, all users are
// returned. The sample is a deterministic function of seed via the
// dp.NewRand stream (identical to the historical rand.NewSource stream, so
// existing seeds reproduce existing samples).
func SampleUsers(numUsers, n int, seed int64) []int32 {
	return SampleUsersFrom(dp.NewRand(seed), numUsers, n)
}

// SampleUsersFrom is SampleUsers with the random source threaded
// explicitly, for callers that manage seeding themselves (the checkpointed
// pipeline's sampling stage). No package-global randomness is consumed.
func SampleUsersFrom(rng *rand.Rand, numUsers, n int) []int32 {
	if n >= numUsers {
		all := make([]int32, numUsers)
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	perm := rng.Perm(numUsers)[:n]
	out := make([]int32, n)
	for i, u := range perm {
		out[i] = int32(u)
	}
	sortInt32(out)
	return out
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// ClusterSocial reproduces the paper's clustering protocol (§6.2): Louvain
// with multi-level refinement, best modularity of `runs` runs (the paper
// uses 10).
func ClusterSocial(ds *dataset.Dataset, runs int, seed int64) (*community.Clustering, float64) {
	return community.BestOf(ds.Social, runs, seed, community.Options{})
}
