// Package faults is a deterministic fault-injection substrate for testing
// the serving tier's failure paths: disk corruption, partial writes, slow
// or failing I/O, and handler crashes.
//
// The paper's production pattern — release once, serve anywhere, never
// re-touch the raw preference data — only holds if the serving process
// survives those failures without falling back to the raw preference
// graph. The failure paths that protect that invariant (crash-safe release
// persistence, recovery from torn files, panic containment, load shedding)
// are exactly the paths that ordinary tests never execute. This package
// makes them executable on demand and, crucially, deterministically: every
// fault decision derives from an explicit seed and a per-point counter, so
// a failing schedule replays bit-for-bit and a CI failure reproduces
// locally with the same seed.
//
// The package has three layers:
//
//   - A Registry of named injection Points. Production code consults a
//     (possibly nil) *Registry at its fault points; tests and the
//     -chaos flag of cmd/recserve arm Plans on those points. A nil or
//     unarmed registry costs one nil check / one mutex acquisition and
//     injects nothing.
//   - io.Reader / io.Writer wrappers (io.go): fail after N bytes, short
//     writes, per-op delays, registry-driven flakiness.
//   - An fs-like file abstraction (fs.go): the tiny slice of the os
//     package the release store needs, with a real implementation (OS)
//     and a fault-injecting wrapper (NewFS) that can fail opens, writes,
//     syncs and renames on schedule — simulating crashes mid-persist
//     without crashing the test process.
//
// faults never touches math/rand: its deterministic stream is a local
// SplitMix64, so arming a fault schedule can never perturb an engine's
// seeded noise or clustering randomness.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrInjected is the sentinel all injected failures wrap; test code and
// callers distinguish injected faults from real ones with errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// Point names one injection site (e.g. "fs.sync", "http.handler").
// Production code chooses stable, documented names; tests arm them.
type Point string

// Standard points consulted by this repository's serving stack. Arbitrary
// additional points are legal; these constants exist so tests and the
// -chaos flag spell them consistently.
const (
	// PointFSOpen .. PointFSSyncDir are consulted by the fault-injecting
	// filesystem (NewFS) before each corresponding operation.
	PointFSOpen    Point = "fs.open"
	PointFSCreate  Point = "fs.create"
	PointFSRead    Point = "fs.read"
	PointFSWrite   Point = "fs.write"
	PointFSSync    Point = "fs.sync"
	PointFSClose   Point = "fs.close"
	PointFSRename  Point = "fs.rename"
	PointFSRemove  Point = "fs.remove"
	PointFSReadDir Point = "fs.readdir"
	PointFSSyncDir Point = "fs.syncdir"
	// PointHandler is consulted by internal/server's chaos middleware once
	// per hardened request.
	PointHandler Point = "http.handler"
	// PointShardCall is consulted by internal/router before each proxied
	// attempt to a shard replica, so chaos tests can fail or delay the
	// router→shard hop without touching the shard processes themselves.
	PointShardCall Point = "router.shard_call"
)

// Plan describes when an armed point fires and what happens when it does.
// The zero Plan fires on every check with ErrInjected — the simplest
// always-fail schedule.
type Plan struct {
	// After skips the first After checks before the plan may fire. An
	// After of 3 with Prob 0 fires first on the 4th check — "the write
	// succeeds three times, then the disk dies".
	After uint64
	// Prob fires the plan on each eligible check with this probability,
	// drawn from the point's seeded deterministic stream. 0 means fire on
	// every eligible check (deterministic schedules); use a tiny Prob for
	// background chaos.
	Prob float64
	// Times caps how often the plan fires; 0 is unlimited. A Times of 1
	// models a transient fault that a retry survives.
	Times uint64
	// Err is the error injected when the plan fires; nil selects
	// ErrInjected. The injected error always wraps ErrInjected either way.
	Err error
	// Delay, when non-zero, sleeps this long on every firing before
	// returning (latency injection). A Delay may accompany an Err.
	Delay time.Duration
	// DelayOnly fires the Delay without returning an error — pure latency
	// injection for overload and timeout testing.
	DelayOnly bool
	// Panic makes the firing panic with an InjectedPanic instead of
	// returning an error, for exercising recovery middleware.
	Panic bool
}

// InjectedPanic is the value a panicking plan panics with, so recovery
// middleware and tests can recognize deliberate crashes.
type InjectedPanic struct{ Point Point }

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at %s", p.Point)
}

// armed is one point's armed plan plus its deterministic decision state.
type armed struct {
	plan   Plan
	rng    splitmix64
	checks uint64
	fired  uint64
}

// Registry maps points to armed plans. The zero value is not usable; New
// constructs one. All methods are safe for concurrent use, and all methods
// on a nil *Registry are no-ops that inject nothing — production code can
// plumb a nil registry through unconditionally.
type Registry struct {
	seed int64
	mu   sync.Mutex
	pts  map[Point]*armed
}

// New returns an empty registry whose fault schedules derive from seed.
// The same seed, arming sequence and check sequence reproduce the same
// faults.
func New(seed int64) *Registry {
	return &Registry{seed: seed, pts: make(map[Point]*armed)}
}

// Arm installs (or replaces) the plan for a point, resetting its counters.
func (r *Registry) Arm(p Point, plan Plan) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pts[p] = &armed{plan: plan, rng: newSplitmix64(r.seed, string(p))}
}

// Disarm removes the plan for a point.
func (r *Registry) Disarm(p Point) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pts, p)
}

// DisarmAll removes every armed plan.
func (r *Registry) DisarmAll() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pts = make(map[Point]*armed)
}

// Points returns the currently armed points, sorted.
func (r *Registry) Points() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Point, 0, len(r.pts))
	for p := range r.pts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Checks reports how many times a point has been consulted.
func (r *Registry) Checks(p Point) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if a, ok := r.pts[p]; ok {
		return a.checks
	}
	return 0
}

// Fired reports how many times a point's plan has fired.
func (r *Registry) Fired(p Point) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if a, ok := r.pts[p]; ok {
		return a.fired
	}
	return 0
}

// Check consults the point: it returns nil when the point is unarmed or
// its plan does not fire, sleeps when the firing plan carries a Delay, and
// otherwise returns the plan's injected error (wrapping ErrInjected). A
// firing plan with Panic set panics with an InjectedPanic instead.
func (r *Registry) Check(p Point) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	a, ok := r.pts[p]
	if !ok {
		r.mu.Unlock()
		return nil
	}
	a.checks++
	fire := a.checks > a.plan.After &&
		(a.plan.Times == 0 || a.fired < a.plan.Times) &&
		(a.plan.Prob <= 0 || a.rng.float64() < a.plan.Prob)
	if fire {
		a.fired++
	}
	plan := a.plan
	r.mu.Unlock()
	if !fire {
		return nil
	}
	if plan.Delay > 0 {
		time.Sleep(plan.Delay)
	}
	if plan.DelayOnly {
		return nil
	}
	if plan.Panic {
		panic(InjectedPanic{Point: p})
	}
	if plan.Err != nil {
		return fmt.Errorf("%w: %s: %w", ErrInjected, p, plan.Err)
	}
	return fmt.Errorf("%w: %s", ErrInjected, p)
}

// splitmix64 is a tiny deterministic PRNG (Steele, Lea & Flood's SplitMix64
// finalizer). It exists so fault schedules never touch math/rand: the
// repository confines math/rand to internal/dp, and fault injection must
// not perturb any engine's seeded noise stream.
type splitmix64 struct{ state uint64 }

// newSplitmix64 derives an independent stream per (seed, point) pair via an
// FNV-1a hash of the point name folded into the seed.
func newSplitmix64(seed int64, point string) splitmix64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(point); i++ {
		h ^= uint64(point[i])
		h *= fnvPrime
	}
	return splitmix64{state: h ^ uint64(seed)}
}

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
