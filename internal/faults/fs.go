package faults

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the slice of *os.File the release store needs. Sync is explicit
// because crash safety depends on it: a write that was never synced may
// vanish in a crash, and the store's tests inject exactly that.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's contents to stable storage.
	Sync() error
}

// FS is the slice of the os package the release store needs, abstracted so
// tests can inject failures at every operation. Implementations: OS (the
// real filesystem) and NewFS (a fault-injecting wrapper around any FS).
type FS interface {
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create creates (or truncates) a file for writing.
	Create(name string) (File, error)
	// Rename atomically replaces newname with oldname, per os.Rename.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists the names (not paths) of the directory's entries.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory itself, making a preceding rename
	// durable. (An atomic rename that is not followed by a directory sync
	// can still be lost in a crash.)
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // the sync error is the one worth reporting
		return err
	}
	return d.Close()
}

// faultFS wraps an FS, consulting a registry's PointFS* points before each
// operation.
type faultFS struct {
	base FS
	reg  *Registry
}

// NewFS wraps base so every operation first consults reg at the
// corresponding PointFS* point. With a nil registry the wrapper is
// transparent.
func NewFS(base FS, reg *Registry) FS {
	return &faultFS{base: base, reg: reg}
}

func (f *faultFS) Open(name string) (File, error) {
	if err := f.reg.Check(PointFSOpen); err != nil {
		return nil, err
	}
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, reg: f.reg}, nil
}

func (f *faultFS) Create(name string) (File, error) {
	if err := f.reg.Check(PointFSCreate); err != nil {
		return nil, err
	}
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, reg: f.reg}, nil
}

func (f *faultFS) Rename(oldname, newname string) error {
	if err := f.reg.Check(PointFSRename); err != nil {
		return err
	}
	return f.base.Rename(oldname, newname)
}

func (f *faultFS) Remove(name string) error {
	if err := f.reg.Check(PointFSRemove); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *faultFS) ReadDir(dir string) ([]string, error) {
	if err := f.reg.Check(PointFSReadDir); err != nil {
		return nil, err
	}
	return f.base.ReadDir(dir)
}

func (f *faultFS) MkdirAll(dir string) error { return f.base.MkdirAll(dir) }

func (f *faultFS) SyncDir(dir string) error {
	if err := f.reg.Check(PointFSSyncDir); err != nil {
		return err
	}
	return f.base.SyncDir(dir)
}

// faultFile consults the registry on every read, write, sync and close. A
// firing write plan performs a torn half-write before reporting the error,
// so downstream CRC validation is exercised by genuinely corrupt bytes.
type faultFile struct {
	File
	reg *Registry
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.reg.Check(PointFSRead); err != nil {
		return 0, err
	}
	return f.File.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.reg.Check(PointFSWrite); err != nil {
		n, werr := f.File.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.reg.Check(PointFSSync); err != nil {
		return err
	}
	return f.File.Sync()
}

func (f *faultFile) Close() error {
	if err := f.reg.Check(PointFSClose); err != nil {
		_ = f.File.Close() // release the descriptor even when injecting
		return err
	}
	return f.File.Close()
}
