package faults

import (
	"errors"
	"io"
	"path/filepath"
	"testing"
)

// writeFile writes content through fsys, returning any error along the way.
func writeFile(fsys FS, path, content string) error {
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(content)); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS{}
	sub := filepath.Join(dir, "a", "b")
	if err := fsys.MkdirAll(sub); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sub, "file.bin")
	if err := writeFile(fsys, path, "payload"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Errorf("read back %q", got)
	}
	names, err := fsys.ReadDir(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "file.bin" {
		t.Errorf("ReadDir = %v", names)
	}
	renamed := filepath.Join(sub, "renamed.bin")
	if err := fsys.Rename(path, renamed); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(renamed); err != nil {
		t.Fatal(err)
	}
	names, err = fsys.ReadDir(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("dir not empty after remove: %v", names)
	}
}

func TestFaultFSInjectsPerOperation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	cases := []struct {
		point Point
		op    func(fsys FS) error
	}{
		{PointFSCreate, func(fsys FS) error { _, err := fsys.Create(path); return err }},
		{PointFSOpen, func(fsys FS) error { _, err := fsys.Open(path); return err }},
		{PointFSRename, func(fsys FS) error { return fsys.Rename(path, path+"2") }},
		{PointFSRemove, func(fsys FS) error { return fsys.Remove(path) }},
		{PointFSReadDir, func(fsys FS) error { _, err := fsys.ReadDir(dir); return err }},
		{PointFSSyncDir, func(fsys FS) error { return fsys.SyncDir(dir) }},
	}
	for _, tc := range cases {
		reg := New(1)
		reg.Arm(tc.point, Plan{})
		fsys := NewFS(OS{}, reg)
		if err := tc.op(fsys); !errors.Is(err, ErrInjected) {
			t.Errorf("%s: err = %v, want ErrInjected", tc.point, err)
		}
		if reg.Fired(tc.point) != 1 {
			t.Errorf("%s: fired = %d, want 1", tc.point, reg.Fired(tc.point))
		}
	}
}

func TestFaultFSTornWriteThenFailedSync(t *testing.T) {
	dir := t.TempDir()
	reg := New(1)
	fsys := NewFS(OS{}, reg)
	path := filepath.Join(dir, "torn.bin")

	// The write plan fires on the second write: the first 8 bytes land,
	// the next write tears in half — a realistic mid-persist crash image.
	reg.Arm(PointFSWrite, Plan{After: 1})
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("SOCRECv1")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("second write err = %v, want ErrInjected", err)
	}
	if n != 4 {
		t.Errorf("torn write wrote %d bytes, want 4", n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The torn prefix is really on disk: CRC-style readers must see it.
	rf, err := fsys.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rf)
	if err != nil {
		t.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "SOCRECv1abcd" {
		t.Errorf("on-disk bytes = %q", got)
	}

	// A sync plan fails the durability step even when writes succeed.
	reg.DisarmAll()
	reg.Arm(PointFSSync, Plan{})
	if err := writeFile(fsys, path, "x"); !errors.Is(err, ErrInjected) {
		t.Errorf("sync fault not delivered: %v", err)
	}
}

func TestFaultFSReadFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.bin")
	if err := writeFile(OS{}, path, "content"); err != nil {
		t.Fatal(err)
	}
	reg := New(1)
	reg.Arm(PointFSRead, Plan{})
	fsys := NewFS(OS{}, reg)
	f, err := fsys.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	if _, err := io.ReadAll(f); !errors.Is(err, ErrInjected) {
		t.Errorf("read err = %v, want ErrInjected", err)
	}
}

func TestFaultFSCloseFaultStillClosesDescriptor(t *testing.T) {
	dir := t.TempDir()
	reg := New(1)
	reg.Arm(PointFSClose, Plan{})
	fsys := NewFS(OS{}, reg)
	f, err := fsys.Create(filepath.Join(dir, "c.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, ErrInjected) {
		t.Errorf("close err = %v, want ErrInjected", err)
	}
}
