package faults

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestFailingReader(t *testing.T) {
	fr := &FailingReader{R: strings.NewReader("hello world"), Limit: 5}
	got, err := io.ReadAll(fr)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "hello" {
		t.Errorf("read %q, want %q", got, "hello")
	}
}

func TestFailingReaderCustomErr(t *testing.T) {
	sentinel := errors.New("cable pulled")
	fr := &FailingReader{R: strings.NewReader("abc"), Limit: 0, Err: sentinel}
	if _, err := fr.Read(make([]byte, 1)); !errors.Is(err, sentinel) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want the custom error wrapping ErrInjected", err)
	}
}

func TestFailingWriterShortWrite(t *testing.T) {
	var buf bytes.Buffer
	fw := &FailingWriter{W: &buf, Limit: 5}
	n, err := fw.Write([]byte("hello world"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 5 || buf.String() != "hello" {
		t.Errorf("wrote %d bytes %q, want the 5-byte prefix", n, buf.String())
	}
	// Every subsequent write fails immediately.
	if _, err := fw.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Error("writer recovered after its failure point")
	}
}

func TestFailingWriterExactBoundary(t *testing.T) {
	var buf bytes.Buffer
	fw := &FailingWriter{W: &buf, Limit: 5}
	if _, err := fw.Write([]byte("hello")); err != nil {
		t.Fatalf("write up to the limit failed: %v", err)
	}
	if _, err := fw.Write([]byte("!")); !errors.Is(err, ErrInjected) {
		t.Fatal("write past the limit succeeded")
	}
}

func TestSlowReaderWriter(t *testing.T) {
	const d = 5 * time.Millisecond
	sr := &SlowReader{R: strings.NewReader("x"), Delay: d}
	start := time.Now()
	if _, err := io.ReadAll(sr); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < d {
		t.Error("SlowReader did not delay")
	}
	var buf bytes.Buffer
	sw := &SlowWriter{W: &buf, Delay: d}
	start = time.Now()
	if _, err := sw.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < d {
		t.Error("SlowWriter did not delay")
	}
}

func TestFlakyReader(t *testing.T) {
	reg := New(1)
	reg.Arm(PointFSRead, Plan{After: 1}) // first read ok, rest fail
	fr := &FlakyReader{R: strings.NewReader("abcdef"), Reg: reg, P: PointFSRead}
	buf := make([]byte, 3)
	if _, err := fr.Read(buf); err != nil {
		t.Fatalf("first read failed: %v", err)
	}
	if _, err := fr.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read err = %v, want ErrInjected", err)
	}
}

func TestFlakyWriterTornWrite(t *testing.T) {
	reg := New(1)
	reg.Arm(PointFSWrite, Plan{})
	var buf bytes.Buffer
	fw := &FlakyWriter{R: &buf, Reg: reg, P: PointFSWrite}
	n, err := fw.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 4 || buf.String() != "abcd" {
		t.Errorf("torn write delivered %d bytes %q, want the half prefix", n, buf.String())
	}
}

func TestFlakyWrappersWithNilRegistryPassThrough(t *testing.T) {
	fr := &FlakyReader{R: strings.NewReader("ok"), P: PointFSRead}
	got, err := io.ReadAll(fr)
	if err != nil || string(got) != "ok" {
		t.Errorf("nil-registry FlakyReader = %q, %v", got, err)
	}
	var buf bytes.Buffer
	fw := &FlakyWriter{R: &buf, P: PointFSWrite}
	if _, err := fw.Write([]byte("ok")); err != nil || buf.String() != "ok" {
		t.Errorf("nil-registry FlakyWriter = %q, %v", buf.String(), err)
	}
}
