package faults

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := WriteAtomic(OS{}, path, []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := os.Stat(path + AtomicTmpSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// Overwrite through the same path.
	if err := WriteAtomic(OS{}, path, []byte("world")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "world" {
		t.Fatalf("after overwrite got %q", got)
	}
}

// TestWriteAtomicFreshFileRemovedOnDirSyncFailure: when the final name held
// nothing before, a failed directory sync must leave no file of uncertain
// durability behind.
func TestWriteAtomicFreshFileRemovedOnDirSyncFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh")
	reg := New(1)
	reg.Arm(PointFSSyncDir, Plan{Times: 1})
	err := WriteAtomic(NewFS(OS{}, reg), path, []byte("new"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("fresh file survived a failed dir sync: %v", err)
	}
}

// TestWriteAtomicOverwriteKeptOnDirSyncFailure: when the final name already
// held durable data, the failed-dir-sync cleanup must NOT delete the
// replacement — the previous contents are gone after the rename, so
// removing the new file would destroy the only remaining copy.
func TestWriteAtomicOverwriteKeptOnDirSyncFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	if err := WriteAtomic(OS{}, path, []byte("gen1")); err != nil {
		t.Fatal(err)
	}
	reg := New(1)
	reg.Arm(PointFSSyncDir, Plan{Times: 1})
	err := WriteAtomic(NewFS(OS{}, reg), path, []byte("gen2"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	got, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatalf("overwritten file vanished after failed dir sync: %v", readErr)
	}
	if string(got) != "gen2" {
		t.Fatalf("file holds %q, want the renamed replacement gen2", got)
	}
}

// TestWriteAtomicFailedWriteKeepsPreviousFile: a failure before the rename
// must leave the previous generation untouched and sweep its own temp.
func TestWriteAtomicFailedWriteKeepsPreviousFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	if err := WriteAtomic(OS{}, path, []byte("gen1")); err != nil {
		t.Fatal(err)
	}
	for _, point := range []Point{PointFSCreate, PointFSWrite, PointFSSync, PointFSRename} {
		reg := New(2)
		reg.Arm(point, Plan{Times: 1})
		if err := WriteAtomic(NewFS(OS{}, reg), path, []byte("gen2")); !errors.Is(err, ErrInjected) {
			t.Fatalf("%s: err = %v, want injected", point, err)
		}
		if got, _ := os.ReadFile(path); string(got) != "gen1" {
			t.Fatalf("%s: previous generation clobbered: %q", point, got)
		}
	}
}

func TestSweepTmpRemovesOnlyMatchingDebris(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mk("a.art" + AtomicTmpSuffix)
	mk("b.stage" + AtomicTmpSuffix)
	mk("keep.art")
	mk("other" + AtomicTmpSuffix)
	removed, err := SweepTmp(OS{}, dir, "a.", "b.")
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want the two prefixed temp files", removed)
	}
	for _, name := range removed {
		if !strings.HasSuffix(name, AtomicTmpSuffix) {
			t.Fatalf("removed non-temp file %q", name)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "keep.art")); err != nil {
		t.Fatalf("final-name file swept: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "other"+AtomicTmpSuffix)); err != nil {
		t.Fatalf("non-matching temp swept: %v", err)
	}
}
