package faults

import (
	"fmt"
	"io"
	"time"
)

// FailingReader passes reads through until Limit total bytes have been
// delivered, then returns Err (wrapping ErrInjected). The final read before
// the limit may be short — exactly how a truncated file or a dying
// connection behaves.
type FailingReader struct {
	R io.Reader
	// Limit is the number of bytes delivered before failure.
	Limit int64
	// Err is returned once the limit is reached; nil selects ErrInjected.
	Err error

	n int64
}

// Read implements io.Reader.
func (f *FailingReader) Read(p []byte) (int, error) {
	if f.n >= f.Limit {
		return 0, injected("read", f.Err)
	}
	if rem := f.Limit - f.n; int64(len(p)) > rem {
		p = p[:rem]
	}
	n, err := f.R.Read(p)
	f.n += int64(n)
	return n, err
}

// FailingWriter accepts writes until Limit total bytes, then fails. The
// write that crosses the limit is a short write: bytes up to the limit
// reach the underlying writer, the rest are dropped and an error is
// returned — the observable behaviour of a crash or a full disk partway
// through a persist.
type FailingWriter struct {
	W io.Writer
	// Limit is the number of bytes accepted before failure.
	Limit int64
	// Err is returned at the limit; nil selects ErrInjected.
	Err error

	n int64
}

// Write implements io.Writer.
func (f *FailingWriter) Write(p []byte) (int, error) {
	if f.n >= f.Limit {
		return 0, injected("write", f.Err)
	}
	if rem := f.Limit - f.n; int64(len(p)) > rem {
		n, err := f.W.Write(p[:rem])
		f.n += int64(n)
		if err != nil {
			return n, err
		}
		return n, injected("short write", f.Err)
	}
	n, err := f.W.Write(p)
	f.n += int64(n)
	return n, err
}

// SlowReader sleeps Delay before every Read — deadline and timeout fuel.
type SlowReader struct {
	R     io.Reader
	Delay time.Duration
}

// Read implements io.Reader.
func (s *SlowReader) Read(p []byte) (int, error) {
	time.Sleep(s.Delay)
	return s.R.Read(p)
}

// SlowWriter sleeps Delay before every Write.
type SlowWriter struct {
	W     io.Writer
	Delay time.Duration
}

// Write implements io.Writer.
func (s *SlowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.Delay)
	return s.W.Write(p)
}

// FlakyReader consults a registry point before every Read, so a seeded
// schedule decides which reads fail.
type FlakyReader struct {
	R   io.Reader
	Reg *Registry
	P   Point
}

// Read implements io.Reader.
func (f *FlakyReader) Read(p []byte) (int, error) {
	if err := f.Reg.Check(f.P); err != nil {
		return 0, err
	}
	return f.R.Read(p)
}

// FlakyWriter consults a registry point before every Write. A firing plan
// produces a short write of half the buffer — injected failures model torn
// writes, not clean refusals.
type FlakyWriter struct {
	R   io.Writer
	Reg *Registry
	P   Point
}

// Write implements io.Writer.
func (f *FlakyWriter) Write(p []byte) (int, error) {
	if err := f.Reg.Check(f.P); err != nil {
		n, werr := f.R.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return f.R.Write(p)
}

// injected wraps err (or ErrInjected when nil) with an operation label.
func injected(op string, err error) error {
	if err == nil {
		return fmt.Errorf("%w: %s", ErrInjected, op)
	}
	return fmt.Errorf("%w: %s: %w", ErrInjected, op, err)
}
