package faults

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"path/filepath"
	"strings"
)

// AtomicTmpSuffix is appended to a file's final name while WriteAtomicFunc
// is building it. Recovery code sweeping a directory after a crash can
// recognize (and safely delete) debris by this suffix: a temp file's
// contents were never visible under the final name.
const AtomicTmpSuffix = ".tmp"

// WriteAtomicFunc durably writes a file using the crash-safe discipline
// shared by the release store, the pipeline checkpoint store and the
// dynamic manager's budget journal: stream the contents into a same-
// directory temporary file, fsync it, close it, atomically rename it onto
// the final name, then fsync the directory so the rename itself survives a
// crash.
//
// A crash (or injected fault) at any point leaves either no file under the
// final name, or the previous file intact, or the new file fully durable —
// never a torn file under the final name. On failure the temporary file is
// removed best-effort; directory sweeps (see SweepTmp) clean up what a hard
// crash leaves behind.
func WriteAtomicFunc(fsys FS, path string, write func(io.Writer) error) error {
	// Remember whether the final name already holds durable data: the
	// directory-sync failure handling below must never delete it. A probe
	// failure other than not-exist conservatively counts as existing.
	existed := true
	if probe, err := fsys.Open(path); err == nil {
		_ = probe.Close()
	} else if errors.Is(err, iofs.ErrNotExist) {
		existed = false
	}
	tmp := path + AtomicTmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("faults: atomic write %s: create: %w", path, err)
	}
	fail := func(step string, err error) error {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("faults: atomic write %s: %s: %w", path, step, err)
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return fail("write", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fail("sync", err)
	}
	if err := f.Close(); err != nil {
		return fail("close", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fail("rename", err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		// The rename happened but may not survive a crash. For a fresh file,
		// remove it so callers never observe a file of uncertain durability.
		// For an overwrite, leave it: the previous durable contents are
		// already gone, removing the replacement would destroy the only
		// remaining copy, and either generation surviving a real crash is a
		// complete, valid file.
		if !existed {
			_ = fsys.Remove(path)
		}
		return fmt.Errorf("faults: atomic write %s: syncing directory: %w", path, err)
	}
	return nil
}

// WriteAtomic is WriteAtomicFunc for contents already in memory.
func WriteAtomic(fsys FS, path string, data []byte) error {
	return WriteAtomicFunc(fsys, path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// SweepTmp removes crashed-write temporary debris from dir: every file
// whose name ends in AtomicTmpSuffix and begins with one of the given
// prefixes (all such files when no prefix is given). It returns the names
// removed. Removal is safe by construction — a temp file's contents were
// never visible under a final name.
func SweepTmp(fsys FS, dir string, prefixes ...string) ([]string, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, name := range names {
		if !strings.HasSuffix(name, AtomicTmpSuffix) {
			continue
		}
		match := len(prefixes) == 0
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return removed, err
		}
		removed = append(removed, name)
	}
	return removed, nil
}
