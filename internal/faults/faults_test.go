package faults

import (
	"errors"
	"testing"
	"time"
)

func TestNilRegistryInjectsNothing(t *testing.T) {
	var r *Registry
	r.Arm(PointFSSync, Plan{})
	r.Disarm(PointFSSync)
	r.DisarmAll()
	if err := r.Check(PointFSSync); err != nil {
		t.Fatalf("nil registry injected %v", err)
	}
	if r.Checks(PointFSSync) != 0 || r.Fired(PointFSSync) != 0 || r.Points() != nil {
		t.Error("nil registry reported state")
	}
}

func TestUnarmedPointPasses(t *testing.T) {
	r := New(1)
	for i := 0; i < 10; i++ {
		if err := r.Check(PointFSWrite); err != nil {
			t.Fatalf("unarmed point injected %v", err)
		}
	}
	if r.Checks(PointFSWrite) != 0 {
		t.Error("unarmed point counted checks")
	}
}

func TestZeroPlanAlwaysFires(t *testing.T) {
	r := New(1)
	r.Arm(PointFSSync, Plan{})
	for i := 0; i < 5; i++ {
		if err := r.Check(PointFSSync); !errors.Is(err, ErrInjected) {
			t.Fatalf("check %d: err = %v, want ErrInjected", i, err)
		}
	}
	if got := r.Fired(PointFSSync); got != 5 {
		t.Errorf("fired = %d, want 5", got)
	}
}

func TestAfterAndTimes(t *testing.T) {
	r := New(1)
	// Succeed twice, fail once, then recover — a transient fault.
	r.Arm(PointFSWrite, Plan{After: 2, Times: 1})
	var errs []bool
	for i := 0; i < 5; i++ {
		errs = append(errs, r.Check(PointFSWrite) != nil)
	}
	want := []bool{false, false, true, false, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("check sequence = %v, want %v", errs, want)
		}
	}
}

func TestCustomErrorWrapsSentinel(t *testing.T) {
	r := New(1)
	sentinel := errors.New("disk on fire")
	r.Arm(PointFSSync, Plan{Err: sentinel})
	err := r.Check(PointFSSync)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want both ErrInjected and the custom error", err)
	}
}

func TestProbIsDeterministic(t *testing.T) {
	run := func() []bool {
		r := New(42)
		r.Arm(PointHandler, Plan{Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Check(PointHandler) != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at check %d", i)
		}
		if a[i] {
			fired++
		}
	}
	// A 0.5 schedule over 64 draws that fires never or always would mean
	// the stream is broken, not unlucky (each has probability 2^-64).
	if fired == 0 || fired == 64 {
		t.Errorf("Prob 0.5 fired %d/64 times", fired)
	}
}

func TestDistinctPointsGetDistinctStreams(t *testing.T) {
	r := New(7)
	r.Arm(PointFSRead, Plan{Prob: 0.5})
	r.Arm(PointFSWrite, Plan{Prob: 0.5})
	same := true
	for i := 0; i < 64; i++ {
		if (r.Check(PointFSRead) != nil) != (r.Check(PointFSWrite) != nil) {
			same = false
		}
	}
	if same {
		t.Error("two points produced identical 64-draw schedules; streams are not independent")
	}
}

func TestPanicPlan(t *testing.T) {
	r := New(1)
	r.Arm(PointHandler, Plan{Panic: true})
	defer func() {
		v := recover()
		ip, ok := v.(InjectedPanic)
		if !ok || ip.Point != PointHandler {
			t.Errorf("recovered %v, want InjectedPanic{http.handler}", v)
		}
	}()
	_ = r.Check(PointHandler)
	t.Fatal("Check did not panic")
}

func TestDelayOnly(t *testing.T) {
	r := New(1)
	r.Arm(PointHandler, Plan{Delay: 10 * time.Millisecond, DelayOnly: true})
	start := time.Now()
	if err := r.Check(PointHandler); err != nil {
		t.Fatalf("DelayOnly returned error %v", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("DelayOnly did not sleep")
	}
}

func TestDisarm(t *testing.T) {
	r := New(1)
	r.Arm(PointFSSync, Plan{})
	r.Arm(PointFSWrite, Plan{})
	if got := len(r.Points()); got != 2 {
		t.Fatalf("points = %d, want 2", got)
	}
	r.Disarm(PointFSSync)
	if err := r.Check(PointFSSync); err != nil {
		t.Error("disarmed point still fires")
	}
	r.DisarmAll()
	if err := r.Check(PointFSWrite); err != nil {
		t.Error("DisarmAll left a point armed")
	}
}

func TestConcurrentChecks(t *testing.T) {
	r := New(1)
	r.Arm(PointHandler, Plan{Prob: 0.5})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				_ = r.Check(PointHandler)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if got := r.Checks(PointHandler); got != 4000 {
		t.Errorf("checks = %d, want 4000", got)
	}
}
