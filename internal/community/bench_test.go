package community

import (
	"math/rand"
	"testing"

	"socialrec/internal/graph"
)

func benchGraph(b *testing.B, n int) *graph.Social {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	const blockSize = 80
	bld := graph.NewSocialBuilder(n)
	for e := 0; e < 7*n; e++ {
		u := rng.Intn(n)
		var v int
		if rng.Float64() < 0.85 {
			v = (u/blockSize)*blockSize + rng.Intn(blockSize)
		} else {
			v = rng.Intn(n)
		}
		_ = bld.AddEdge(u, v)
	}
	return bld.Build()
}

func BenchmarkLouvain2K(b *testing.B) {
	g := benchGraph(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Louvain(g, Options{Seed: int64(i)})
	}
}

func BenchmarkLouvain20K(b *testing.B) {
	g := benchGraph(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Louvain(g, Options{Seed: int64(i)})
	}
}

func BenchmarkLouvainNoRefinement(b *testing.B) {
	g := benchGraph(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Louvain(g, Options{Seed: int64(i), DisableRefinement: true})
	}
}

func BenchmarkModularity(b *testing.B) {
	g := benchGraph(b, 2000)
	c := Louvain(g, Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Modularity(g, c)
	}
}

func BenchmarkLabelPropagation(b *testing.B) {
	g := benchGraph(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LabelPropagation(g, int64(i), 0)
	}
}
