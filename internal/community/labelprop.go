package community

import (
	"math/rand"

	"socialrec/internal/graph"
)

// LabelPropagation detects communities by asynchronous label propagation
// (Raghavan et al.): every node repeatedly adopts the label held by the
// majority of its neighbors until no node changes. It typically produces a
// finer-grained clustering than Louvain and serves as an ablation point for
// the framework's cluster-granularity trade-off (smaller clusters → less
// approximation error but more perturbation error).
//
// maxIters bounds the sweeps; 0 means a default of 100, which label
// propagation virtually never needs on real graphs.
func LabelPropagation(g *graph.Social, seed int64, maxIters int) *Clustering {
	if maxIters <= 0 {
		maxIters = 100
	}
	n := g.NumUsers()
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	counts := make([]int32, n)
	touched := make([]int32, 0, 64)
	order := rng.Perm(n)
	for iter := 0; iter < maxIters; iter++ {
		changes := 0
		for _, u := range order {
			neigh := g.Neighbors(u)
			if len(neigh) == 0 {
				continue
			}
			touched = touched[:0]
			for _, v := range neigh {
				l := labels[v]
				if counts[l] == 0 {
					touched = append(touched, l)
				}
				counts[l]++
			}
			// Standard LPA tie handling: find the maximum neighbor-label
			// count; keep the current label if it attains the maximum,
			// otherwise adopt one of the maximal labels uniformly at
			// random. (A deterministic lowest-id tie-break would cascade
			// one label across weak bridges and collapse the partition.)
			var bestCount int32
			for _, l := range touched {
				if counts[l] > bestCount {
					bestCount = counts[l]
				}
			}
			cur := labels[u]
			if counts[cur] < bestCount {
				ties := 0
				pick := cur
				for _, l := range touched {
					if counts[l] == bestCount {
						ties++
						if rng.Intn(ties) == 0 {
							pick = l
						}
					}
				}
				labels[u] = pick
				changes++
			}
			for _, l := range touched {
				counts[l] = 0
			}
		}
		if changes == 0 {
			break
		}
	}
	c, err := FromAssignment(labels)
	if err != nil {
		panic("community: internal error: " + err.Error())
	}
	return c
}
