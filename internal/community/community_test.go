package community

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"socialrec/internal/graph"
)

// twoCliques builds two k-cliques joined by a single bridge edge — the
// canonical graph whose optimal partition is one cluster per clique.
func twoCliques(t testing.TB, k int) *graph.Social {
	b := graph.NewSocialBuilder(2 * k)
	for c := 0; c < 2; c++ {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if err := b.AddEdge(c*k+i, c*k+j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := b.AddEdge(0, k); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestFromAssignment(t *testing.T) {
	c, err := FromAssignment([]int32{5, 5, 2, 9, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClusters() != 3 {
		t.Fatalf("NumClusters = %d, want 3", c.NumClusters())
	}
	// Dense renumbering preserves first-appearance order: 5→0, 2→1, 9→2.
	want := []int{0, 0, 1, 2, 1}
	for u, w := range want {
		if c.Cluster(u) != w {
			t.Errorf("Cluster(%d) = %d, want %d", u, c.Cluster(u), w)
		}
	}
	if c.Size(0) != 2 || c.Size(1) != 2 || c.Size(2) != 1 {
		t.Errorf("Sizes = %v, want [2 2 1]", c.Sizes())
	}
	if _, err := FromAssignment([]int32{0, -1}); err == nil {
		t.Error("negative assignment should fail")
	}
}

func TestClusteringAccessors(t *testing.T) {
	c, _ := FromAssignment([]int32{0, 0, 0, 1, 1, 2})
	if got := c.LargestFraction(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("LargestFraction = %v, want 0.5", got)
	}
	mean, std := c.MeanSize()
	if mean != 2 {
		t.Errorf("MeanSize mean = %v, want 2", mean)
	}
	if wantVar := (1.0 + 0 + 1.0) / 3; math.Abs(std*std-wantVar) > 1e-12 {
		t.Errorf("MeanSize std² = %v, want %v", std*std, wantVar)
	}
	members := c.Members()
	if len(members) != 3 || len(members[0]) != 3 || members[2][0] != 5 {
		t.Errorf("Members = %v", members)
	}
	a := c.Assignment()
	a[0] = 99
	if c.Cluster(0) == 99 {
		t.Error("Assignment must return a copy")
	}
}

func TestModularityHandComputed(t *testing.T) {
	// Two triangles joined by one edge; partition = the two triangles.
	// m = 7; L_1 = L_2 = 3; D_1 = 2+2+3 = 7 = D_2.
	// Q = 2 · (3/7 − (7/14)²) = 6/7 − 1/2.
	g := twoCliques(t, 3)
	c, _ := FromAssignment([]int32{0, 0, 0, 1, 1, 1})
	want := 6.0/7.0 - 0.5
	if got := Modularity(g, c); math.Abs(got-want) > 1e-12 {
		t.Errorf("Modularity = %v, want %v", got, want)
	}
}

func TestModularitySingleClusterIsZero(t *testing.T) {
	g := twoCliques(t, 4)
	assign := make([]int32, g.NumUsers())
	c, _ := FromAssignment(assign)
	// All nodes in one cluster: Q = m/m − (2m/2m)² = 0.
	if got := Modularity(g, c); math.Abs(got) > 1e-12 {
		t.Errorf("Modularity = %v, want 0", got)
	}
}

func TestLouvainTwoCliques(t *testing.T) {
	g := twoCliques(t, 6)
	c := Louvain(g, Options{Seed: 1})
	if c.NumClusters() != 2 {
		t.Fatalf("NumClusters = %d, want 2", c.NumClusters())
	}
	// All members of each clique must share a cluster.
	for i := 1; i < 6; i++ {
		if c.Cluster(i) != c.Cluster(0) {
			t.Errorf("clique A split: user %d", i)
		}
		if c.Cluster(6+i) != c.Cluster(6) {
			t.Errorf("clique B split: user %d", 6+i)
		}
	}
	if c.Cluster(0) == c.Cluster(6) {
		t.Error("cliques merged")
	}
}

// plantedPartition builds k dense blocks of size sz with sparse inter-block
// edges.
func plantedPartition(t testing.TB, k, sz int, pIn, pOut float64, seed int64) (*graph.Social, []int32) {
	rng := rand.New(rand.NewSource(seed))
	n := k * sz
	truth := make([]int32, n)
	b := graph.NewSocialBuilder(n)
	for u := 0; u < n; u++ {
		truth[u] = int32(u / sz)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if truth[u] == truth[v] {
				p = pIn
			}
			if rng.Float64() < p {
				if err := b.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.Build(), truth
}

func TestLouvainRecoversPlantedPartition(t *testing.T) {
	g, truth := plantedPartition(t, 4, 30, 0.5, 0.01, 42)
	c := Louvain(g, Options{Seed: 3})
	if c.NumClusters() != 4 {
		t.Fatalf("NumClusters = %d, want 4", c.NumClusters())
	}
	// Check the clustering matches the planted truth up to relabeling.
	mapping := make(map[int32]int32)
	for u := 0; u < g.NumUsers(); u++ {
		got := int32(c.Cluster(u))
		if want, ok := mapping[truth[u]]; ok {
			if got != want {
				t.Fatalf("user %d: cluster %d, want %d (planted block %d)", u, got, want, truth[u])
			}
		} else {
			mapping[truth[u]] = got
		}
	}
}

func TestLouvainModularityBeatsRandom(t *testing.T) {
	g, _ := plantedPartition(t, 5, 25, 0.4, 0.02, 7)
	louvain := Louvain(g, Options{Seed: 1})
	random := Random(g.NumUsers(), louvain.NumClusters(), rand.New(rand.NewSource(1)))
	ql, qr := Modularity(g, louvain), Modularity(g, random)
	if ql <= qr+0.2 {
		t.Errorf("Louvain Q = %v should clearly beat random Q = %v", ql, qr)
	}
}

func TestBestOfImprovesOrMatches(t *testing.T) {
	g, _ := plantedPartition(t, 4, 20, 0.4, 0.03, 11)
	single := Louvain(g, Options{Seed: 5})
	qSingle := Modularity(g, single)
	_, qBest := BestOf(g, 8, 5, Options{})
	if qBest < qSingle-1e-12 {
		t.Errorf("BestOf Q = %v < single-run Q = %v", qBest, qSingle)
	}
}

func TestRefinementDoesNotHurt(t *testing.T) {
	g, _ := plantedPartition(t, 4, 25, 0.35, 0.03, 13)
	for seed := int64(0); seed < 5; seed++ {
		refined := Louvain(g, Options{Seed: seed})
		coarse := Louvain(g, Options{Seed: seed, DisableRefinement: true})
		qr, qc := Modularity(g, refined), Modularity(g, coarse)
		if qr < qc-1e-9 {
			t.Errorf("seed %d: refined Q = %v < unrefined Q = %v", seed, qr, qc)
		}
	}
}

func TestLouvainDeterministicBySeed(t *testing.T) {
	g, _ := plantedPartition(t, 3, 20, 0.4, 0.05, 17)
	a := Louvain(g, Options{Seed: 9})
	b := Louvain(g, Options{Seed: 9})
	if a.NumClusters() != b.NumClusters() {
		t.Fatal("same seed, different cluster counts")
	}
	for u := 0; u < g.NumUsers(); u++ {
		if a.Cluster(u) != b.Cluster(u) {
			t.Fatal("same seed, different assignments")
		}
	}
}

func TestLouvainIsolatedNodes(t *testing.T) {
	// Graph with no edges at all: every node stays a singleton.
	g := graph.NewSocialBuilder(5).Build()
	c := Louvain(g, Options{Seed: 1})
	if c.NumClusters() != 5 {
		t.Errorf("NumClusters = %d, want 5 singletons", c.NumClusters())
	}
}

func TestRandomClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := Random(100, 7, rng)
	if c.NumUsers() != 100 || c.NumClusters() != 7 {
		t.Fatalf("shape = (%d, %d), want (100, 7)", c.NumUsers(), c.NumClusters())
	}
	for id := 0; id < c.NumClusters(); id++ {
		if c.Size(id) == 0 {
			t.Errorf("cluster %d empty", id)
		}
	}
	// Clamping.
	if got := Random(3, 10, rng).NumClusters(); got != 3 {
		t.Errorf("k > n should clamp to n; got %d clusters", got)
	}
	if got := Random(3, 0, rng).NumClusters(); got != 1 {
		t.Errorf("k < 1 should clamp to 1; got %d clusters", got)
	}
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	g := twoCliques(t, 8)
	c := LabelPropagation(g, 3, 0)
	if c.Cluster(0) == c.Cluster(8) {
		t.Error("label propagation merged the two cliques")
	}
	for i := 1; i < 8; i++ {
		if c.Cluster(i) != c.Cluster(0) || c.Cluster(8+i) != c.Cluster(8) {
			t.Fatalf("clique split: %v", c.Assignment())
		}
	}
}

// Property: modularity of any clustering on any graph lies in [-1, 1], and
// cluster sizes always sum to the user count.
func TestModularityBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		b := graph.NewSocialBuilder(n)
		for k := 0; k < 2*n; k++ {
			_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		assign := make([]int32, n)
		k := 1 + rng.Intn(5)
		for i := range assign {
			assign[i] = int32(rng.Intn(k))
		}
		c, err := FromAssignment(assign)
		if err != nil {
			return false
		}
		q := Modularity(g, c)
		if q < -1 || q > 1 {
			return false
		}
		total := 0
		for _, s := range c.Sizes() {
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Louvain always returns a valid partition whose modularity is at
// least that of the singleton partition (its own starting point).
func TestLouvainNeverWorseThanSingletonsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		b := graph.NewSocialBuilder(n)
		for k := 0; k < 3*n; k++ {
			_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		c := Louvain(g, Options{Seed: seed})
		if c.NumUsers() != n {
			return false
		}
		singles, _ := FromAssignment(initSingleton(n))
		return Modularity(g, c) >= Modularity(g, singles)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
