package community

import (
	"math"
	"math/rand"

	"socialrec/internal/graph"
	"socialrec/internal/similarity"
)

// KMeansSimilarity clusters users by running k-means directly on the rows
// of the user-similarity matrix — the alternative the paper's §5.1.2 remark
// considers and rejects: unlike community detection it needs k specified a
// priori (and k cannot be tuned against the private utilities without
// spending budget), and materializing similarity rows is far more expensive
// than Louvain's edge-linear passes. It is provided as an ablation
// comparator so that trade-off can be measured rather than asserted.
//
// Rows are L2-normalized sparse similarity vectors; distances are cosine
// (via dot products on the sparse rows against dense centroids). Empty rows
// (isolated users) are assigned to cluster 0. maxIters <= 0 selects 25.
func KMeansSimilarity(g *graph.Social, m similarity.Measure, k int, seed int64, maxIters int) *Clustering {
	n := g.NumUsers()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if maxIters <= 0 {
		maxIters = 25
	}
	users := make([]int32, n)
	for i := range users {
		users[i] = int32(i)
	}
	rows := similarity.ComputeAll(g, m, users, 0)
	// Normalize each row to unit L2 norm (cosine geometry).
	norms := make([]float64, n)
	for u, r := range rows {
		var s float64
		for _, v := range r.Vals {
			s += v * v
		}
		norms[u] = math.Sqrt(s)
	}

	rng := rand.New(rand.NewSource(seed))
	assign := make([]int32, n)
	// k-means++-style seeding on user indices (distance-proportional
	// seeding over sparse rows is costly; random distinct seeds suffice
	// for an ablation baseline).
	seeds := rng.Perm(n)[:k]
	centroids := make([][]float64, k)
	for c := range centroids {
		centroids[c] = make([]float64, n)
		r := rows[seeds[c]]
		if norms[seeds[c]] > 0 {
			for j, v := range r.Users {
				centroids[c][v] = r.Vals[j] / norms[seeds[c]]
			}
		}
	}

	counts := make([]int, k)
	for iter := 0; iter < maxIters; iter++ {
		changes := 0
		for u := 0; u < n; u++ {
			best, bestDot := 0, math.Inf(-1)
			if norms[u] == 0 {
				best = 0
			} else {
				r := rows[u]
				for c := 0; c < k; c++ {
					var dot float64
					cen := centroids[c]
					for j, v := range r.Users {
						dot += r.Vals[j] * cen[v]
					}
					if dot > bestDot {
						best, bestDot = c, dot
					}
				}
			}
			if int32(best) != assign[u] || iter == 0 {
				if int32(best) != assign[u] {
					changes++
				}
				assign[u] = int32(best)
			}
		}
		if iter > 0 && changes == 0 {
			break
		}
		// Recompute centroids as (unnormalized) means of member rows,
		// then renormalize.
		for c := range centroids {
			clear(centroids[c])
			counts[c] = 0
		}
		for u := 0; u < n; u++ {
			c := assign[u]
			counts[c]++
			if norms[u] == 0 {
				continue
			}
			r := rows[u]
			cen := centroids[c]
			for j, v := range r.Users {
				cen[v] += r.Vals[j] / norms[u]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			var s float64
			for _, v := range centroids[c] {
				s += v * v
			}
			if s > 0 {
				inv := 1 / math.Sqrt(s)
				for i := range centroids[c] {
					centroids[c][i] *= inv
				}
			}
		}
	}
	out, err := FromAssignment(assign)
	if err != nil {
		panic("community: internal error: " + err.Error())
	}
	return out
}
