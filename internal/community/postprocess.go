package community

import (
	"fmt"

	"socialrec/internal/graph"
)

// MergeSmall implements the §7 post-processing heuristic the paper proposes
// for future work: clusters smaller than minSize are dissolved into the
// neighboring cluster they share the most edges with. Tiny clusters are bad
// for the framework on both error axes — their averages get the largest
// noise (scale 1/(|c|·ε)) while contributing little approximation benefit —
// so folding them into their best-connected neighbor trades a small amount
// of approximation error for a large noise reduction on their members.
//
// Clusters with no external edges (isolated components) are merged into the
// smallest surviving cluster, which minimizes the damage to that cluster's
// averages. The returned clustering has every cluster of size >= minSize,
// unless the whole graph has fewer than minSize users.
func MergeSmall(g *graph.Social, c *Clustering, minSize int) (*Clustering, error) {
	if g.NumUsers() != c.NumUsers() {
		return nil, fmt.Errorf("community: clustering covers %d users but graph has %d", c.NumUsers(), g.NumUsers())
	}
	if minSize <= 1 || c.NumClusters() <= 1 {
		return c, nil
	}
	assign := c.Assignment()
	sizes := make([]int, c.NumClusters())
	for _, a := range assign {
		sizes[a]++
	}

	// Iteratively fold the smallest undersized cluster into its
	// best-connected neighbor. Iterating (rather than one pass) handles
	// chains of tiny clusters that only reach minSize together.
	for {
		smallest := -1
		for id, s := range sizes {
			if s > 0 && s < minSize && (smallest < 0 || s < sizes[smallest]) {
				smallest = id
			}
		}
		if smallest < 0 {
			break
		}
		// Count edges from the doomed cluster to every other cluster.
		conn := make(map[int32]int)
		for u, a := range assign {
			if int(a) != smallest {
				continue
			}
			for _, v := range g.Neighbors(u) {
				if b := assign[v]; int(b) != smallest {
					conn[b]++
				}
			}
		}
		target := int32(-1)
		best := -1
		for b, n := range conn {
			if n > best || (n == best && (target < 0 || b < target)) {
				target, best = b, n
			}
		}
		if target < 0 {
			// Isolated: merge into the smallest other surviving cluster.
			for id, s := range sizes {
				if id != smallest && s > 0 && (target < 0 || s < sizes[target]) {
					target = int32(id)
				}
			}
			if target < 0 {
				break // only one cluster left
			}
		}
		for u, a := range assign {
			if int(a) == smallest {
				assign[u] = target
			}
		}
		sizes[target] += sizes[smallest]
		sizes[smallest] = 0
	}
	merged, err := FromAssignment(assign)
	if err != nil {
		return nil, fmt.Errorf("community: internal error: %w", err)
	}
	return merged, nil
}
