package community

import (
	"math/rand"

	"socialrec/internal/graph"
)

// Options configures the Louvain method.
type Options struct {
	// Seed seeds the node-order permutations. Runs with distinct seeds
	// explore different local optima of modularity.
	Seed int64
	// MaxLevels bounds the coarsening hierarchy depth; 0 means unbounded
	// (Louvain converges long before any practical bound is reached).
	MaxLevels int
	// MaxPasses bounds the local-moving sweeps per level; 0 means
	// unbounded (sweeps stop as soon as no node moves).
	MaxPasses int
	// DisableRefinement turns off the multi-level refinement step of
	// Rotta & Noack [29]. The paper's setup has refinement on; the
	// ablation benchmarks turn it off.
	DisableRefinement bool
	// MinGain is the minimum modularity-gain for a node move to be taken;
	// values ≤ 0 use a small default tolerance that guards against
	// floating-point oscillation.
	MinGain float64
}

func (o Options) minGain() float64 {
	if o.MinGain > 0 {
		return o.MinGain
	}
	return 1e-12
}

// Louvain detects communities in the social graph by greedy modularity
// maximization [4]: repeated sweeps of local node moves followed by graph
// aggregation, then (unless disabled) a top-down multi-level refinement pass
// [29] that re-optimizes node assignments at every level of the hierarchy,
// which stabilizes the output across initial node orderings (§5.1.2 of the
// paper).
func Louvain(g *graph.Social, opt Options) *Clustering {
	rng := rand.New(rand.NewSource(opt.Seed))
	base := fromSocial(g)

	// Coarsening: at each level run local moving to convergence, then
	// aggregate communities into super-nodes.
	type level struct {
		g      *wgraph
		assign []int32 // node of this level's graph → community (== node of next level)
	}
	var levels []level
	cur := base
	for {
		assign := localMove(cur, initSingleton(cur.n), rng, opt)
		comms := compact(assign)
		moved := comms < cur.n
		levels = append(levels, level{g: cur, assign: assign})
		if !moved || (opt.MaxLevels > 0 && len(levels) >= opt.MaxLevels) {
			break
		}
		cur = aggregate(cur, assign, comms)
	}

	// Refinement: walk the hierarchy from coarsest to finest. At each
	// finer level, project the coarser solution down and re-run local
	// moving starting from it.
	if !opt.DisableRefinement {
		for li := len(levels) - 2; li >= 0; li-- {
			fine := levels[li]
			coarse := levels[li+1]
			projected := make([]int32, fine.g.n)
			for u := 0; u < fine.g.n; u++ {
				projected[u] = coarse.assign[fine.assign[u]]
			}
			levels[li].assign = localMove(fine.g, projected, rng, opt)
			// Invalidate coarser levels: the finest assignment is now
			// authoritative. (Only level 0 is read below.)
			levels = levels[:li+1]
		}
	} else {
		// Compose the hierarchy into a flat assignment at level 0.
		flat := levels[len(levels)-1].assign
		for li := len(levels) - 2; li >= 0; li-- {
			fine := levels[li]
			composed := make([]int32, fine.g.n)
			for u := 0; u < fine.g.n; u++ {
				composed[u] = flat[fine.assign[u]]
			}
			flat = composed
		}
		levels[0].assign = flat
	}

	c, err := FromAssignment(levels[0].assign)
	if err != nil {
		panic("community: internal error: " + err.Error())
	}
	return c
}

// BestOf runs Louvain `runs` times with seeds seed, seed+1, ... and returns
// the clustering with the highest modularity on g, mirroring the paper's
// best-of-10 protocol (§6.2). It panics if runs < 1.
func BestOf(g *graph.Social, runs int, seed int64, opt Options) (*Clustering, float64) {
	if runs < 1 {
		panic("community: BestOf needs runs >= 1")
	}
	var best *Clustering
	bestQ := 0.0
	for r := 0; r < runs; r++ {
		o := opt
		o.Seed = seed + int64(r)
		c := Louvain(g, o)
		q := Modularity(g, c)
		if best == nil || q > bestQ {
			best, bestQ = c, q
		}
	}
	return best, bestQ
}

// wgraph is the weighted multigraph used internally during coarsening.
// Self-loops hold intra-community weight after aggregation.
type wgraph struct {
	n     int
	off   []int32
	to    []int32
	w     []float64
	self  []float64 // self-loop weight per node (counted once)
	wdeg  []float64 // weighted degree: Σ_j A_uj with self-loop counted twice
	total float64   // m = ½ Σ wdeg
}

func fromSocial(g *graph.Social) *wgraph {
	n := g.NumUsers()
	wg := &wgraph{
		n:    n,
		off:  make([]int32, n+1),
		to:   make([]int32, 2*g.NumEdges()),
		w:    make([]float64, 2*g.NumEdges()),
		self: make([]float64, n),
		wdeg: make([]float64, n),
	}
	var pos int32
	for u := 0; u < n; u++ {
		wg.off[u] = pos
		for _, v := range g.Neighbors(u) {
			wg.to[pos] = v
			wg.w[pos] = 1
			pos++
		}
		wg.wdeg[u] = float64(g.Degree(u))
		wg.total += wg.wdeg[u]
	}
	wg.off[n] = pos
	wg.total /= 2
	return wg
}

func initSingleton(n int) []int32 {
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(i)
	}
	return a
}

// localMove runs sweeps of greedy node moves until no node improves
// modularity, starting from the given assignment. It returns the (not
// necessarily compacted) assignment.
func localMove(g *wgraph, assign []int32, rng *rand.Rand, opt Options) []int32 {
	if g.total == 0 {
		return assign
	}
	tot := make([]float64, g.n) // community → Σ_tot (sum of weighted degrees)
	for u := 0; u < g.n; u++ {
		tot[assign[u]] += g.wdeg[u]
	}
	m2 := 2 * g.total
	minGain := opt.minGain()

	// neighW accumulates k_{u,in}(c) per candidate community during one
	// node's evaluation.
	neighW := make([]float64, g.n)
	touched := make([]int32, 0, 64)

	order := rng.Perm(g.n)
	for pass := 0; opt.MaxPasses == 0 || pass < opt.MaxPasses; pass++ {
		moves := 0
		for _, ui := range order {
			u := int32(ui)
			cu := assign[u]
			// Gather edge weight from u to each neighboring community.
			touched = touched[:0]
			for e := g.off[u]; e < g.off[u+1]; e++ {
				v := g.to[e]
				if v == u {
					continue
				}
				c := assign[v]
				if neighW[c] == 0 {
					touched = append(touched, c)
				}
				neighW[c] += g.w[e]
			}
			// Remove u from its community for the evaluation.
			tot[cu] -= g.wdeg[u]
			// Staying put is the baseline.
			best := cu
			bestGain := neighW[cu] - tot[cu]*g.wdeg[u]/m2
			for _, c := range touched {
				if c == cu {
					continue
				}
				gain := neighW[c] - tot[c]*g.wdeg[u]/m2
				if gain > bestGain+minGain {
					best, bestGain = c, gain
				}
			}
			for _, c := range touched {
				neighW[c] = 0
			}
			tot[best] += g.wdeg[u]
			if best != cu {
				assign[u] = best
				moves++
			}
		}
		if moves == 0 {
			break
		}
	}
	return assign
}

// compact renumbers communities to dense ids in place and returns the count.
func compact(assign []int32) int {
	remap := make(map[int32]int32)
	for i, a := range assign {
		id, ok := remap[a]
		if !ok {
			id = int32(len(remap))
			remap[a] = id
		}
		assign[i] = id
	}
	return len(remap)
}

// aggregate contracts each community of g into a super-node. Inter-community
// edge weights are summed; intra-community weight (including existing
// self-loops) becomes the super-node's self-loop.
func aggregate(g *wgraph, assign []int32, comms int) *wgraph {
	type key struct{ a, b int32 }
	edges := make(map[key]float64)
	self := make([]float64, comms)
	for u := int32(0); int(u) < g.n; u++ {
		cu := assign[u]
		self[cu] += g.self[u]
		for e := g.off[u]; e < g.off[u+1]; e++ {
			v := g.to[e]
			cv := assign[v]
			switch {
			case cu == cv:
				if u < v {
					self[cu] += g.w[e]
				}
			case cu < cv:
				edges[key{cu, cv}] += g.w[e]
			}
		}
	}
	deg := make([]int32, comms)
	for k := range edges {
		deg[k.a]++
		deg[k.b]++
	}
	out := &wgraph{
		n:    comms,
		off:  make([]int32, comms+1),
		self: self,
		wdeg: make([]float64, comms),
	}
	for c := 0; c < comms; c++ {
		out.off[c+1] = out.off[c] + deg[c]
	}
	out.to = make([]int32, out.off[comms])
	out.w = make([]float64, out.off[comms])
	next := make([]int32, comms)
	copy(next, out.off[:comms])
	for k, w := range edges {
		out.to[next[k.a]] = k.b
		out.w[next[k.a]] = w
		next[k.a]++
		out.to[next[k.b]] = k.a
		out.w[next[k.b]] = w
		next[k.b]++
	}
	for c := 0; c < comms; c++ {
		out.wdeg[c] = 2 * out.self[c]
		for e := out.off[c]; e < out.off[c+1]; e++ {
			out.wdeg[c] += out.w[e]
		}
		out.total += out.wdeg[c]
	}
	out.total /= 2
	return out
}
