package community

import (
	"testing"

	"socialrec/internal/graph"
	"socialrec/internal/similarity"
)

func TestMergeSmallFoldsTinyClusters(t *testing.T) {
	// Two cliques of 6 plus a pendant pair attached to clique A.
	g := func() *graph.Social {
		b := graph.NewSocialBuilder(14)
		for c := 0; c < 2; c++ {
			for i := 0; i < 6; i++ {
				for j := i + 1; j < 6; j++ {
					_ = b.AddEdge(6*c+i, 6*c+j)
				}
			}
		}
		_ = b.AddEdge(0, 12)
		_ = b.AddEdge(12, 13)
		return b.Build()
	}()
	assign := make([]int32, 14)
	for i := 6; i < 12; i++ {
		assign[i] = 1
	}
	assign[12], assign[13] = 2, 2 // tiny cluster of 2
	c, err := FromAssignment(assign)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeSmall(g, c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumClusters() != 2 {
		t.Fatalf("clusters = %d, want 2", merged.NumClusters())
	}
	// The pair connects to clique A (via user 0), so it must join A.
	if merged.Cluster(12) != merged.Cluster(0) || merged.Cluster(13) != merged.Cluster(0) {
		t.Error("tiny cluster merged into the wrong neighbor")
	}
	for id := 0; id < merged.NumClusters(); id++ {
		if merged.Size(id) < 3 {
			t.Errorf("cluster %d still undersized: %d", id, merged.Size(id))
		}
	}
}

func TestMergeSmallIsolatedCluster(t *testing.T) {
	// A clique of 5 and two isolated users (no edges at all).
	b := graph.NewSocialBuilder(7)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			_ = b.AddEdge(i, j)
		}
	}
	g := b.Build()
	c, err := FromAssignment([]int32{0, 0, 0, 0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeSmall(g, c, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Isolated singletons have no connecting edges; they must still end
	// up somewhere and every surviving cluster must meet the floor.
	for id := 0; id < merged.NumClusters(); id++ {
		if merged.Size(id) < 2 {
			t.Errorf("cluster %d undersized after merge: %d", id, merged.Size(id))
		}
	}
}

func TestMergeSmallNoOpCases(t *testing.T) {
	g := twoCliques(t, 4)
	c := Louvain(g, Options{Seed: 1})
	same, err := MergeSmall(g, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if same != c {
		t.Error("minSize <= 1 should return the input unchanged")
	}
	if _, err := MergeSmall(g, mustFrom(t, []int32{0}), 2); err == nil {
		t.Error("mismatched sizes should fail")
	}
}

func mustFrom(t *testing.T, a []int32) *Clustering {
	t.Helper()
	c, err := FromAssignment(a)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMergeSmallPreservesUserCount(t *testing.T) {
	g, _ := plantedPartition(t, 5, 12, 0.5, 0.05, 3)
	c := Louvain(g, Options{Seed: 2})
	merged, err := MergeSmall(g, c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumUsers() != c.NumUsers() {
		t.Fatal("user count changed")
	}
	total := 0
	for _, s := range merged.Sizes() {
		total += s
	}
	if total != c.NumUsers() {
		t.Fatal("sizes do not partition the users")
	}
}

func TestKMeansSimilarityRecoversCliques(t *testing.T) {
	g := twoCliques(t, 8)
	c := KMeansSimilarity(g, similarity.CommonNeighbors{}, 2, 1, 0)
	if c.NumUsers() != 16 {
		t.Fatalf("users = %d", c.NumUsers())
	}
	// All of clique A together, all of clique B together, separately.
	for i := 1; i < 8; i++ {
		if c.Cluster(i) != c.Cluster(0) {
			t.Fatalf("clique A split: %v", c.Assignment())
		}
		if c.Cluster(8+i) != c.Cluster(8) {
			t.Fatalf("clique B split: %v", c.Assignment())
		}
	}
	if c.Cluster(0) == c.Cluster(8) {
		t.Error("cliques merged")
	}
}

func TestKMeansSimilarityClamping(t *testing.T) {
	g := twoCliques(t, 3)
	if got := KMeansSimilarity(g, similarity.CommonNeighbors{}, 0, 1, 5).NumClusters(); got != 1 {
		t.Errorf("k=0 should clamp to 1, got %d clusters", got)
	}
	c := KMeansSimilarity(g, similarity.CommonNeighbors{}, 100, 1, 5)
	if c.NumUsers() != 6 {
		t.Errorf("users = %d", c.NumUsers())
	}
}
