package community

import (
	"fmt"

	"socialrec/internal/graph"
)

// Repair incrementally updates an existing clustering after graph
// mutations, instead of re-running full Louvain. New vertices (ids at or
// beyond the base clustering's population) start as singletons; then
// greedy modularity local moves sweep outward from the touched vertices —
// each move can destabilize only its neighborhood, so the worklist stays
// proportional to the blast radius of the mutations rather than |V|.
//
// Like localMove, every accepted move strictly increases modularity by at
// least the minimum gain, so the repair terminates; a safety cap bounds
// the worklist against pathological cascades. The result is compacted to
// dense cluster ids.
//
// Repair reads only the public social graph (as all clustering here
// does), so it consumes no privacy budget.
func Repair(g *graph.Social, base *Clustering, touched []int32, opt Options) (*Clustering, error) {
	n := g.NumUsers()
	nb := base.NumUsers()
	if n < nb {
		return nil, fmt.Errorf("community: repair: graph has %d users but base clustering covers %d (shrinking is unsupported)", n, nb)
	}
	assign := make([]int32, n)
	copy(assign, base.Assignment())
	comms := base.NumClusters()
	for u := nb; u < n; u++ {
		assign[u] = int32(comms)
		comms++
	}

	wg := fromSocial(g)
	if wg.total == 0 {
		c, err := FromAssignment(assign)
		if err != nil {
			return nil, err
		}
		return c, nil
	}

	// Seed the worklist with the touched vertices and every new vertex.
	queue := make([]int32, 0, len(touched)+(n-nb))
	queued := make([]bool, n)
	push := func(u int32) {
		if !queued[u] {
			queued[u] = true
			queue = append(queue, u)
		}
	}
	for _, u := range touched {
		if u < 0 || int(u) >= n {
			return nil, fmt.Errorf("community: repair: touched vertex %d outside population of %d", u, n)
		}
		push(u)
	}
	for u := nb; u < n; u++ {
		push(int32(u))
	}

	tot := make([]float64, comms) // community → Σ of weighted degrees
	for u := 0; u < n; u++ {
		tot[assign[u]] += wg.wdeg[u]
	}
	m2 := 2 * wg.total
	minGain := opt.minGain()
	neighW := make([]float64, comms)
	scratch := make([]int32, 0, 64)

	// Safety cap: local moves strictly improve modularity so this is never
	// reached in practice, but a bound keeps the worst case linear-ish.
	budget := 32*n + 1024
	for head := 0; head < len(queue); head++ {
		if head > budget {
			break
		}
		u := queue[head]
		queued[u] = false
		cu := assign[u]
		scratch = scratch[:0]
		for e := wg.off[u]; e < wg.off[u+1]; e++ {
			v := wg.to[e]
			if v == u {
				continue
			}
			c := assign[v]
			if neighW[c] == 0 {
				scratch = append(scratch, c)
			}
			neighW[c] += wg.w[e]
		}
		tot[cu] -= wg.wdeg[u]
		best := cu
		bestGain := neighW[cu] - tot[cu]*wg.wdeg[u]/m2
		for _, c := range scratch {
			if c == cu {
				continue
			}
			gain := neighW[c] - tot[c]*wg.wdeg[u]/m2
			if gain > bestGain+minGain {
				best, bestGain = c, gain
			}
		}
		for _, c := range scratch {
			neighW[c] = 0
		}
		tot[best] += wg.wdeg[u]
		if best != cu {
			assign[u] = best
			// The move can destabilize u's neighborhood; re-examine it.
			for e := wg.off[u]; e < wg.off[u+1]; e++ {
				if v := wg.to[e]; v != u {
					push(v)
				}
			}
		}
	}

	c, err := FromAssignment(assign)
	if err != nil {
		return nil, err
	}
	return c, nil
}
