// Package community implements the clustering phase of the framework
// (§5.1.2 of the paper): detection of the social graph's community structure
// with the Louvain method [4], extended with the multi-level refinement of
// Rotta & Noack [29], exactly as the paper's experimental setup (§6.2)
// describes. Random clustering and label propagation are provided as
// ablation baselines.
//
// Everything in this package reads only the public social graph G_s; no
// preference data ever enters, which is what makes the clustering free under
// differential privacy (paper Theorem 4).
package community

import (
	"fmt"
	"math"
	"math/rand"

	"socialrec/internal/graph"
)

// Clustering is a partition of the users of a social graph into disjoint
// clusters. Cluster ids are dense in [0, NumClusters).
type Clustering struct {
	assign []int32 // user → cluster
	sizes  []int32 // cluster → member count
}

// FromAssignment builds a Clustering from a user → cluster assignment. The
// assignment is renumbered to dense cluster ids, preserving the order of
// first appearance. It returns an error if any assignment is negative.
func FromAssignment(assign []int32) (*Clustering, error) {
	remap := make(map[int32]int32)
	c := &Clustering{assign: make([]int32, len(assign))}
	for u, a := range assign {
		if a < 0 {
			// Deliberately does not echo u or a: the assignment is derived
			// from the private adjacency structure, and this error can
			// surface in logs and panics.
			return nil, fmt.Errorf("community: assignment contains a negative cluster id")
		}
		id, ok := remap[a]
		if !ok {
			id = int32(len(remap))
			remap[a] = id
			c.sizes = append(c.sizes, 0)
		}
		c.assign[u] = id
		c.sizes[id]++
	}
	return c, nil
}

// NumUsers reports the number of users partitioned.
func (c *Clustering) NumUsers() int { return len(c.assign) }

// NumClusters reports the number of clusters.
func (c *Clustering) NumClusters() int { return len(c.sizes) }

// Cluster reports the cluster id of user u.
func (c *Clustering) Cluster(u int) int { return int(c.assign[u]) }

// Size reports the number of users in cluster id.
func (c *Clustering) Size(id int) int { return int(c.sizes[id]) }

// Sizes returns a copy of the per-cluster member counts.
func (c *Clustering) Sizes() []int {
	out := make([]int, len(c.sizes))
	for i, s := range c.sizes {
		out[i] = int(s)
	}
	return out
}

// Members returns, for every cluster, the sorted user ids it contains.
func (c *Clustering) Members() [][]int32 {
	out := make([][]int32, len(c.sizes))
	for i, s := range c.sizes {
		out[i] = make([]int32, 0, s)
	}
	for u, a := range c.assign {
		out[a] = append(out[a], int32(u))
	}
	return out
}

// Assignment returns a copy of the user → cluster assignment.
func (c *Clustering) Assignment() []int32 {
	out := make([]int32, len(c.assign))
	copy(out, c.assign)
	return out
}

// LargestFraction reports the fraction of all users held by the largest
// cluster, as quoted in §6.2 of the paper (28.5% for Last.fm, 18.3% for
// Flixster).
func (c *Clustering) LargestFraction() float64 {
	if len(c.assign) == 0 {
		return 0
	}
	var max int32
	for _, s := range c.sizes {
		if s > max {
			max = s
		}
	}
	return float64(max) / float64(len(c.assign))
}

// MeanSize returns the mean and population standard deviation of the cluster
// sizes.
func (c *Clustering) MeanSize() (mean, std float64) {
	k := len(c.sizes)
	if k == 0 {
		return 0, 0
	}
	var sum float64
	for _, s := range c.sizes {
		sum += float64(s)
	}
	mean = sum / float64(k)
	var ss float64
	for _, s := range c.sizes {
		d := float64(s) - mean
		ss += d * d
	}
	return mean, sqrt(ss / float64(k))
}

// Modularity computes the Newman modularity Q of the clustering on the
// (unweighted) social graph:
//
//	Q(Φ) = Σ_c [ L_c/|E_s| − (D_c / (2|E_s|))² ]
//
// where L_c is the number of intra-cluster edges and D_c the total degree of
// cluster c. This is Eq. 8 of the paper in its standard normalization.
func Modularity(g *graph.Social, c *Clustering) float64 {
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	intra := make([]float64, c.NumClusters())
	degsum := make([]float64, c.NumClusters())
	for u := 0; u < g.NumUsers(); u++ {
		cu := c.assign[u]
		degsum[cu] += float64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			if int32(u) < v && c.assign[v] == cu {
				intra[cu]++
			}
		}
	}
	var q float64
	for i := range intra {
		a := degsum[i] / (2 * m)
		q += intra[i]/m - a*a
	}
	return q
}

// Random partitions n users into k clusters uniformly at random. It is the
// "clustering without regard to structure" strawman of §5.1.2, used by the
// ablation benchmarks to isolate the value of community structure. k is
// clamped to [1, n] (for n > 0).
func Random(n, k int, rng *rand.Rand) *Clustering {
	if n == 0 {
		c, _ := FromAssignment(nil)
		return c
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	assign := make([]int32, n)
	// Deal one user to every cluster first so none is empty, then assign
	// the rest uniformly.
	perm := rng.Perm(n)
	for i := 0; i < k; i++ {
		assign[perm[i]] = int32(i)
	}
	for i := k; i < n; i++ {
		assign[perm[i]] = int32(rng.Intn(k))
	}
	c, err := FromAssignment(assign)
	if err != nil {
		panic("community: internal error: " + err.Error())
	}
	return c
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
