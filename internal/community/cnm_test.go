package community

import (
	"testing"

	"socialrec/internal/graph"
)

func TestCNMTwoCliques(t *testing.T) {
	g := twoCliques(t, 6)
	c := CNM(g)
	if c.NumClusters() != 2 {
		t.Fatalf("clusters = %d, want 2", c.NumClusters())
	}
	for i := 1; i < 6; i++ {
		if c.Cluster(i) != c.Cluster(0) || c.Cluster(6+i) != c.Cluster(6) {
			t.Fatalf("cliques split: %v", c.Assignment())
		}
	}
	if c.Cluster(0) == c.Cluster(6) {
		t.Error("cliques merged")
	}
}

func TestCNMPlantedPartition(t *testing.T) {
	g, _ := plantedPartition(t, 4, 25, 0.5, 0.01, 9)
	c := CNM(g)
	q := Modularity(g, c)
	if q < 0.5 {
		t.Errorf("CNM modularity = %v, want > 0.5 on a strongly planted graph", q)
	}
	if c.NumClusters() < 3 || c.NumClusters() > 8 {
		t.Errorf("clusters = %d, want near the planted 4", c.NumClusters())
	}
}

func TestCNMComparableToLouvain(t *testing.T) {
	g, _ := plantedPartition(t, 5, 20, 0.45, 0.02, 11)
	qc := Modularity(g, CNM(g))
	ql := Modularity(g, Louvain(g, Options{Seed: 1}))
	// The two greedy optimizers should land in the same neighbourhood;
	// neither should collapse.
	if qc < ql-0.15 {
		t.Errorf("CNM Q = %v far below Louvain Q = %v", qc, ql)
	}
}

func TestCNMEdgeCases(t *testing.T) {
	// Empty graph.
	if c := CNM(graph.NewSocialBuilder(0).Build()); c.NumClusters() != 0 {
		t.Errorf("empty graph: %d clusters", c.NumClusters())
	}
	// Edgeless graph: singletons.
	if c := CNM(graph.NewSocialBuilder(4).Build()); c.NumClusters() != 4 {
		t.Errorf("edgeless graph: %d clusters, want 4", c.NumClusters())
	}
	// Single edge: both endpoints merge (Q gain of merging a pendant pair
	// is positive), isolated node stays alone.
	b := graph.NewSocialBuilder(3)
	_ = b.AddEdge(0, 1)
	c := CNM(b.Build())
	if c.Cluster(0) != c.Cluster(1) {
		t.Error("connected pair should merge")
	}
	if c.Cluster(2) == c.Cluster(0) {
		t.Error("isolated node should stay separate")
	}
}

func TestCNMPartitionIsValid(t *testing.T) {
	g, _ := plantedPartition(t, 3, 15, 0.5, 0.05, 13)
	c := CNM(g)
	if c.NumUsers() != g.NumUsers() {
		t.Fatal("user count mismatch")
	}
	total := 0
	for _, s := range c.Sizes() {
		total += s
	}
	if total != g.NumUsers() {
		t.Fatal("sizes do not partition users")
	}
}
