package community

import (
	"socialrec/internal/graph"
)

// CNM detects communities with the Clauset–Newman–Moore greedy
// agglomerative algorithm: starting from singletons, repeatedly merge the
// connected pair of communities with the largest modularity gain until no
// merge improves modularity. It is an alternative clustering strategy for
// the framework (any algorithm that reads only G_s keeps Theorem 4 intact)
// and a reference point for the Louvain implementation: on well-separated
// graphs both should land near the same partition, with Louvain markedly
// faster on large inputs.
//
// This implementation favours clarity over the heap machinery of the
// original paper; it runs in O(n·(n+m)) worst case, comfortable for graphs
// up to a few tens of thousands of nodes.
func CNM(g *graph.Social) *Clustering {
	n := g.NumUsers()
	m2 := float64(2 * g.NumEdges())
	if n == 0 {
		c, _ := FromAssignment(nil)
		return c
	}
	if m2 == 0 {
		c, _ := FromAssignment(initSingleton(n))
		return c
	}

	// Community state. e[i][j] holds the fraction of all edge *ends*
	// running between communities i and j (i ≠ j, symmetric); a[i] the
	// fraction of edge ends attached to community i. ΔQ for merging i, j
	// is 2(e_ij − a_i·a_j).
	parent := make([]int32, n) // community → representative (itself if live)
	e := make([]map[int32]float64, n)
	a := make([]float64, n)
	for u := 0; u < n; u++ {
		parent[u] = int32(u)
		a[u] = float64(g.Degree(u)) / m2
		nb := g.Neighbors(u)
		e[u] = make(map[int32]float64, len(nb))
		for _, v := range nb {
			e[u][v] += 1 / m2
		}
	}
	live := make([]int32, n)
	copy(live, parent)

	for {
		// Find the best connected pair.
		var bi, bj int32 = -1, -1
		best := 0.0
		for _, i := range live {
			if parent[i] != i {
				continue
			}
			for j, eij := range e[i] {
				if j <= i || parent[j] != j {
					continue
				}
				if gain := 2 * (eij - a[i]*a[j]); gain > best+1e-15 {
					best, bi, bj = gain, i, j
				}
			}
		}
		if bi < 0 {
			break
		}
		// Merge bj into bi.
		for k, w := range e[bj] {
			if parent[k] != k || k == bi {
				continue
			}
			e[bi][k] += w
			e[k][bi] += w
			delete(e[k], bj)
		}
		delete(e[bi], bj)
		a[bi] += a[bj]
		parent[bj] = bi
		e[bj] = nil
	}

	// Resolve representatives (union-find style path compression).
	var find func(int32) int32
	find = func(x int32) int32 {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	assign := make([]int32, n)
	for u := 0; u < n; u++ {
		assign[u] = find(int32(u))
	}
	c, err := FromAssignment(assign)
	if err != nil {
		panic("community: internal error: " + err.Error())
	}
	return c
}
