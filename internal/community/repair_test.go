package community

import (
	"testing"

	"socialrec/internal/graph"
)

// ringOfCliques builds k well-separated cliques of size s with single
// bridge edges between consecutive cliques — an unambiguous community
// structure for repair to preserve.
func ringOfCliques(t *testing.T, k, s int) *graph.Social {
	t.Helper()
	b := graph.NewSocialBuilder(k * s)
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				if err := b.AddEdge(base+i, base+j); err != nil {
					t.Fatal(err)
				}
			}
		}
		next := ((c + 1) % k) * s
		if err := b.AddEdge(base, next); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestRepairNoMutationsIsStable(t *testing.T) {
	g := ringOfCliques(t, 4, 6)
	base, _ := BestOf(g, 4, 11, Options{})
	got, err := Repair(g, base, nil, Options{})
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if got.NumClusters() != base.NumClusters() {
		t.Fatalf("repair changed cluster count %d -> %d with no mutations", base.NumClusters(), got.NumClusters())
	}
	if Modularity(g, got) < Modularity(g, base)-1e-9 {
		t.Fatalf("repair decreased modularity")
	}
}

func TestRepairAbsorbsNewVertices(t *testing.T) {
	g := ringOfCliques(t, 4, 6)
	base, _ := BestOf(g, 4, 11, Options{})

	// Grow the graph: one new vertex tied densely into clique 0.
	n := g.NumUsers()
	b := graph.NewSocialBuilder(n + 1)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				if err := b.AddEdge(u, int(v)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for i := 0; i < 4; i++ {
		if err := b.AddEdge(n, i); err != nil {
			t.Fatal(err)
		}
	}
	g2 := b.Build()

	got, err := Repair(g2, base, []int32{0, 1, 2, 3}, Options{})
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if got.NumUsers() != n+1 {
		t.Fatalf("repaired clustering covers %d users, want %d", got.NumUsers(), n+1)
	}
	if got.Cluster(n) != got.Cluster(0) {
		t.Fatalf("new vertex with 4 edges into clique 0 landed in cluster %d, clique 0 is %d",
			got.Cluster(n), got.Cluster(0))
	}
	// Repair should track a fresh full clustering closely on this easy
	// structure.
	fresh, q := BestOf(g2, 4, 11, Options{})
	if gotQ := Modularity(g2, got); gotQ < q-0.05 {
		t.Fatalf("repaired modularity %.4f too far below fresh %.4f (%d vs %d clusters)",
			gotQ, q, got.NumClusters(), fresh.NumClusters())
	}
}

func TestRepairValidation(t *testing.T) {
	g := ringOfCliques(t, 3, 5)
	base, _ := BestOf(g, 2, 5, Options{})
	if _, err := Repair(g, base, []int32{int32(g.NumUsers())}, Options{}); err == nil {
		t.Fatal("out-of-range touched vertex accepted")
	}
	small := graph.NewSocialBuilder(3).Build()
	if _, err := Repair(small, base, nil, Options{}); err == nil {
		t.Fatal("shrunken graph accepted")
	}
}
