package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"socialrec/internal/generator"
	"socialrec/internal/graph"
)

func TestReadSocialTSV(t *testing.T) {
	in := "userA\tuserB\n" + // header (non-numeric first field)
		"10\t20\n" +
		"20\t30\n" +
		"# comment\n" +
		"\n" +
		"10\t30\n"
	g, ids, err := ReadSocialTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumUsers() != 3 || g.NumEdges() != 3 {
		t.Fatalf("shape = (%d users, %d edges), want (3, 3)", g.NumUsers(), g.NumEdges())
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	a, b := ids["10"], ids["20"]
	if !g.HasEdge(a, b) {
		t.Error("edge 10-20 missing")
	}
}

func TestReadSocialTSVNoHeader(t *testing.T) {
	g, _, err := ReadSocialTSV(strings.NewReader("1\t2\n2\t3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
}

func TestReadSocialTSVMalformed(t *testing.T) {
	if _, _, err := ReadSocialTSV(strings.NewReader("1\t2\nonlyone\n")); err == nil {
		t.Error("malformed line should fail")
	}
}

func TestReadPreferenceTSV(t *testing.T) {
	users := map[string]int{"u1": 0, "u2": 1}
	in := "user\titem\tweight\n" +
		"u1\tsong9\t5\n" +
		"u1\tsong3\t1\n" +
		"u2\tsong9\t3\n" +
		"ghost\tsong9\t9\n" // unknown user skipped
	raw, items, err := ReadPreferenceTSV(strings.NewReader(in), users)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 3 {
		t.Fatalf("raw edges = %d, want 3", len(raw))
	}
	if len(items) != 2 {
		t.Fatalf("items = %v", items)
	}
	if raw[0].Weight != 5 {
		t.Errorf("weight = %v, want 5", raw[0].Weight)
	}
}

func TestReadPreferenceTSVBadWeight(t *testing.T) {
	users := map[string]int{"u1": 0}
	if _, _, err := ReadPreferenceTSV(strings.NewReader("u1\ti\tnotanumber\n"), users); err == nil {
		t.Error("bad weight should fail")
	}
}

func TestBuildPreferencesThreshold(t *testing.T) {
	// Mirrors §6.1: discard edges with weight < 2, unweight the rest.
	raw := []RawEdge{
		{User: 0, Item: 0, Weight: 1},
		{User: 0, Item: 1, Weight: 2},
		{User: 1, Item: 0, Weight: 5},
	}
	p, dropped, err := BuildPreferences(2, 2, raw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if p.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", p.NumEdges())
	}
	if p.Weight(0, 1) != 1 || p.Weight(0, 0) != 0 {
		t.Error("thresholding wrong")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	sb := graph.NewSocialBuilder(4)
	_ = sb.AddEdge(0, 1)
	_ = sb.AddEdge(1, 2)
	_ = sb.AddEdge(2, 3)
	g := sb.Build()
	var buf bytes.Buffer
	if err := WriteSocialTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadSocialTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumUsers() != g.NumUsers() {
		t.Error("social round trip changed the graph")
	}

	pb := graph.NewPreferenceBuilder(4, 3)
	_ = pb.AddEdge(0, 0)
	_ = pb.AddEdge(3, 2)
	p := pb.Build()
	buf.Reset()
	if err := WritePreferenceTSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "0\t0\n3\t2\n" {
		t.Errorf("preference TSV = %q", got)
	}
}

func TestSummarize(t *testing.T) {
	social, _, prefs, err := generator.TinyTest(3).Generate()
	if err != nil {
		t.Fatal(err)
	}
	ds := &Dataset{Name: "t", Social: social, Prefs: prefs}
	s := ds.Summarize()
	if s.Users != social.NumUsers() || s.Items != prefs.NumItems() {
		t.Error("stats dimensions wrong")
	}
	if s.PrefSparsity <= 0 || s.PrefSparsity >= 1 {
		t.Errorf("sparsity = %v", s.PrefSparsity)
	}
	wantSparsity := 1 - float64(prefs.NumEdges())/(float64(social.NumUsers())*float64(prefs.NumItems()))
	if math.Abs(s.PrefSparsity-wantSparsity) > 1e-12 {
		t.Errorf("sparsity = %v, want %v", s.PrefSparsity, wantSparsity)
	}
	out := s.String()
	for _, needle := range []string{"|U|", "|E_s|", "avg. user degree", "sparsity"} {
		if !strings.Contains(out, needle) {
			t.Errorf("stats output missing %q:\n%s", needle, out)
		}
	}
}

func TestWeightedRoundTrip(t *testing.T) {
	b := graph.NewWeightedPreferenceBuilder(3, 4)
	if err := b.AddEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3, 4); err != nil {
		t.Fatal(err)
	}
	p := b.Build()
	var buf bytes.Buffer
	if err := WriteWeightedPreferenceTSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	users := map[string]int{"0": 0, "1": 1, "2": 2}
	raw, items, err := ReadPreferenceTSV(&buf, users)
	if err != nil {
		t.Fatal(err)
	}
	wp, dropped, err := BuildWeightedPreferences(3, len(items), raw)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || wp.NumEdges() != 2 {
		t.Fatalf("round trip lost edges: %d edges, %d dropped", wp.NumEdges(), dropped)
	}
	// Item ids were remapped densely; weights must survive.
	found := false
	for u := 0; u < 3; u++ {
		_, ws := wp.Edges(u)
		for _, w := range ws {
			if w == 2.5 {
				found = true
			}
		}
	}
	if !found {
		t.Error("weight 2.5 lost in round trip")
	}
}

func TestBuildWeightedPreferencesDropsNonPositive(t *testing.T) {
	raw := []RawEdge{{User: 0, Item: 0, Weight: 3}, {User: 0, Item: 1, Weight: 0}, {User: 0, Item: 2, Weight: -2}}
	wp, dropped, err := BuildWeightedPreferences(1, 3, raw)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 || wp.NumEdges() != 1 {
		t.Errorf("edges = %d, dropped = %d; want 1, 2", wp.NumEdges(), dropped)
	}
}
