package dataset

import (
	"errors"
	"strings"
	"testing"
)

func TestLenientSocialQuarantinesMalformedRows(t *testing.T) {
	in := "1\t2\nbroken\n2\t3\n\n# comment\nonly_one_field\n3\t1\n"
	g, ids, rep, err := ReadSocialTSVOpts(strings.NewReader(in), ReadOptions{Lenient: true})
	if err != nil {
		t.Fatalf("lenient read: %v", err)
	}
	if g.NumUsers() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d users %d edges, want 3 and 3", g.NumUsers(), g.NumEdges())
	}
	if len(ids) != 3 {
		t.Fatalf("got %d ids, want 3", len(ids))
	}
	if rep.Rows != 3 || rep.Dropped != 2 {
		t.Fatalf("report rows=%d dropped=%d, want 3 and 2", rep.Rows, rep.Dropped)
	}
	want := []QuarantinedRow{
		{Line: 2, Reason: "want 2 fields, got 1"},
		{Line: 6, Reason: "want 2 fields, got 1"},
	}
	if len(rep.Quarantined) != len(want) {
		t.Fatalf("quarantined %v, want %v", rep.Quarantined, want)
	}
	for i, q := range rep.Quarantined {
		if q != want[i] {
			t.Errorf("quarantined[%d] = %+v, want %+v", i, q, want[i])
		}
	}
	if rep.Truncated {
		t.Error("report truncated below the cap")
	}
}

func TestStrictSocialFailsFastOnMalformedRow(t *testing.T) {
	in := "1\t2\nbroken\n2\t3\n"
	_, _, rep, err := ReadSocialTSVOpts(strings.NewReader(in), ReadOptions{})
	if err == nil || !strings.Contains(err.Error(), "social line 2") {
		t.Fatalf("err = %v, want social line 2 failure", err)
	}
	if rep == nil || rep.Lines != 2 {
		t.Fatalf("report = %+v, want Lines=2", rep)
	}
}

func TestOversizedLineLenientSkipsStrictFails(t *testing.T) {
	long := strings.Repeat("x", 100)
	in := "1\t2\n" + long + "\n2\t3\n"
	opts := ReadOptions{MaxLineBytes: 32}

	_, _, _, err := ReadSocialTSVOpts(strings.NewReader(in), opts)
	if err == nil || !strings.Contains(err.Error(), "exceeds 32 bytes") {
		t.Fatalf("strict err = %v, want line-cap failure", err)
	}

	opts.Lenient = true
	g, _, rep, err := ReadSocialTSVOpts(strings.NewReader(in), opts)
	if err != nil {
		t.Fatalf("lenient read: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("got %d edges, want 2 (oversized line skipped)", g.NumEdges())
	}
	if rep.Dropped != 1 || len(rep.Quarantined) != 1 || rep.Quarantined[0].Line != 2 {
		t.Fatalf("report = %+v, want 1 drop at line 2", rep)
	}
	if !strings.Contains(rep.Quarantined[0].Reason, "exceeds 32 bytes") {
		t.Fatalf("reason = %q", rep.Quarantined[0].Reason)
	}
	if strings.Contains(rep.Summary(), "xxx") {
		t.Fatal("quarantine report leaked row contents")
	}
}

func TestTotalByteCapFatalEvenInLenientMode(t *testing.T) {
	in := strings.Repeat("1\t2\n", 100)
	for _, lenient := range []bool{false, true} {
		_, _, _, err := ReadSocialTSVOpts(strings.NewReader(in), ReadOptions{MaxBytes: 64, Lenient: lenient})
		if !errors.Is(err, ErrInputTooLarge) {
			t.Fatalf("lenient=%v: err = %v, want ErrInputTooLarge", lenient, err)
		}
	}
}

func TestQuarantineRetentionCap(t *testing.T) {
	var b strings.Builder
	b.WriteString("1\t2\n")
	for i := 0; i < 5; i++ {
		b.WriteString("bad\n")
	}
	_, _, rep, err := ReadSocialTSVOpts(strings.NewReader(b.String()), ReadOptions{Lenient: true, MaxQuarantine: 2})
	if err != nil {
		t.Fatalf("lenient read: %v", err)
	}
	if rep.Dropped != 5 || len(rep.Quarantined) != 2 || !rep.Truncated {
		t.Fatalf("report = %+v, want 5 dropped, 2 retained, truncated", rep)
	}
	if !strings.Contains(rep.Summary(), "not itemized") {
		t.Fatalf("summary = %q, want truncation note", rep.Summary())
	}
}

func TestLenientPreferenceQuarantinesBadWeight(t *testing.T) {
	users := map[string]int{"1": 0, "2": 1}
	in := "1\talpha\t3.5\n2\tbeta\tNOPE\nunknown\tgamma\t1\n2\talpha\n"
	raw, items, rep, err := ReadPreferenceTSVOpts(strings.NewReader(in), users, ReadOptions{Lenient: true})
	if err != nil {
		t.Fatalf("lenient read: %v", err)
	}
	if len(raw) != 2 {
		t.Fatalf("got %d edges, want 2", len(raw))
	}
	// The quarantined row must not have interned its item token.
	if _, ok := items["beta"]; ok {
		t.Error("bad-weight row polluted the item id map")
	}
	// Unknown users are skipped silently (paper semantics), not quarantined.
	if rep.Dropped != 1 || rep.Quarantined[0].Line != 2 || rep.Quarantined[0].Reason != "unparsable weight" {
		t.Fatalf("report = %+v, want one bad-weight drop at line 2", rep)
	}
	if strings.Contains(rep.Summary(), "NOPE") {
		t.Fatal("quarantine report leaked the raw weight token")
	}
}

func TestStrictOptsMatchLegacyReaders(t *testing.T) {
	social := "userA\tuserB\n1\t2\n2\t3\n3\t1\n4\t1"
	prefs := "user\titem\tweight\n1\t10\t2\n2\t11\n3\t10\t0.5"

	g1, ids1, err := ReadSocialTSV(strings.NewReader(social))
	if err != nil {
		t.Fatalf("legacy social: %v", err)
	}
	g2, ids2, rep, err := ReadSocialTSVOpts(strings.NewReader(social), ReadOptions{})
	if err != nil {
		t.Fatalf("opts social: %v", err)
	}
	if g1.NumUsers() != g2.NumUsers() || g1.NumEdges() != g2.NumEdges() || len(ids1) != len(ids2) {
		t.Fatal("strict opts social read diverged from legacy")
	}
	if rep.Rows != 4 || rep.Lines != 5 || rep.Bytes != int64(len(social)) {
		t.Fatalf("report = %+v, want 4 rows, 5 lines, %d bytes", rep, len(social))
	}

	raw1, items1, err := ReadPreferenceTSV(strings.NewReader(prefs), ids1)
	if err != nil {
		t.Fatalf("legacy prefs: %v", err)
	}
	raw2, items2, _, err := ReadPreferenceTSVOpts(strings.NewReader(prefs), ids2, ReadOptions{})
	if err != nil {
		t.Fatalf("opts prefs: %v", err)
	}
	if len(raw1) != len(raw2) || len(items1) != len(items2) {
		t.Fatal("strict opts preference read diverged from legacy")
	}
	for i := range raw1 {
		if raw1[i] != raw2[i] {
			t.Fatalf("edge %d: %+v vs %+v", i, raw1[i], raw2[i])
		}
	}
}

func TestLineScannerHandlesMissingTrailingNewline(t *testing.T) {
	g, _, rep, err := ReadSocialTSVOpts(strings.NewReader("1\t2\n3\t4"), ReadOptions{})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if g.NumEdges() != 2 || rep.Lines != 2 {
		t.Fatalf("got %d edges over %d lines, want 2 and 2", g.NumEdges(), rep.Lines)
	}
}

func TestOversizedFinalLineWithoutNewline(t *testing.T) {
	in := "1\t2\n" + strings.Repeat("y", 64)
	g, _, rep, err := ReadSocialTSVOpts(strings.NewReader(in), ReadOptions{MaxLineBytes: 16, Lenient: true})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if g.NumEdges() != 1 || rep.Dropped != 1 {
		t.Fatalf("got %d edges, %d dropped; want 1 and 1", g.NumEdges(), rep.Dropped)
	}
}
