package dataset

import (
	"strings"
	"testing"
)

// FuzzReadSocialTSV asserts the parser never panics and, when it succeeds,
// produces a structurally sound graph. Seeds run as ordinary tests; `go
// test -fuzz=FuzzReadSocialTSV ./internal/dataset` explores further.
func FuzzReadSocialTSV(f *testing.F) {
	f.Add("1\t2\n2\t3\n")
	f.Add("userA\tuserB\n10\t20\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Add("1\n")
	f.Add("a\tb\tc\td\n")
	f.Add("1\t1\n")
	f.Add(strings.Repeat("9\t9\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		g, ids, err := ReadSocialTSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if g.NumUsers() != len(ids) {
			t.Fatalf("graph has %d users but %d ids", g.NumUsers(), len(ids))
		}
		degSum := 0
		for u := 0; u < g.NumUsers(); u++ {
			degSum += g.Degree(u)
		}
		if degSum != 2*g.NumEdges() {
			t.Fatal("degree sum does not match edge count")
		}
	})
}

// FuzzReadPreferenceTSV asserts the preference parser never panics and that
// resolved edges always reference known users.
func FuzzReadPreferenceTSV(f *testing.F) {
	users := map[string]int{"u1": 0, "u2": 1, "5": 2}
	f.Add("u1\ti1\t3\n")
	f.Add("user\titem\tweight\nu1\ti1\t2\n")
	f.Add("ghost\ti1\t2\n")
	f.Add("u1\ti1\tNaN\n")
	f.Add("u1\ti1\t\x00\n")
	f.Add("5\t5\t5\n")
	f.Fuzz(func(t *testing.T, input string) {
		raw, items, err := ReadPreferenceTSV(strings.NewReader(input), users)
		if err != nil {
			return
		}
		for _, e := range raw {
			if e.User < 0 || e.User >= len(users) {
				t.Fatalf("edge references unknown user %d", e.User)
			}
			if e.Item < 0 || e.Item >= len(items) {
				t.Fatalf("edge references unknown item %d", e.Item)
			}
		}
	})
}
