package dataset

import (
	"strings"
	"testing"
)

// FuzzReadSocialTSV asserts the parser never panics and, when it succeeds,
// produces a structurally sound graph. Seeds run as ordinary tests; `go
// test -fuzz=FuzzReadSocialTSV ./internal/dataset` explores further.
func FuzzReadSocialTSV(f *testing.F) {
	f.Add("1\t2\n2\t3\n")
	f.Add("userA\tuserB\n10\t20\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Add("1\n")
	f.Add("a\tb\tc\td\n")
	f.Add("1\t1\n")
	f.Add(strings.Repeat("9\t9\n", 100))
	// Corrupt-TSV seeds for the hardened path: oversized lines, truncated
	// rows mid-file, binary junk, missing trailing newline.
	f.Add("1\t2\n" + strings.Repeat("z", 4096) + "\n3\t4\n")
	f.Add("1\t2\nbroken\n3\t4")
	f.Add("1\t2\n\x00\xff\x00\n3\t4\n")
	f.Add(strings.Repeat("\t", 64) + "\n1\t2\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, ids, err := ReadSocialTSV(strings.NewReader(input))
		if err == nil {
			if g.NumUsers() != len(ids) {
				t.Fatalf("graph has %d users but %d ids", g.NumUsers(), len(ids))
			}
			degSum := 0
			for u := 0; u < g.NumUsers(); u++ {
				degSum += g.Degree(u)
			}
			if degSum != 2*g.NumEdges() {
				t.Fatal("degree sum does not match edge count")
			}
		}
		// Lenient mode with a tight line cap must absorb any malformed
		// input, and what strict mode accepts lenient mode must preserve.
		lg, _, rep, lerr := ReadSocialTSVOpts(strings.NewReader(input),
			ReadOptions{Lenient: true, MaxLineBytes: 128, MaxQuarantine: 4})
		if lerr != nil {
			t.Fatalf("lenient read failed: %v", lerr)
		}
		if len(rep.Quarantined) > 4 {
			t.Fatalf("quarantine cap not honored: %d entries", len(rep.Quarantined))
		}
		if rep.Dropped > len(rep.Quarantined) && !rep.Truncated {
			t.Fatal("dropped rows beyond cap without Truncated flag")
		}
		if err == nil && rep.Dropped == 0 && lg.NumEdges() != g.NumEdges() {
			t.Fatalf("lenient read lost edges: %d vs %d", lg.NumEdges(), g.NumEdges())
		}
	})
}

// FuzzReadPreferenceTSV asserts the preference parser never panics and that
// resolved edges always reference known users.
func FuzzReadPreferenceTSV(f *testing.F) {
	users := map[string]int{"u1": 0, "u2": 1, "5": 2}
	f.Add("u1\ti1\t3\n")
	f.Add("user\titem\tweight\nu1\ti1\t2\n")
	f.Add("ghost\ti1\t2\n")
	f.Add("u1\ti1\tNaN\n")
	f.Add("u1\ti1\t\x00\n")
	f.Add("5\t5\t5\n")
	// Corrupt-TSV seeds: oversized line, bad weight mid-file, binary junk.
	f.Add("u1\ti1\t1\n" + strings.Repeat("q", 4096) + "\nu2\ti2\t2\n")
	f.Add("u1\ti1\t1\nu2\ti2\tbogus\nu1\ti3\n")
	f.Add("u1\t\x00\t1\n")
	f.Fuzz(func(t *testing.T, input string) {
		raw, items, err := ReadPreferenceTSV(strings.NewReader(input), users)
		if err == nil {
			for _, e := range raw {
				if e.User < 0 || e.User >= len(users) {
					t.Fatalf("edge references unknown user %d", e.User)
				}
				if e.Item < 0 || e.Item >= len(items) {
					t.Fatalf("edge references unknown item %d", e.Item)
				}
			}
		}
		lraw, litems, rep, lerr := ReadPreferenceTSVOpts(strings.NewReader(input), users,
			ReadOptions{Lenient: true, MaxLineBytes: 128, MaxQuarantine: 4})
		if lerr != nil {
			t.Fatalf("lenient read failed: %v", lerr)
		}
		for _, e := range lraw {
			if e.User < 0 || e.User >= len(users) || e.Item < 0 || e.Item >= len(litems) {
				t.Fatalf("lenient edge out of range: %+v", e)
			}
		}
		if err == nil && rep.Dropped == 0 && len(lraw) != len(raw) {
			t.Fatalf("lenient read changed edge count: %d vs %d", len(lraw), len(raw))
		}
	})
}
