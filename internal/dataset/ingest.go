package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"socialrec/internal/graph"
)

// Ingestion hardening: the TSV readers accept adversarial or corrupt input
// (the raw files cross the trust boundary before any privacy machinery
// runs), so they enforce byte caps and can quarantine malformed rows
// instead of dying mid-file.

// DefaultMaxLineBytes caps one input line, matching the historical scanner
// buffer limit.
const DefaultMaxLineBytes = 1 << 22

// DefaultMaxQuarantine caps how many quarantined rows a report retains.
const DefaultMaxQuarantine = 100

// ErrInputTooLarge reports that the input exceeded ReadOptions.MaxBytes.
// It is fatal even in lenient mode: a byte bomb is a resource attack, not
// a malformed row.
var ErrInputTooLarge = errors.New("dataset: input exceeds byte cap")

// ReadOptions harden a TSV read. The zero value is strict mode with the
// historical limits: fail fast on the first malformed row, 4 MiB line cap,
// no total cap.
type ReadOptions struct {
	// MaxLineBytes caps a single line; 0 selects DefaultMaxLineBytes.
	MaxLineBytes int
	// MaxBytes caps the total input size; 0 means unlimited. Exceeding it
	// is fatal in both modes (ErrInputTooLarge).
	MaxBytes int64
	// Lenient quarantines malformed rows (wrong field count, bad weight,
	// oversized line) into the report instead of failing fast.
	Lenient bool
	// MaxQuarantine caps the retained quarantine entries; 0 selects
	// DefaultMaxQuarantine. Rows beyond the cap are still counted and
	// dropped, just not itemized.
	MaxQuarantine int
}

func (o ReadOptions) maxLineBytes() int {
	if o.MaxLineBytes > 0 {
		return o.MaxLineBytes
	}
	return DefaultMaxLineBytes
}

func (o ReadOptions) maxQuarantine() int {
	if o.MaxQuarantine > 0 {
		return o.MaxQuarantine
	}
	return DefaultMaxQuarantine
}

// QuarantinedRow records one malformed input row a lenient read dropped.
type QuarantinedRow struct {
	// Line is the 1-based physical line number.
	Line int
	// Reason says what was wrong ("want 2 fields, got 1", "line exceeds
	// 4194304 bytes", …). It never echoes row contents: quarantine reports
	// may end up in logs, and raw rows are exactly the sensitive data this
	// framework exists to protect.
	Reason string
}

// IngestReport summarizes one hardened TSV read.
type IngestReport struct {
	// Lines is the number of physical lines consumed.
	Lines int
	// Bytes is the number of input bytes consumed.
	Bytes int64
	// Rows is the number of data rows accepted.
	Rows int
	// Dropped counts every quarantined row, including those beyond the
	// retention cap.
	Dropped int
	// Quarantined itemizes the first MaxQuarantine dropped rows.
	Quarantined []QuarantinedRow
	// Truncated is true when Dropped exceeded the retention cap.
	Truncated bool
}

func (rep *IngestReport) quarantine(line int, reason string, cap int) {
	rep.Dropped++
	if len(rep.Quarantined) < cap {
		rep.Quarantined = append(rep.Quarantined, QuarantinedRow{Line: line, Reason: reason})
	} else {
		rep.Truncated = true
	}
}

// Summary renders the report for operator logs.
func (rep *IngestReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d line(s), %d byte(s), %d row(s) accepted, %d dropped", rep.Lines, rep.Bytes, rep.Rows, rep.Dropped)
	for _, q := range rep.Quarantined {
		fmt.Fprintf(&b, "\n  line %d: %s", q.Line, q.Reason)
	}
	if rep.Truncated {
		fmt.Fprintf(&b, "\n  … further dropped rows not itemized (cap reached)")
	}
	return b.String()
}

// lineScanner reads capped lines without bufio.Scanner's unrecoverable
// token-too-long failure: an oversized line is consumed and reported, so a
// lenient caller can skip it and keep going.
type lineScanner struct {
	r        *bufio.Reader
	maxLine  int
	maxBytes int64
	bytes    int64
	line     int
}

func newLineScanner(r io.Reader, opts ReadOptions) *lineScanner {
	return &lineScanner{r: bufio.NewReader(r), maxLine: opts.maxLineBytes(), maxBytes: opts.MaxBytes}
}

// next returns the next line (without its newline). tooLong marks a line
// that exceeded the cap; its content is discarded but the stream stays
// consumable. io.EOF signals clean end of input.
func (s *lineScanner) next() (text string, tooLong bool, err error) {
	var buf []byte
	overflow := false
	for {
		chunk, err := s.r.ReadSlice('\n')
		s.bytes += int64(len(chunk))
		if s.maxBytes > 0 && s.bytes > s.maxBytes {
			return "", false, fmt.Errorf("%w (%d > %d bytes)", ErrInputTooLarge, s.bytes, s.maxBytes)
		}
		if !overflow {
			if len(buf)+len(chunk) > s.maxLine {
				overflow = true
				buf = nil
			} else {
				buf = append(buf, chunk...)
			}
		}
		switch {
		case err == nil:
			// Reached the newline.
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		case errors.Is(err, io.EOF):
			if len(chunk) == 0 && len(buf) == 0 && !overflow {
				return "", false, io.EOF
			}
			// Final line without a trailing newline.
		default:
			return "", false, err
		}
		s.line++
		if overflow {
			return "", true, nil
		}
		return strings.TrimSuffix(string(buf), "\n"), false, nil
	}
}

// ReadSocialTSVOpts is ReadSocialTSV with hardening options. In lenient
// mode malformed rows are quarantined into the returned report; in strict
// mode the first malformed row fails the read (the report still describes
// what was consumed up to that point).
func ReadSocialTSVOpts(r io.Reader, opts ReadOptions) (*graph.Social, map[string]int, *IngestReport, error) {
	type pair struct{ a, b int }
	ids := make(map[string]int)
	intern := func(tok string) int {
		if id, ok := ids[tok]; ok {
			return id
		}
		id := len(ids)
		ids[tok] = id
		return id
	}
	rep := &IngestReport{}
	ls := newLineScanner(r, opts)
	var pairs []pair
	for {
		text, tooLong, err := ls.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			rep.Lines, rep.Bytes = ls.line, ls.bytes
			return nil, nil, rep, fmt.Errorf("dataset: reading social edges: %w", err)
		}
		lineNo := ls.line
		if tooLong {
			if opts.Lenient {
				rep.quarantine(lineNo, fmt.Sprintf("line exceeds %d bytes", opts.maxLineBytes()), opts.maxQuarantine())
				continue
			}
			rep.Lines, rep.Bytes = ls.line, ls.bytes
			return nil, nil, rep, fmt.Errorf("dataset: social line %d: line exceeds %d bytes", lineNo, opts.maxLineBytes())
		}
		line := strings.TrimSpace(text)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			if opts.Lenient {
				rep.quarantine(lineNo, fmt.Sprintf("want 2 fields, got %d", len(fields)), opts.maxQuarantine())
				continue
			}
			rep.Lines, rep.Bytes = ls.line, ls.bytes
			return nil, nil, rep, fmt.Errorf("dataset: social line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		if lineNo == 1 && !isNumeric(fields[0]) {
			continue // header
		}
		pairs = append(pairs, pair{intern(fields[0]), intern(fields[1])})
		rep.Rows++
	}
	rep.Lines, rep.Bytes = ls.line, ls.bytes
	b := graph.NewSocialBuilder(len(ids))
	for _, p := range pairs {
		if err := b.AddEdge(p.a, p.b); err != nil {
			return nil, nil, rep, err
		}
	}
	return b.Build(), ids, rep, nil
}

// ReadPreferenceTSVOpts is ReadPreferenceTSV with hardening options; see
// ReadSocialTSVOpts for the strict/lenient contract.
func ReadPreferenceTSVOpts(r io.Reader, userIDs map[string]int, opts ReadOptions) ([]RawEdge, map[string]int, *IngestReport, error) {
	itemIDs := make(map[string]int)
	var raw []RawEdge
	rep := &IngestReport{}
	ls := newLineScanner(r, opts)
	for {
		text, tooLong, err := ls.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			rep.Lines, rep.Bytes = ls.line, ls.bytes
			return nil, nil, rep, fmt.Errorf("dataset: reading preference edges: %w", err)
		}
		lineNo := ls.line
		if tooLong {
			if opts.Lenient {
				rep.quarantine(lineNo, fmt.Sprintf("line exceeds %d bytes", opts.maxLineBytes()), opts.maxQuarantine())
				continue
			}
			rep.Lines, rep.Bytes = ls.line, ls.bytes
			return nil, nil, rep, fmt.Errorf("dataset: preference line %d: line exceeds %d bytes", lineNo, opts.maxLineBytes())
		}
		line := strings.TrimSpace(text)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			if opts.Lenient {
				rep.quarantine(lineNo, fmt.Sprintf("want >= 2 fields, got %d", len(fields)), opts.maxQuarantine())
				continue
			}
			rep.Lines, rep.Bytes = ls.line, ls.bytes
			return nil, nil, rep, fmt.Errorf("dataset: preference line %d: want >= 2 fields, got %d", lineNo, len(fields))
		}
		// Header heuristic: the first line is a header when its user token
		// is neither a known user nor numeric (e.g. "userID artistID weight").
		if _, known := userIDs[fields[0]]; lineNo == 1 && !known && !isNumeric(fields[0]) {
			continue
		}
		u, ok := userIDs[fields[0]]
		if !ok {
			continue
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				if opts.Lenient {
					rep.quarantine(lineNo, "unparsable weight", opts.maxQuarantine())
					continue
				}
				rep.Lines, rep.Bytes = ls.line, ls.bytes
				// The raw field and the strconv error (which embeds its input)
				// must not be echoed: strict-mode errors reach operator logs.
				return nil, nil, rep, fmt.Errorf("dataset: preference line %d: unparsable weight", lineNo)
			}
		}
		item, ok := itemIDs[fields[1]]
		if !ok {
			item = len(itemIDs)
			itemIDs[fields[1]] = item
		}
		raw = append(raw, RawEdge{User: u, Item: item, Weight: w})
		rep.Rows++
	}
	rep.Lines, rep.Bytes = ls.line, ls.bytes
	return raw, itemIDs, rep, nil
}
