// Package dataset provides dataset assembly, preprocessing and statistics:
// loading/saving the TSV formats used by the HetRec-2011 crawls the paper
// evaluates on, the preprocessing steps of §6.1 (weight thresholding,
// main-component extraction), and the Table-1 summary statistics.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"socialrec/internal/graph"
)

// Dataset bundles the two input graphs of the recommendation task.
type Dataset struct {
	Name   string
	Social *graph.Social
	Prefs  *graph.Preference
}

// Stats is the per-dataset summary of Table 1.
type Stats struct {
	Users         int
	SocialEdges   int
	AvgUserDegree float64
	StdUserDegree float64
	Items         int
	PrefEdges     int
	// AvgPrefsPerUser is |E_p|/|U| with its std — what Table 1 of the
	// paper calls "avg. item degree" (92,198/1,892 = 48.7 for Last.fm and
	// 7,527,931/137,372 = 54.8 for Flixster only work out per *user*).
	AvgPrefsPerUser float64
	StdPrefsPerUser float64
	// AvgItemDegree is the per-item preference count (over items with at
	// least one edge), a complementary popularity statistic.
	AvgItemDegree  float64
	StdItemDegree  float64
	PrefSparsity   float64
	ComponentCount int
}

// Summarize computes the Table-1 statistics of the dataset.
func (d *Dataset) Summarize() Stats {
	var s Stats
	s.Users = d.Social.NumUsers()
	s.SocialEdges = d.Social.NumEdges()
	s.AvgUserDegree, s.StdUserDegree = d.Social.AvgDegree()
	s.Items = d.Prefs.NumItems()
	s.PrefEdges = d.Prefs.NumEdges()
	s.AvgItemDegree, s.StdItemDegree = d.Prefs.AvgItemDegree()
	if s.Users > 0 {
		s.AvgPrefsPerUser = float64(s.PrefEdges) / float64(s.Users)
		var ss float64
		for u := 0; u < s.Users; u++ {
			dlt := float64(d.Prefs.UserDegree(u)) - s.AvgPrefsPerUser
			ss += dlt * dlt
		}
		s.StdPrefsPerUser = math.Sqrt(ss / float64(s.Users))
	}
	s.PrefSparsity = d.Prefs.Sparsity()
	_, s.ComponentCount = d.Social.ConnectedComponents()
	return s
}

// String renders the stats as rows in the layout of Table 1.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "|U|               %d\n", s.Users)
	fmt.Fprintf(&b, "|E_s|             %d\n", s.SocialEdges)
	fmt.Fprintf(&b, "avg. user degree  %.1f (std. %.1f)\n", s.AvgUserDegree, s.StdUserDegree)
	fmt.Fprintf(&b, "|I|               %d\n", s.Items)
	fmt.Fprintf(&b, "|E_p|             %d\n", s.PrefEdges)
	fmt.Fprintf(&b, "avg. item degree  %.1f (std. %.1f)   [per user, Table 1 semantics]\n", s.AvgPrefsPerUser, s.StdPrefsPerUser)
	fmt.Fprintf(&b, "item popularity   %.1f (std. %.1f)   [per item]\n", s.AvgItemDegree, s.StdItemDegree)
	fmt.Fprintf(&b, "sparsity(G_p)     %.3f\n", s.PrefSparsity)
	fmt.Fprintf(&b, "components(G_s)   %d\n", s.ComponentCount)
	return b.String()
}

// RawEdge is a weighted user→item interaction prior to preprocessing (a
// listen count on Last.fm, a star rating on Flixster).
type RawEdge struct {
	User, Item int
	Weight     float64
}

// BuildPreferences applies the paper's §6.1 preprocessing to raw weighted
// interactions: edges with weight < minWeight are discarded and the rest
// become unweighted preference edges.
func BuildPreferences(numUsers, numItems int, raw []RawEdge, minWeight float64) (*graph.Preference, int, error) {
	b := graph.NewPreferenceBuilder(numUsers, numItems)
	dropped := 0
	for _, e := range raw {
		if e.Weight < minWeight {
			dropped++
			continue
		}
		if err := b.AddEdge(e.User, e.Item); err != nil {
			return nil, 0, err
		}
	}
	return b.Build(), dropped, nil
}

// ReadSocialTSV parses a HetRec-style friendship file: one "userA<TAB>userB"
// pair per line, with an optional header line. External ids are remapped to
// dense internal ids in order of first appearance; the mapping is returned.
// It reads in strict mode with the default caps; see ReadSocialTSVOpts for
// lenient ingestion of corrupt files.
func ReadSocialTSV(r io.Reader) (*graph.Social, map[string]int, error) {
	g, ids, _, err := ReadSocialTSVOpts(r, ReadOptions{})
	return g, ids, err
}

// ReadPreferenceTSV parses a HetRec-style interaction file: one
// "user<TAB>item<TAB>weight" triple per line (weight optional, default 1),
// with an optional header. User tokens are resolved through userIDs (users
// absent from the social graph are skipped, as the paper uses the social
// graph's user set); item ids are remapped densely and returned.
// It reads in strict mode with the default caps; see ReadPreferenceTSVOpts
// for lenient ingestion of corrupt files.
func ReadPreferenceTSV(r io.Reader, userIDs map[string]int) ([]RawEdge, map[string]int, error) {
	raw, itemIDs, _, err := ReadPreferenceTSVOpts(r, userIDs, ReadOptions{})
	return raw, itemIDs, err
}

// BuildWeightedPreferences assembles raw weighted interactions into a
// weighted preference graph for the §7 extension, keeping real-valued
// weights instead of thresholding. Non-positive weights are dropped (absent
// edges have implicit weight 0).
func BuildWeightedPreferences(numUsers, numItems int, raw []RawEdge) (*graph.WeightedPreference, int, error) {
	b := graph.NewWeightedPreferenceBuilder(numUsers, numItems)
	dropped := 0
	for _, e := range raw {
		if e.Weight <= 0 {
			dropped++
			continue
		}
		if err := b.AddEdge(e.User, e.Item, e.Weight); err != nil {
			return nil, 0, err
		}
	}
	return b.Build(), dropped, nil
}

// WriteWeightedPreferenceTSV writes a weighted preference graph as
// "u<TAB>i<TAB>w" lines, the format ReadPreferenceTSV parses back.
func WriteWeightedPreferenceTSV(w io.Writer, p *graph.WeightedPreference) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < p.NumUsers(); u++ {
		items, ws := p.Edges(u)
		for k, i := range items {
			if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\n", u, i, ws[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteSocialTSV writes the social graph as "u<TAB>v" lines (each undirected
// edge once, u < v).
func WriteSocialTSV(w io.Writer, g *graph.Social) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < g.NumUsers(); u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				if _, err := fmt.Fprintf(bw, "%d\t%d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// WritePreferenceTSV writes the preference graph as "u<TAB>i" lines.
func WritePreferenceTSV(w io.Writer, p *graph.Preference) error {
	bw := bufio.NewWriter(w)
	for u := 0; u < p.NumUsers(); u++ {
		for _, i := range p.Items(u) {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", u, i); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func isNumeric(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
