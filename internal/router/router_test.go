package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"socialrec/internal/core"
	"socialrec/internal/faults"
	"socialrec/internal/release"
	"socialrec/internal/server"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

func testLogger(tb testing.TB) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{tb}, nil))
}

type testWriter struct{ tb testing.TB }

func (w testWriter) Write(p []byte) (int, error) {
	w.tb.Logf("%s", p)
	return len(p), nil
}

// testManifest builds a numShards-shard manifest over numUsers users:
// cluster c lives on shard c, user u sits in cluster u%numShards. Token
// "u<i>" maps to user i.
func testManifest(numShards, numUsers int) (*release.Manifest, map[string]int) {
	m := &release.Manifest{
		Version:   1,
		NumShards: numShards,
		Epsilon:   0.5,
		Measure:   "cn",
		NumItems:  2,
		Horizon:   2,
	}
	m.ClusterShard = make([]int32, numShards)
	for c := range m.ClusterShard {
		m.ClusterShard[c] = int32(c)
	}
	m.Assign = make([]int32, numUsers)
	ids := make(map[string]int, numUsers)
	for u := 0; u < numUsers; u++ {
		m.Assign[u] = int32(u % numShards)
		ids["u"+strconv.Itoa(u)] = u
	}
	return m, ids
}

// ownedEngine is a shard-side engine for tier tests: it owns exactly the
// users the manifest assigns to its shard and records every request
// context's deadline so tests can assert budget propagation.
type ownedEngine struct {
	shard    int
	manifest *release.Manifest
	disown   atomic.Bool // own nothing (misroute tests flip this on)

	mu        sync.Mutex
	deadlines []time.Time
}

func (e *ownedEngine) RecommendContext(ctx context.Context, user, n int) ([]core.Recommendation, error) {
	if d, ok := ctx.Deadline(); ok {
		e.mu.Lock()
		e.deadlines = append(e.deadlines, d)
		e.mu.Unlock()
	}
	out := []core.Recommendation{{Item: 0, Utility: 3}, {Item: 1, Utility: 2}}
	if n < len(out) {
		out = out[:n]
	}
	return out, nil
}

func (e *ownedEngine) Owns(user int) bool {
	return !e.disown.Load() && e.manifest.ShardOf(user) == e.shard
}

func (e *ownedEngine) lastDeadline() (time.Time, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.deadlines) == 0 {
		return time.Time{}, false
	}
	return e.deadlines[len(e.deadlines)-1], true
}

func (e *ownedEngine) ClusterOf(user int) int { return int(e.manifest.Assign[user]) }
func (e *ownedEngine) Epsilon() float64       { return 0.5 }
func (e *ownedEngine) NumClusters() int       { return e.manifest.NumClusters() }
func (e *ownedEngine) Modularity() float64    { return 0.4 }

// tier is a full in-process serving tier: real shard servers (internal/
// server, each with its own tracer and registry, like separate processes)
// fronted by a Router under test.
type tier struct {
	manifest     *release.Manifest
	ids          map[string]int
	rt           *Router
	srv          *httptest.Server
	shardSrvs    []*httptest.Server
	shardTracers []*trace.Tracer
	engines      []*ownedEngine
	tracer       *trace.Tracer
}

func newTestTier(t *testing.T, numShards int, mutate func(cfg *Config)) *tier {
	t.Helper()
	manifest, ids := testManifest(numShards, numShards*2)
	tr := &tier{manifest: manifest, ids: ids}
	for s := 0; s < numShards; s++ {
		eng := &ownedEngine{shard: s, manifest: manifest}
		shardTracer := trace.New(trace.Config{Seed: int64(s + 1)})
		srv, err := server.New(server.Config{
			Engine:         eng,
			UserIDs:        ids,
			ItemTokens:     []string{"i0", "i1"},
			MaxN:           8,
			RequestTimeout: 10 * time.Second,
			Logger:         testLogger(t),
			Metrics:        telemetry.NewRegistry(),
			Tracer:         shardTracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		tr.engines = append(tr.engines, eng)
		tr.shardTracers = append(tr.shardTracers, shardTracer)
		tr.shardSrvs = append(tr.shardSrvs, ts)
	}
	shards := make([][]string, numShards)
	for s, ts := range tr.shardSrvs {
		shards[s] = []string{ts.URL}
	}
	tr.tracer = trace.New(trace.Config{Seed: 99})
	cfg := Config{
		Manifest:      manifest,
		UserIDs:       ids,
		Shards:        shards,
		MaxAttempts:   3,
		PerTryTimeout: 2 * time.Second,
		RetryBackoff:  time.Millisecond,
		HedgeDelay:    -1, // deterministic: no speculative attempts unless a test asks
		ProbeInterval: -1, // deterministic: no background probing
		Logger:        testLogger(t),
		Metrics:       telemetry.NewRegistry(),
		Tracer:        tr.tracer,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.rt = rt
	tr.srv = httptest.NewServer(rt)
	t.Cleanup(tr.srv.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	})
	return tr
}

// rawTier spins a router over plain http.Handler replicas (no real shard
// servers), for failure-shape tests where the replica behavior is the
// point.
func rawTier(t *testing.T, replicas [][]http.Handler, mutate func(cfg *Config)) (*Router, *httptest.Server) {
	t.Helper()
	manifest, ids := testManifest(len(replicas), len(replicas)*2)
	shards := make([][]string, len(replicas))
	for s, reps := range replicas {
		for _, h := range reps {
			ts := httptest.NewServer(h)
			t.Cleanup(ts.Close)
			shards[s] = append(shards[s], ts.URL)
		}
	}
	cfg := Config{
		Manifest:      manifest,
		UserIDs:       ids,
		Shards:        shards,
		MaxAttempts:   3,
		PerTryTimeout: 2 * time.Second,
		RetryBackoff:  time.Millisecond,
		HedgeDelay:    -1,
		ProbeInterval: -1,
		Logger:        testLogger(t),
		Metrics:       telemetry.NewRegistry(),
		Tracer:        trace.New(trace.Config{Seed: 7}),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	})
	return rt, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != wantStatus {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, body)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return body
}

func postBatch(t *testing.T, url string, users []string, n int) (*http.Response, map[string]any) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"users": users, "n": n})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/recommend/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var parsed map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	return resp, parsed
}

func TestRouterProxiesRecommend(t *testing.T) {
	tr := newTestTier(t, 3, nil)
	// User u4 lives in cluster 1 -> shard 1.
	body := getJSON(t, tr.srv.URL+"/recommend?user=u4&n=2", http.StatusOK)
	if body["user"] != "u4" {
		t.Errorf("proxied body user = %v, want u4", body["user"])
	}
	recs, ok := body["recommendations"].([]any)
	if !ok || len(recs) != 2 {
		t.Errorf("recommendations = %v, want 2 items", body["recommendations"])
	}
	if got := tr.rt.m.attempts[1].Value(); got != 1 {
		t.Errorf("shard 1 attempts = %d, want 1", got)
	}
}

func TestRouterUnknownUser(t *testing.T) {
	tr := newTestTier(t, 3, nil)
	getJSON(t, tr.srv.URL+"/recommend?user=nobody&n=2", http.StatusNotFound)
}

func TestRouterBatchScatterGather(t *testing.T) {
	tr := newTestTier(t, 3, nil)
	users := []string{"u0", "u1", "u2", "u3", "u4", "u5", "ghost"}
	resp, parsed := postBatch(t, tr.srv.URL, users, 2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	// The degraded field must be PRESENT and false — partial responses are
	// distinguishable by label, never only by row count.
	deg, present := parsed["degraded"]
	if !present {
		t.Fatal("batch response is missing the degraded field")
	}
	if deg != false {
		t.Errorf("degraded = %v on a fully healthy tier", deg)
	}
	results, ok := parsed["results"].([]any)
	if !ok || len(results) != len(users) {
		t.Fatalf("results length = %d, want %d", len(results), len(users))
	}
	// The unknown user's row is an error row, not an omission.
	found := false
	for _, row := range results {
		if m, ok := row.(map[string]any); ok && m["user"] == "ghost" {
			found = true
			if m["error"] != "unknown user" {
				t.Errorf("ghost row = %v", m)
			}
		}
	}
	if !found {
		t.Error("no row for the unknown user")
	}
}

func TestRouterBatchDegradedOnShardDown(t *testing.T) {
	tr := newTestTier(t, 3, func(cfg *Config) {
		cfg.MaxAttempts = 2
	})
	tr.shardSrvs[2].Close() // SIGKILL shard 2's only replica

	users := []string{"u0", "u1", "u2", "u3", "u4", "u5"}
	resp, parsed := postBatch(t, tr.srv.URL, users, 2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded batch status = %d, want 200", resp.StatusCode)
	}
	if parsed["degraded"] != true {
		t.Error("batch with a dead shard must be labeled degraded")
	}
	missing, _ := parsed["missing_shards"].([]any)
	if len(missing) != 1 || missing[0] != float64(2) {
		t.Errorf("missing_shards = %v, want [2]", parsed["missing_shards"])
	}
	if parsed["missing_users"] != float64(2) {
		t.Errorf("missing_users = %v, want 2", parsed["missing_users"])
	}
	results, _ := parsed["results"].([]any)
	if len(results) != 4 {
		t.Errorf("results length = %d, want 4 (shards 0 and 1)", len(results))
	}
	if got := tr.rt.m.degraded.Value(); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}

	// Single-user requests to the dead shard fail with a gateway error;
	// the healthy shards keep answering.
	getJSON(t, tr.srv.URL+"/recommend?user=u2&n=2", http.StatusBadGateway)
	getJSON(t, tr.srv.URL+"/recommend?user=u0&n=2", http.StatusOK)
}

func TestRouterBatchAllShardsDown(t *testing.T) {
	tr := newTestTier(t, 2, func(cfg *Config) { cfg.MaxAttempts = 1 })
	tr.shardSrvs[0].Close()
	tr.shardSrvs[1].Close()
	resp, parsed := postBatch(t, tr.srv.URL, []string{"u0", "u1"}, 2)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-shards-down batch status = %d, want 502 (%v)", resp.StatusCode, parsed)
	}
}

func TestRouterBatchRejectsBadRequests(t *testing.T) {
	tr := newTestTier(t, 2, func(cfg *Config) { cfg.MaxBatch = 3 })
	resp, _ := postBatch(t, tr.srv.URL, nil, 2)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postBatch(t, tr.srv.URL, []string{"u0", "u1", "u2", "u3"}, 2)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch status = %d, want 400", resp.StatusCode)
	}
}

// flakyHandler fails the first fails requests with 500, then answers 200.
type flakyHandler struct {
	fails int32
	seen  atomic.Int32
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.seen.Add(1) <= h.fails {
		http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"user":"u0","recommendations":[]}`))
}

func TestRouterRetriesTransientFailures(t *testing.T) {
	h := &flakyHandler{fails: 2}
	rt, ts := rawTier(t, [][]http.Handler{{h}}, nil)
	body := getJSON(t, ts.URL+"/recommend?user=u0&n=2", http.StatusOK)
	if body["user"] != "u0" {
		t.Errorf("body = %v", body)
	}
	if got := rt.m.retries[0].Value(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := rt.m.attempts[0].Value(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

func TestRouterRelaysLast5xxWhenExhausted(t *testing.T) {
	always500 := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"shard-side failure"}`, http.StatusInternalServerError)
	})
	rt, ts := rawTier(t, [][]http.Handler{{always500}}, func(cfg *Config) {
		cfg.MaxAttempts = 2
	})
	resp, err := http.Get(ts.URL + "/recommend?user=u0&n=2")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want the shard's 500 relayed", resp.StatusCode)
	}
	if !strings.Contains(string(body), "shard-side failure") {
		t.Errorf("body = %s, want the shard's own error relayed", body)
	}
	if got := rt.m.attempts[0].Value(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

// TestRouterTracePropagation is the cross-process trace contract: the
// router's root span, its router_shard_call child, and the shard server's
// own root span must all carry ONE trace id, visible in both processes'
// span exports.
func TestRouterTracePropagation(t *testing.T) {
	tr := newTestTier(t, 3, nil)
	resp, err := http.Get(tr.srv.URL + "/recommend?user=u1&n=2")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// The response exposes the trace id to the client.
	tp, err := trace.ParseTraceparent(resp.Header.Get(trace.TraceparentHeader))
	if err != nil {
		t.Fatalf("response traceparent: %v", err)
	}
	traceID := tp.TraceID.String()

	var routerTrace *trace.TraceData
	for _, td := range tr.tracer.Snapshot() {
		if td.Root.Name == "router_recommend" {
			routerTrace = td
			break
		}
	}
	if routerTrace == nil {
		t.Fatal("router tracer retained no router_recommend trace")
	}
	if routerTrace.TraceID != traceID {
		t.Fatalf("router trace id %s != response traceparent %s", routerTrace.TraceID, traceID)
	}
	foundChild := false
	for _, sp := range routerTrace.Spans {
		if sp.Name == "router_shard_call" {
			foundChild = true
		}
	}
	if !foundChild {
		t.Error("router trace has no router_shard_call child span")
	}

	// u1 -> shard 1. The shard process's OWN tracer must have retained the
	// same trace id for its http_recommend root.
	var shardTrace *trace.TraceData
	for _, td := range tr.shardTracers[1].Snapshot() {
		if td.Root.Name == "http_recommend" {
			shardTrace = td
			break
		}
	}
	if shardTrace == nil {
		t.Fatal("shard tracer retained no http_recommend trace")
	}
	if shardTrace.TraceID != traceID {
		t.Fatalf("one request produced two trace ids: router %s, shard %s", traceID, shardTrace.TraceID)
	}
}

// TestRouterDeadlinePropagation asserts the Request-Budget-Ms contract:
// the shard-side request deadline exists and fires strictly before the
// router's own per-attempt deadline would.
func TestRouterDeadlinePropagation(t *testing.T) {
	perTry := 2 * time.Second
	tr := newTestTier(t, 3, func(cfg *Config) {
		cfg.PerTryTimeout = perTry
		cfg.RequestTimeout = 5 * time.Second
	})
	start := time.Now()
	getJSON(t, tr.srv.URL+"/recommend?user=u0&n=2", http.StatusOK)
	d, ok := tr.engines[0].lastDeadline()
	if !ok {
		t.Fatal("shard engine saw no deadline: Request-Budget-Ms was not applied")
	}
	if !d.After(start) {
		t.Fatalf("shard deadline %v is not in the future of the request start", d)
	}
	if !d.Before(start.Add(perTry)) {
		t.Fatalf("shard deadline %v is not strictly before the router's per-attempt deadline (start+%v)", d, perTry)
	}
}

// TestRouterBreakerMatrix drives one replica's breaker through
// closed → open → half-open → closed deterministically, using the fault
// registry at router.shard_call to fail attempts and an injected clock to
// elapse the open interval, asserting each step through the telemetry the
// chaos harness also reads.
func TestRouterBreakerMatrix(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"user":"u0","recommendations":[]}`))
	})
	clk := newFakeClock()
	freg := faults.New(1)
	// Prob 0 fires on every check: every attempt fails until disarmed.
	freg.Arm(faults.PointShardCall, faults.Plan{})
	rt, ts := rawTier(t, [][]http.Handler{{ok}}, func(cfg *Config) {
		cfg.MaxAttempts = 1
		cfg.Faults = freg
		cfg.Breaker = BreakerConfig{
			FailureThreshold: 2,
			OpenFor:          time.Second,
			Now:              clk.Now,
		}
	})
	stateGauge := rt.m.breakerState[0][0]

	// Two failed requests close -> open.
	getJSON(t, ts.URL+"/recommend?user=u0&n=2", http.StatusBadGateway)
	if got := stateGauge.Value(); got != int64(BreakerClosed) {
		t.Fatalf("after 1 failure breaker state gauge = %d, want closed", got)
	}
	getJSON(t, ts.URL+"/recommend?user=u0&n=2", http.StatusBadGateway)
	if got := stateGauge.Value(); got != int64(BreakerOpen) {
		t.Fatalf("after threshold breaker state gauge = %d, want open", got)
	}
	if got := rt.m.breakerOpens[0].Value(); got != 1 {
		t.Errorf("breaker opens counter = %d, want 1", got)
	}

	// While open, calls fail fast with 503 + Retry-After — no attempts.
	resp, err := http.Get(ts.URL + "/recommend?user=u0&n=2")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open-breaker 503 carries no Retry-After hint")
	}
	if got := rt.m.breakerReject[0].Value(); got != 1 {
		t.Errorf("breaker rejects counter = %d, want 1", got)
	}
	if got := rt.m.attempts[0].Value(); got != 2 {
		t.Errorf("attempts = %d, want 2 (fast-fail must not touch the replica)", got)
	}
	if got := rt.m.chaosShard.Value(); got != 2 {
		t.Errorf("chaos injections = %d, want 2", got)
	}

	// Fault cleared and the open interval elapsed: the next request is the
	// half-open probe; it succeeds and the breaker closes.
	freg.Disarm(faults.PointShardCall)
	clk.Advance(2 * time.Second)
	getJSON(t, ts.URL+"/recommend?user=u0&n=2", http.StatusOK)
	if got := stateGauge.Value(); got != int64(BreakerClosed) {
		t.Fatalf("after successful probe breaker state gauge = %d, want closed", got)
	}
	// A failed probe would have re-opened: counter still 1.
	if got := rt.m.breakerOpens[0].Value(); got != 1 {
		t.Errorf("breaker opens counter = %d after recovery, want 1", got)
	}
}

// TestRouterMisroutedRelays421: a shard that refuses ownership (stale
// router manifest) must have its 421 relayed, not masked, and counted.
func TestRouterMisroutedRelays421(t *testing.T) {
	tr := newTestTier(t, 1, nil)
	// Rewire the shard's engine to own nothing, simulating a router whose
	// manifest is ahead of the shard's.
	tr.engines[0].disown.Store(true)
	resp, err := http.Get(tr.srv.URL + "/recommend?user=u0&n=2")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("status = %d, want 421 relayed", resp.StatusCode)
	}
	if got := tr.rt.m.misrouted.Value(); got != 1 {
		t.Errorf("misrouted counter = %d, want 1", got)
	}
}

// TestRouterHedgedRead: the primary replica stalls, the hedge fires after
// the configured delay against the other replica and wins.
func TestRouterHedgedRead(t *testing.T) {
	unblock := make(chan struct{})
	var first atomic.Int32
	handler := func(w http.ResponseWriter, r *http.Request) {
		if first.Add(1) == 1 {
			<-unblock // primary stalls until the test ends
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"user":"u0","recommendations":[]}`))
	}
	defer close(unblock)
	rt, ts := rawTier(t, [][]http.Handler{{
		http.HandlerFunc(handler), http.HandlerFunc(handler),
	}}, func(cfg *Config) {
		cfg.HedgeDelay = 10 * time.Millisecond
		cfg.PerTryTimeout = 10 * time.Second
		cfg.RequestTimeout = 10 * time.Second
	})
	start := time.Now()
	getJSON(t, ts.URL+"/recommend?user=u0&n=2", http.StatusOK)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged read took %v; the hedge did not win", elapsed)
	}
	if got := rt.m.hedges[0].Value(); got != 1 {
		t.Errorf("hedges = %d, want 1", got)
	}
	if got := rt.m.hedgeWins[0].Value(); got != 1 {
		t.Errorf("hedge wins = %d, want 1", got)
	}
}

// TestRouterReloadExactlyOncePerReplica: the admin fan-out is not
// idempotent, so every replica gets exactly one attempt — no retries even
// when a replica fails.
func TestRouterReloadExactlyOncePerReplica(t *testing.T) {
	var hits [3]atomic.Int32
	mk := func(i int, fail bool) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			if fail {
				http.Error(w, `{"error":"reload failed"}`, http.StatusInternalServerError)
				return
			}
			_, _ = w.Write([]byte(`{"status":"ok"}`))
		})
	}
	_, ts := rawTier(t, [][]http.Handler{
		{mk(0, false), mk(1, true)},
		{mk(2, false)},
	}, nil)

	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Replicas []struct {
			Shard   int    `json:"shard"`
			Replica int    `json:"replica"`
			Status  int    `json:"status"`
			Error   string `json:"error"`
		} `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502 when any replica failed", resp.StatusCode)
	}
	if len(parsed.Replicas) != 3 {
		t.Fatalf("outcomes = %d, want 3", len(parsed.Replicas))
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Errorf("replica %d hit %d times, want exactly 1 (reload must never retry)", i, got)
		}
	}
}

func TestRouterReadyz(t *testing.T) {
	tr := newTestTier(t, 2, nil)
	body := getJSON(t, tr.srv.URL+"/readyz", http.StatusOK)
	if body["ready"] != true {
		t.Errorf("ready = %v on a healthy tier", body["ready"])
	}
	// Open shard 0's only breaker: the router must report not-ready with
	// the per-shard detail.
	b := tr.rt.replicas[0][0].breaker
	for i := 0; i < 5; i++ {
		b.Allow()
		b.Failure()
	}
	body = getJSON(t, tr.srv.URL+"/readyz", http.StatusServiceUnavailable)
	if body["ready"] != false {
		t.Errorf("ready = %v with a dark shard", body["ready"])
	}
}

// TestRouterDrain: Shutdown stops admitting serving requests (503 with
// Retry-After, liveness stays up), waits for in-flight requests, and
// returns cleanly once they finish.
func TestRouterDrain(t *testing.T) {
	entered := make(chan struct{})
	unblock := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-unblock
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"user":"u0","recommendations":[]}`))
	})
	rt, ts := rawTier(t, [][]http.Handler{{slow}}, func(cfg *Config) {
		cfg.PerTryTimeout = 10 * time.Second
		cfg.RequestTimeout = 10 * time.Second
	})

	inflightDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/recommend?user=u0&n=2")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("in-flight request finished %d, want 200", resp.StatusCode)
			}
		}
		inflightDone <- err
	}()
	<-entered

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- rt.Shutdown(ctx)
	}()

	// Wait for the drain flag, then verify admission behavior.
	for i := 0; ; i++ {
		if rt.isDraining() {
			break
		}
		if i > 1000 {
			t.Fatal("router never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/recommend?user=u1&n=2")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining router answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain 503 carries no Retry-After")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, hresp.Body)
	_ = hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("liveness during drain = %d, want 200", hresp.StatusCode)
	}
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) while a request was still in flight", err)
	default:
	}

	close(unblock)
	if err := <-inflightDone; err != nil {
		t.Errorf("in-flight request: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("Shutdown = %v, want nil after the in-flight request finished", err)
	}
	if got := rt.m.drainShed.Value(); got < 1 {
		t.Errorf("drain shed counter = %d, want >= 1", got)
	}
}

func TestRouterUsersAndStats(t *testing.T) {
	tr := newTestTier(t, 3, nil)
	body := getJSON(t, tr.srv.URL+"/users?limit=4", http.StatusOK)
	users, _ := body["users"].([]any)
	if len(users) != 4 {
		t.Errorf("users = %v, want 4 tokens", body["users"])
	}
	if body["total"] != float64(6) {
		t.Errorf("total = %v, want 6", body["total"])
	}
	stats := getJSON(t, tr.srv.URL+"/stats", http.StatusOK)
	if stats["shards"] != float64(3) {
		t.Errorf("stats shards = %v, want 3", stats["shards"])
	}
}

// TestRouterRelaysRetryAfterOn503: a shard answering 503 with a
// Retry-After back-pressure hint (a draining replica, an overloaded
// shard) must see that hint relayed to the client, not swallowed at the
// proxy hop — clients pace their retries off it.
func TestRouterRelaysRetryAfterOn503(t *testing.T) {
	overloaded := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"shard draining"}`, http.StatusServiceUnavailable)
	})
	_, ts := rawTier(t, [][]http.Handler{{overloaded}}, func(cfg *Config) {
		cfg.MaxAttempts = 2
	})
	resp, err := http.Get(ts.URL + "/recommend?user=u0&n=2")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want the shard's 503 relayed", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want the shard's hint %q relayed", got, "7")
	}

	// A healthy answer carries no Retry-After: the hint is relayed, not
	// invented.
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"user":"u0"}`))
	})
	_, ts2 := rawTier(t, [][]http.Handler{{ok}}, nil)
	resp2, err := http.Get(ts2.URL + "/recommend?user=u0&n=2")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp2.Body)
	_ = resp2.Body.Close()
	if got := resp2.Header.Get("Retry-After"); got != "" {
		t.Errorf("Retry-After = %q on a 200, want none", got)
	}
}

// TestRouterReadyzReportsShardLineage: the router's readiness re-exports
// each replica's probed release lineage (full generation + applied delta
// chain + degraded flag), so rollout gates can answer "has every replica
// picked up the new delta?" from one endpoint.
func TestRouterReadyzReportsShardLineage(t *testing.T) {
	shard := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"ready":true,"release_version":5,"full_version":3,"deltas_applied":[4,5],"degraded":true,"degraded_reason":"rolled back"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"user":"u0"}`))
	})
	rt, ts := rawTier(t, [][]http.Handler{{shard}}, func(cfg *Config) {
		cfg.ProbeInterval = time.Second // probes run manually below, not via Start
	})

	// Before any successful probe, the readyz row carries no lineage.
	body := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	rows := body["shards"].([]any)
	if _, present := rows[0].(map[string]any)["serving"]; present {
		t.Fatalf("unprobed replica reported lineage: %v", rows[0])
	}

	if !rt.probe(rt.replicas[0][0]) {
		t.Fatal("probe against a healthy replica failed")
	}
	body = getJSON(t, ts.URL+"/readyz", http.StatusOK)
	row := body["shards"].([]any)[0].(map[string]any)
	serving, ok := row["serving"].([]any)
	if !ok || len(serving) != 1 {
		t.Fatalf("serving = %v, want one probed replica", row["serving"])
	}
	got := serving[0].(map[string]any)
	if got["replica"] != float64(0) || got["release_version"] != float64(5) ||
		got["full_version"] != float64(3) || got["degraded"] != true {
		t.Errorf("lineage row = %v", got)
	}
	deltas, ok := got["deltas_applied"].([]any)
	if !ok || len(deltas) != 2 || deltas[0] != float64(4) || deltas[1] != float64(5) {
		t.Errorf("deltas_applied = %v", got["deltas_applied"])
	}
}
