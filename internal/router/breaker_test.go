package router

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is an adjustable clock for deterministic breaker transitions.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// transitionLog records breaker state changes for assertion.
type transitionLog struct {
	mu    sync.Mutex
	steps []string
}

func (l *transitionLog) record(from, to BreakerState) {
	l.mu.Lock()
	l.steps = append(l.steps, fmt.Sprintf("%s->%s", from, to))
	l.mu.Unlock()
}

func (l *transitionLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fmt.Sprint(l.steps)
}

func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	var log transitionLog
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		OpenFor:          time.Second,
		Now:              clk.Now,
	}, log.record)

	// Closed: failures below the threshold keep it closed, a success
	// resets the streak.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must allow")
		}
		b.Failure()
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after reset = %s, want closed", got)
	}

	// Three consecutive failures open it.
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Failure()
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after threshold = %s, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker must reject before OpenFor elapses")
	}

	// After OpenFor, one probe is admitted (half-open); a concurrent
	// caller is rejected while the probe is in flight.
	clk.Advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker must admit the half-open probe after OpenFor")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state during probe = %s, want half_open", got)
	}
	if b.Allow() {
		t.Fatal("half-open breaker must admit only one probe at a time")
	}

	// Probe failure reopens for a fresh interval.
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %s, want open", got)
	}
	if b.Allow() {
		t.Fatal("reopened breaker must reject")
	}

	// Next interval: probe succeeds, breaker closes.
	clk.Advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker must admit the second probe")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", got)
	}

	want := "[closed->open open->half_open half_open->open open->half_open half_open->closed]"
	if got := log.String(); got != want {
		t.Fatalf("transitions = %s, want %s", got, want)
	}
}

func TestBreakerHalfOpenNeedsConfiguredSuccesses(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		FailureThreshold:  1,
		OpenFor:           time.Second,
		HalfOpenSuccesses: 2,
		Now:               clk.Now,
	}, nil)
	b.Allow()
	b.Failure()
	clk.Advance(2 * time.Second)

	if !b.Allow() {
		t.Fatal("probe 1 must be admitted")
	}
	b.Success()
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("after 1 of 2 successes state = %s, want half_open", got)
	}
	if !b.Allow() {
		t.Fatal("probe 2 must be admitted")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after 2 of 2 successes state = %s, want closed", got)
	}
}

// TestBreakerCancelReleasesProbe: a canceled half-open probe (deadline
// expired, hedge lost) must release the probe slot without counting either
// way — otherwise the breaker wedges half-open forever.
func TestBreakerCancelReleasesProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Second, Now: clk.Now}, nil)
	b.Allow()
	b.Failure()
	clk.Advance(2 * time.Second)

	if !b.Allow() {
		t.Fatal("probe must be admitted")
	}
	b.Cancel()
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after canceled probe = %s, want half_open", got)
	}
	if !b.Allow() {
		t.Fatal("slot must be free again after Cancel")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %s, want closed", got)
	}
}

// TestBreakerStaleFailureDoesNotExtendOpen: failures reported by attempts
// that were already in flight when the breaker opened must not push
// openedAt forward — a burst of stragglers would otherwise starve the
// half-open probe indefinitely.
func TestBreakerStaleFailureDoesNotExtendOpen(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Second, Now: clk.Now}, nil)
	b.Allow()
	b.Failure()

	// Stragglers keep failing while open.
	clk.Advance(900 * time.Millisecond)
	b.Failure()
	b.Failure()
	clk.Advance(200 * time.Millisecond) // 1.1s since openedAt
	if !b.Allow() {
		t.Fatal("probe must be admitted OpenFor after the ORIGINAL open, despite stale failures")
	}
}

// TestBreakerStaleSuccessWhileOpenIgnored: a late success from before the
// open must not half-close anything.
func TestBreakerStaleSuccessWhileOpenIgnored(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: time.Second, Now: clk.Now}, nil)
	b.Allow()
	b.Failure()
	b.Success()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after stale success = %s, want open", got)
	}
	if b.Allow() {
		t.Fatal("breaker must stay rejecting")
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 5, OpenFor: time.Millisecond}, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if b.Allow() {
					if (i+j)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				b.State()
			}
		}(i)
	}
	wg.Wait()
}
