package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"socialrec/internal/faults"
	"socialrec/internal/release"
	"socialrec/internal/server"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// maxShardRespBytes caps how much of a shard response the router buffers;
// anything larger is treated as a protocol failure, not relayed.
const maxShardRespBytes = 8 << 20

// Config assembles a Router.
type Config struct {
	// Manifest is the sharded release manifest: it maps every user to the
	// shard that owns them. Required.
	Manifest *release.Manifest
	// UserIDs maps external user tokens to internal ids (same map the
	// shards were built from). Required.
	UserIDs map[string]int
	// Shards lists each shard's replica base URLs (e.g.
	// "http://10.0.0.1:8081"); Shards[i] serves shard i of the manifest.
	// Every shard needs at least one replica. Required.
	Shards [][]string
	// Client performs the proxied requests; nil selects a client with
	// keep-alives and no global timeout (per-attempt contexts bound every
	// call).
	Client *http.Client
	// MaxAttempts caps attempts (first try + retries + hedges) per
	// proxied call; 0 selects 3.
	MaxAttempts int
	// PerTryTimeout bounds each individual attempt; 0 selects 2 s. The
	// effective per-attempt deadline is always also capped by the
	// request's remaining budget.
	PerTryTimeout time.Duration
	// RequestTimeout bounds each routed request end to end; 0 selects
	// 10 s.
	RequestTimeout time.Duration
	// RetryBackoff is the base backoff before a retry (doubled per
	// attempt, jittered, capped at 16x); 0 selects 10 ms.
	RetryBackoff time.Duration
	// HedgeDelay is how long a single-user read waits before launching a
	// hedged attempt on the next replica. 0 selects an adaptive delay
	// derived from the shard's recent p99 attempt latency; negative
	// disables hedging.
	HedgeDelay time.Duration
	// ProbeInterval is the /readyz poll interval per replica; 0 selects
	// 2 s, negative disables active probing (tests drive health directly).
	ProbeInterval time.Duration
	// Breaker tunes the per-replica circuit breakers.
	Breaker BreakerConfig
	// MaxBatch caps users per batch request; 0 selects 1000.
	MaxBatch int
	// Seed feeds the retry-jitter stream (SplitMix64, never math/rand).
	Seed int64
	// Logger receives proxy errors; nil selects a text logger to stderr.
	Logger *slog.Logger
	// Metrics receives the router's instruments; nil selects
	// telemetry.Default().
	Metrics *telemetry.Registry
	// Tracer retains request traces; nil selects trace.Default().
	Tracer *trace.Tracer
	// Faults, when non-nil, arms chaos at faults.PointShardCall: every
	// proxied attempt consults it before touching the network.
	Faults *faults.Registry
}

// replica is one shard replica's routing state.
type replica struct {
	shard   int
	idx     int
	base    string // URL base, no trailing slash
	breaker *Breaker
	healthy atomic.Bool // driven by the readyz poller; starts true
	// lineage is the release provenance the last successful readyz probe
	// reported: which full generation the replica serves and which delta
	// chain is applied on top. Nil until the first successful probe.
	lineage atomic.Pointer[replicaLineage]
}

// replicaLineage is the slice of a shard replica's /readyz body the
// router surfaces in its own readiness: release provenance for rollout
// gates ("has every replica picked up delta 7 yet?") and degradation
// after a delta rollback. All fields are store metadata, never user data.
type replicaLineage struct {
	Version     uint64   `json:"release_version"`
	FullVersion uint64   `json:"full_version"`
	Deltas      []uint64 `json:"deltas_applied"`
	Degraded    bool     `json:"degraded"`
}

// Router fans requests out over a sharded serving tier. It implements
// http.Handler; construct with New, start background health probes with
// Start, and drain with Shutdown.
type Router struct {
	cfg      Config
	mux      *http.ServeMux
	m        *metrics
	logger   *slog.Logger
	tracer   *trace.Tracer
	client   *http.Client
	replicas [][]*replica // by shard
	rings    []*Ring      // per-shard replica ring (affinity + failover order)
	lat      []*latencyTrack
	rng      lockedRand

	drainCtx    context.Context
	drainCancel context.CancelFunc
	pollWG      sync.WaitGroup

	mu       sync.RWMutex // guards draining against inflight.Add
	draining bool
	inflight sync.WaitGroup
}

// New validates the configuration and builds the router. Call Start to
// begin active health probing and Shutdown to drain.
func New(cfg Config) (*Router, error) {
	if cfg.Manifest == nil {
		return nil, fmt.Errorf("router: Manifest is required")
	}
	if err := cfg.Manifest.Validate(); err != nil {
		return nil, err
	}
	if cfg.UserIDs == nil {
		return nil, fmt.Errorf("router: UserIDs is required")
	}
	if len(cfg.Shards) != cfg.Manifest.NumShards {
		return nil, fmt.Errorf("router: manifest has %d shards, topology has %d",
			cfg.Manifest.NumShards, len(cfg.Shards))
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.PerTryTimeout <= 0 {
		cfg.PerTryTimeout = 2 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1000
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	logger = slog.New(trace.NewSlogHandler(logger.Handler()))
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = trace.Default()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	replicasPerShard := make([]int, len(cfg.Shards))
	for i, urls := range cfg.Shards {
		if len(urls) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", i)
		}
		replicasPerShard[i] = len(urls)
	}
	rt := &Router{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		m:        newMetrics(cfg.Metrics, replicasPerShard),
		logger:   logger,
		tracer:   tracer,
		client:   client,
		replicas: make([][]*replica, len(cfg.Shards)),
		rings:    make([]*Ring, len(cfg.Shards)),
		lat:      make([]*latencyTrack, len(cfg.Shards)),
		rng:      lockedRand{state: uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909},
	}
	rt.drainCtx, rt.drainCancel = context.WithCancel(context.Background())
	for s, urls := range cfg.Shards {
		rt.lat[s] = newLatencyTrack()
		rt.replicas[s] = make([]*replica, len(urls))
		for i, base := range urls {
			rep := &replica{shard: s, idx: i, base: base}
			stateGauge := rt.m.breakerState[s][i]
			opens := rt.m.breakerOpens[s]
			rep.breaker = NewBreaker(cfg.Breaker, func(from, to BreakerState) {
				stateGauge.Set(int64(to))
				if to == BreakerOpen {
					opens.Inc()
				}
			})
			rep.healthy.Store(true)
			rt.replicas[s][i] = rep
		}
		ring, err := NewRing(urls, 0)
		if err != nil {
			return nil, fmt.Errorf("router: shard %d replica ring: %w", s, err)
		}
		rt.rings[s] = ring
	}

	rt.mux.HandleFunc("GET /healthz", rt.route(rEpHealthz, false, rt.handleHealthz))
	rt.mux.HandleFunc("GET /readyz", rt.route(rEpReadyz, false, rt.handleReadyz))
	rt.mux.HandleFunc("GET /stats", rt.route(rEpStats, true, rt.handleStats))
	rt.mux.HandleFunc("GET /users", rt.route(rEpUsers, true, rt.handleUsers))
	rt.mux.HandleFunc("GET /recommend", rt.route(rEpRecommend, true, rt.handleRecommend))
	rt.mux.HandleFunc("POST /recommend/batch", rt.route(rEpBatch, true, rt.handleBatch))
	rt.mux.HandleFunc("POST /admin/reload", rt.route(rEpReload, false, rt.handleReload))
	return rt, nil
}

// Start launches the active health probes (one goroutine per replica).
// It is a no-op when ProbeInterval is negative.
func (rt *Router) Start() {
	if rt.cfg.ProbeInterval < 0 {
		return
	}
	for _, reps := range rt.replicas {
		for _, rep := range reps {
			rt.pollWG.Add(1)
			go rt.poll(rep)
		}
	}
}

// Shutdown drains the router: new serving requests are rejected with 503,
// in-flight hedged attempts are canceled (their primaries finish
// normally), health probes stop, and the call blocks until every in-flight
// request completes or ctx expires.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.mu.Lock()
	already := rt.draining
	rt.draining = true
	rt.mu.Unlock()
	if !already {
		rt.m.draining.Set(1)
		// Canceling drainCtx stops the pollers and, through the
		// AfterFunc each hedged attempt registered, cancels in-flight
		// hedges without touching their primaries.
		rt.drainCancel()
	}
	done := make(chan struct{})
	go func() {
		rt.inflight.Wait()
		rt.pollWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("router: drain incomplete: %w", ctx.Err())
	}
}

// ServeHTTP implements http.Handler: a draining router rejects everything
// but the liveness probe so load balancers fail over promptly, while
// requests admitted before the drain run to completion.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	if rt.draining && r.URL.Path != "/healthz" {
		rt.mu.RUnlock()
		rt.m.drainShed.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSONTo(w, http.StatusServiceUnavailable, map[string]string{"error": "router draining"})
		return
	}
	rt.inflight.Add(1)
	rt.mu.RUnlock()
	defer rt.inflight.Done()
	rt.m.inflight.Add(1)
	defer rt.m.inflight.Add(-1)
	rt.mux.ServeHTTP(w, r)
}

// attrHTTPStatus mirrors internal/server's root-span status attribute.
var (
	attrRouterStatus = trace.NewKey("router_http_status")
	attrShardCalled  = trace.NewKey("shard_called")
	attrReplicaIdx   = trace.NewKey("replica_idx")
	attrAttempt      = trace.NewKey("attempt")
)

// route wraps a handler with the router's request middleware: a root span
// (continuing an inbound W3C traceparent), per-endpoint accounting, and —
// for serving endpoints — the end-to-end request deadline.
func (rt *Router) route(endpoint string, deadline bool, h http.HandlerFunc) http.HandlerFunc {
	name := "router_" + endpoint
	return func(w http.ResponseWriter, r *http.Request) {
		rt.m.requests[endpoint].Inc()
		var (
			ctx context.Context
			sp  trace.Span
		)
		if tp, err := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader)); err == nil {
			ctx, sp = rt.tracer.StartRemote(r.Context(), name, tp)
		} else {
			ctx, sp = rt.tracer.StartRoot(r.Context(), name)
		}
		defer sp.End()
		w.Header().Set(trace.TraceparentHeader, trace.Traceparent{
			TraceID:  sp.TraceID(),
			ParentID: sp.SpanID(),
			Sampled:  sp.HeadSampled(),
		}.String())
		if deadline {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, rt.cfg.RequestTimeout)
			defer cancel()
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(ctx))
		sp.Set(attrRouterStatus.Int(int64(sw.status)))
		if sw.status >= http.StatusInternalServerError {
			sp.SetStatus(trace.StatusError)
		}
	}
}

// statusWriter records the committed status for span accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprintln(w, "ok")
}

// shardHealth is one shard's row in the readyz body.
type shardHealth struct {
	Shard    int      `json:"shard"`
	Replicas int      `json:"replicas"`
	Healthy  int      `json:"healthy"`
	Breakers []string `json:"breakers"`
	// Serving lists each replica's release lineage as reported by its
	// last successful readyz probe; replicas never probed successfully
	// are omitted.
	Serving []replicaServing `json:"serving,omitempty"`
}

// replicaServing pairs a replica index with its probed release lineage.
type replicaServing struct {
	Replica int `json:"replica"`
	replicaLineage
}

// handleReadyz reports routability: the router is ready when every shard
// has at least one healthy replica whose breaker is not open. A router
// that can only answer for some shards reports ready:false with the
// per-shard detail, so rollout gates and dashboards see exactly which
// slice of the user base is dark.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	health := make([]shardHealth, len(rt.replicas))
	ready := true
	for s, reps := range rt.replicas {
		sh := shardHealth{Shard: s, Replicas: len(reps)}
		for i, rep := range reps {
			st := rep.breaker.State()
			sh.Breakers = append(sh.Breakers, st.String())
			if rep.healthy.Load() && st != BreakerOpen {
				sh.Healthy++
			}
			if ln := rep.lineage.Load(); ln != nil {
				sh.Serving = append(sh.Serving, replicaServing{Replica: i, replicaLineage: *ln})
			}
		}
		if sh.Healthy == 0 {
			ready = false
		}
		health[s] = sh
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	rt.writeJSON(r.Context(), w, status, map[string]any{
		"ready":            ready,
		"manifest_version": rt.cfg.Manifest.Version,
		"shards":           health,
	})
}

// handleStats serves router-local topology and manifest metadata; dataset
// statistics live on the shards.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(r.Context(), w, http.StatusOK, map[string]any{
		"shards":           rt.cfg.Manifest.NumShards,
		"users":            rt.cfg.Manifest.NumUsers(),
		"clusters":         rt.cfg.Manifest.NumClusters(),
		"manifest_version": rt.cfg.Manifest.Version,
		"measure":          rt.cfg.Manifest.Measure,
		"epsilon":          fmt.Sprintf("%g", rt.cfg.Manifest.Epsilon),
	})
}

// handleUsers answers from the router's own token map (mirroring the
// shard servers' endpoint), so exploration works without picking a shard.
func (rt *Router) handleUsers(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if l := r.URL.Query().Get("limit"); l != "" {
		v, err := strconv.Atoi(l)
		if err != nil || v < 1 {
			rt.writeJSON(r.Context(), w, http.StatusBadRequest, map[string]string{"error": "bad limit parameter"})
			return
		}
		limit = v
	}
	tokens := make([]string, 0, len(rt.cfg.UserIDs))
	for tok := range rt.cfg.UserIDs {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	if len(tokens) > limit {
		tokens = tokens[:limit]
	}
	rt.writeJSON(r.Context(), w, http.StatusOK, map[string]any{
		"users": tokens,
		"total": len(rt.cfg.UserIDs),
	})
}

// handleRecommend proxies a single-user read to the owning shard, with
// retries across replicas and (optionally) a hedged second attempt.
func (rt *Router) handleRecommend(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	tok := r.URL.Query().Get("user")
	if tok == "" {
		rt.writeJSON(ctx, w, http.StatusBadRequest, map[string]string{"error": "missing user parameter"})
		return
	}
	id, ok := rt.cfg.UserIDs[tok]
	if !ok {
		rt.writeJSON(ctx, w, http.StatusNotFound, map[string]string{"error": "unknown user"})
		return
	}
	shard := rt.cfg.Manifest.ShardOf(id)
	path := "/recommend?" + r.URL.RawQuery
	resp, err := rt.callShard(ctx, shard, tok, http.MethodGet, path, nil, true)
	if err != nil {
		rt.writeProxyError(ctx, w, shard, err)
		return
	}
	if resp.status == http.StatusMisdirectedRequest {
		// The shard refused ownership: this router's manifest is stale.
		// Relay the refusal — a silently re-routed answer could be wrong.
		rt.m.misrouted.Inc()
	}
	relay(w, resp)
}

// routedBatchRequest mirrors the shard servers' batch payload.
type routedBatchRequest struct {
	Users []string `json:"users"`
	N     int      `json:"n"`
}

// routedBatchResponse is the router's batch body: the shard rows it could
// gather, plus explicit degradation labels. Degraded is always present —
// a partial answer must never be distinguishable from a complete one only
// by counting rows.
type routedBatchResponse struct {
	Results       []json.RawMessage `json:"results"`
	Degraded      bool              `json:"degraded"`
	MissingShards []int             `json:"missing_shards,omitempty"`
	MissingUsers  int               `json:"missing_users,omitempty"`
}

// handleBatch scatters a batch over the owning shards and gathers the
// rows. Shards that stay unreachable after retries cost their rows, not
// the whole response: the reply is then marked degraded with the missing
// shard ids and user count.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req routedBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rt.writeJSON(ctx, w, http.StatusBadRequest, map[string]string{"error": "bad JSON body: " + err.Error()})
		return
	}
	if len(req.Users) == 0 {
		rt.writeJSON(ctx, w, http.StatusBadRequest, map[string]string{"error": "users must be non-empty"})
		return
	}
	if len(req.Users) > rt.cfg.MaxBatch {
		rt.writeJSON(ctx, w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("batch too large (max %d)", rt.cfg.MaxBatch)})
		return
	}
	// Group request rows by owning shard; unknown users answer locally
	// with the same row shape the shards use.
	rows := make([]json.RawMessage, len(req.Users))
	groups := make(map[int][]int) // shard -> indices into req.Users
	for i, tok := range req.Users {
		id, ok := rt.cfg.UserIDs[tok]
		if !ok {
			row, err := json.Marshal(map[string]string{"user": tok, "error": "unknown user"})
			if err == nil {
				rows[i] = row
			}
			continue
		}
		s := rt.cfg.Manifest.ShardOf(id)
		groups[s] = append(groups[s], i)
	}

	type gatherResult struct {
		shard int
		rows  []json.RawMessage // parallel to groups[shard]; nil on failure
	}
	results := make(chan gatherResult, len(groups))
	for s, idxs := range groups {
		go func(s int, idxs []int) {
			sub := routedBatchRequest{Users: make([]string, len(idxs)), N: req.N}
			for j, i := range idxs {
				sub.Users[j] = req.Users[i]
			}
			body, err := json.Marshal(sub)
			if err != nil {
				results <- gatherResult{shard: s}
				return
			}
			resp, err := rt.callShard(ctx, s, "shard:"+strconv.Itoa(s), http.MethodPost,
				"/recommend/batch", body, false)
			if err != nil || resp.status != http.StatusOK {
				if err == nil {
					//sociolint:ignore privflow status code and shard id are topology, not preference data
					rt.logger.WarnContext(ctx, "router: shard batch failed",
						"shard", s, "status", resp.status)
				}
				results <- gatherResult{shard: s}
				return
			}
			var parsed struct {
				Results []json.RawMessage `json:"results"`
			}
			if err := json.Unmarshal(resp.body, &parsed); err != nil || len(parsed.Results) != len(idxs) {
				rt.logger.WarnContext(ctx, "router: shard batch protocol mismatch", "shard", s)
				results <- gatherResult{shard: s}
				return
			}
			results <- gatherResult{shard: s, rows: parsed.Results}
		}(s, idxs)
	}

	out := routedBatchResponse{}
	for range groups {
		res := <-results
		if res.rows == nil {
			out.Degraded = true
			out.MissingShards = append(out.MissingShards, res.shard)
			out.MissingUsers += len(groups[res.shard])
			continue
		}
		for j, i := range groups[res.shard] {
			rows[i] = res.rows[j]
		}
	}
	sort.Ints(out.MissingShards)
	if out.Degraded {
		rt.m.degraded.Inc()
		if len(out.MissingShards) == len(groups) && len(groups) > 0 {
			// Nothing answered: that is an outage, not a degraded reply.
			rt.writeJSON(ctx, w, http.StatusBadGateway,
				map[string]string{"error": "all shards unavailable"})
			return
		}
	}
	out.Results = make([]json.RawMessage, 0, len(rows))
	for _, row := range rows {
		if row != nil {
			out.Results = append(out.Results, row)
		}
	}
	rt.writeJSON(ctx, w, http.StatusOK, &out)
}

// reloadOutcome is one replica's row in the admin fan-out response.
type reloadOutcome struct {
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	Status  int    `json:"status,omitempty"`
	Error   string `json:"error,omitempty"`
}

// handleReload fans POST /admin/reload out to every replica exactly once.
// Reload is not idempotent from the router's vantage point (each POST can
// advance the serving version), so there are no retries and no hedging:
// each replica gets one attempt and the response reports every outcome.
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var (
		mu       sync.Mutex
		outcomes []reloadOutcome
		failed   bool
		wg       sync.WaitGroup
	)
	for s, reps := range rt.replicas {
		for _, rep := range reps {
			wg.Add(1)
			go func(s int, rep *replica) {
				defer wg.Done()
				resp, err := rt.attempt(ctx, rep, http.MethodPost, "/admin/reload", nil, 1)
				o := reloadOutcome{Shard: s, Replica: rep.idx}
				if err != nil {
					o.Error = "unreachable"
				} else {
					o.Status = resp.status
				}
				mu.Lock()
				if err != nil || resp.status != http.StatusOK {
					failed = true
				}
				outcomes = append(outcomes, o)
				mu.Unlock()
			}(s, rep)
		}
	}
	wg.Wait()
	sort.Slice(outcomes, func(i, j int) bool {
		if outcomes[i].Shard != outcomes[j].Shard {
			return outcomes[i].Shard < outcomes[j].Shard
		}
		return outcomes[i].Replica < outcomes[j].Replica
	})
	status := http.StatusOK
	if failed {
		status = http.StatusBadGateway
	}
	rt.writeJSON(ctx, w, status, map[string]any{"replicas": outcomes})
}

// shardResp is a buffered upstream response.
type shardResp struct {
	status      int
	body        []byte
	contentType string
	// retryAfter preserves the shard's Retry-After header so back-pressure
	// hints (a draining or overloaded shard answering 503) reach the
	// client instead of dying at the proxy hop.
	retryAfter string
}

// errAllBreakersOpen fails a call fast when every replica of the owning
// shard has an open breaker — the breaker's whole point.
var errAllBreakersOpen = errors.New("router: all replica breakers open")

// replicaOrder returns the shard's replicas in preference order for key:
// ring order starting at the key's owner, healthy replicas first. An
// unhealthy replica is still listed (last) — when everything looks down,
// trying beats refusing.
func (rt *Router) replicaOrder(shard int, key string) []*replica {
	reps := rt.replicas[shard]
	if len(reps) == 1 {
		return reps
	}
	byBase := make(map[string]*replica, len(reps))
	for _, rep := range reps {
		byBase[rep.base] = rep
	}
	ordered := rt.rings[shard].Ordered(key)
	out := make([]*replica, 0, len(reps))
	for _, base := range ordered {
		if rep := byBase[base]; rep != nil && rep.healthy.Load() {
			out = append(out, rep)
		}
	}
	for _, base := range ordered {
		if rep := byBase[base]; rep != nil && !rep.healthy.Load() {
			out = append(out, rep)
		}
	}
	return out
}

// callShard performs one logical read against a shard: sequential retries
// with capped jittered backoff across the replica preference order, an
// optional hedged attempt for idempotent reads, breaker bookkeeping per
// attempt, all bounded by the request context's deadline.
func (rt *Router) callShard(parent context.Context, shard int, key, method, path string, body []byte, hedge bool) (*shardResp, error) {
	reps := rt.replicaOrder(shard, key)
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	type attemptOut struct {
		resp   *shardResp
		err    error
		hedged bool
	}
	// Buffered to the attempt cap so goroutines finishing after we return
	// never block.
	results := make(chan attemptOut, rt.cfg.MaxAttempts+1)
	attempts, pending, next := 0, 0, 0
	// pickAllowed consumes the next replica whose breaker admits a call.
	pickAllowed := func() *replica {
		for i := 0; i < len(reps); i++ {
			rep := reps[next%len(reps)]
			next++
			if rep.breaker.Allow() {
				return rep
			}
		}
		return nil
	}
	launch := func(rep *replica, hedged bool) {
		attempts++
		pending++
		attempt := attempts
		actx := ctx
		if hedged {
			// A hedge is pure speculation: the drain path cancels it
			// without touching the primary it duplicates.
			hctx, hcancel := context.WithCancel(ctx)
			stop := context.AfterFunc(rt.drainCtx, hcancel)
			actx = hctx
			go func() {
				resp, err := rt.attempt(actx, rep, method, path, body, attempt)
				stop()
				hcancel()
				results <- attemptOut{resp: resp, err: err, hedged: true}
			}()
			return
		}
		go func() {
			resp, err := rt.attempt(actx, rep, method, path, body, attempt)
			results <- attemptOut{resp: resp, err: err}
		}()
	}

	rep := pickAllowed()
	if rep == nil {
		rt.m.breakerReject[shard].Inc()
		return nil, errAllBreakersOpen
	}
	launch(rep, false)

	var hedgeC <-chan time.Time
	if hedge && rt.cfg.HedgeDelay >= 0 && len(reps) > 1 && rt.cfg.MaxAttempts > 1 {
		t := time.NewTimer(rt.hedgeDelay(shard))
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	var lastResp *shardResp
	for pending > 0 {
		select {
		case out := <-results:
			pending--
			if out.err == nil && out.resp.status < http.StatusInternalServerError {
				if out.hedged {
					rt.m.hedgeWins[shard].Inc()
				}
				return out.resp, nil
			}
			if out.err != nil {
				lastErr = out.err
			} else {
				lastResp = out.resp
			}
			if ctx.Err() != nil {
				break // deadline gone; drain remaining pendings below
			}
			if attempts < rt.cfg.MaxAttempts {
				if rep := pickAllowed(); rep != nil {
					rt.backoff(ctx, attempts)
					if ctx.Err() == nil {
						rt.m.retries[shard].Inc()
						launch(rep, false)
					}
				}
			}
		case <-hedgeC:
			hedgeC = nil
			if attempts < rt.cfg.MaxAttempts && !rt.isDraining() {
				if rep := pickAllowed(); rep != nil {
					rt.m.hedges[shard].Inc()
					launch(rep, true)
				}
			}
		case <-ctx.Done():
			// The request deadline (or client) ended the call; outstanding
			// attempt goroutines finish into the buffered channel.
			return nil, ctx.Err()
		}
	}
	if lastResp != nil {
		// Every attempt answered 5xx; relay the last one rather than
		// synthesizing a vaguer error.
		return lastResp, nil
	}
	if lastErr == nil {
		lastErr = errAllBreakersOpen
	}
	return nil, lastErr
}

// attempt performs one proxied request to one replica, with per-attempt
// timeout, trace + deadline-budget propagation, breaker bookkeeping and
// latency tracking.
func (rt *Router) attempt(ctx context.Context, rep *replica, method, path string, body []byte, attempt int) (*shardResp, error) {
	rt.m.attempts[rep.shard].Inc()
	if err := rt.cfg.Faults.Check(faults.PointShardCall); err != nil {
		rt.m.chaosShard.Inc()
		rt.m.failures[rep.shard].Inc()
		rep.breaker.Failure()
		return nil, err
	}
	actx, cancel := context.WithTimeout(ctx, rt.cfg.PerTryTimeout)
	defer cancel()
	actx, sp := trace.StartChild(actx, "router_shard_call")
	defer sp.End()
	sp.Set(attrShardCalled.Int(int64(rep.shard)),
		attrReplicaIdx.Int(int64(rep.idx)),
		attrAttempt.Int(int64(attempt)))

	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, rep.base+path, rd)
	if err != nil {
		sp.SetStatus(trace.StatusError)
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the trace across the hop: the shard continues this span's
	// trace, so one trace id covers both processes.
	if !sp.TraceID().IsZero() {
		req.Header.Set(trace.TraceparentHeader, trace.Traceparent{
			TraceID:  sp.TraceID(),
			ParentID: sp.SpanID(),
			Sampled:  sp.HeadSampled(),
		}.String())
	}
	// Propagate the deadline: hand the shard strictly less than our
	// remaining budget, so its deadline middleware always fires before
	// ours and the failure is attributed at the right layer.
	if d, ok := actx.Deadline(); ok {
		ms := time.Until(d).Milliseconds() * 9 / 10
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(server.BudgetHeader, strconv.FormatInt(ms, 10))
	}

	start := time.Now()
	resp, err := rt.client.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		if ctx.Err() != nil {
			// Our own cancelation (request deadline, hedge lost, drain):
			// says nothing about the replica.
			rep.breaker.Cancel()
			sp.SetStatus(trace.StatusError)
			return nil, ctx.Err()
		}
		// Transport failure or per-try timeout: the replica's fault.
		rt.m.failures[rep.shard].Inc()
		rep.breaker.Failure()
		sp.SetStatus(trace.StatusError)
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxShardRespBytes+1))
	if err != nil || len(buf) > maxShardRespBytes {
		rt.m.failures[rep.shard].Inc()
		rep.breaker.Failure()
		sp.SetStatus(trace.StatusError)
		if err == nil {
			err = fmt.Errorf("router: shard response exceeds %d bytes", maxShardRespBytes)
		}
		return nil, err
	}
	rt.lat[rep.shard].Observe(elapsed)
	rt.m.proxySeconds[rep.shard].Observe(elapsed.Seconds())
	if resp.StatusCode >= http.StatusInternalServerError {
		rt.m.failures[rep.shard].Inc()
		rep.breaker.Failure()
		sp.SetStatus(trace.StatusError)
	} else {
		rep.breaker.Success()
	}
	return &shardResp{
		status:      resp.StatusCode,
		body:        buf,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
	}, nil
}

// backoff sleeps the capped, jittered retry backoff for the given attempt
// number, returning early when ctx ends.
func (rt *Router) backoff(ctx context.Context, attempt int) {
	d := rt.cfg.RetryBackoff
	for i := 1; i < attempt && d < 16*rt.cfg.RetryBackoff; i++ {
		d *= 2
	}
	if d > 16*rt.cfg.RetryBackoff {
		d = 16 * rt.cfg.RetryBackoff
	}
	// Full jitter in [d/2, 3d/2): desynchronizes retry storms across
	// concurrent requests without ever sleeping shorter than d/2.
	d = d/2 + time.Duration(rt.rng.float64()*float64(d))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// hedgeDelay picks how long a single-user read waits before hedging: the
// configured fixed delay, or (when 0) the shard's recent p99 attempt
// latency clamped to [5ms, PerTryTimeout/2] — hedge when this request is
// already slower than 99% of recent ones, not on a guess.
func (rt *Router) hedgeDelay(shard int) time.Duration {
	if rt.cfg.HedgeDelay > 0 {
		return rt.cfg.HedgeDelay
	}
	d := rt.lat[shard].P99()
	if d <= 0 {
		d = 25 * time.Millisecond
	}
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if max := rt.cfg.PerTryTimeout / 2; d > max {
		d = max
	}
	return d
}

func (rt *Router) isDraining() bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.draining
}

// poll probes one replica's /readyz until the router drains. A probe
// failure only flips the healthy bit (steering new requests away); the
// breaker still owns fail-fast, so a replica that answers probes but
// fails requests is handled too.
func (rt *Router) poll(rep *replica) {
	defer rt.pollWG.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.drainCtx.Done():
			return
		case <-t.C:
			healthy := rt.probe(rep)
			was := rep.healthy.Swap(healthy)
			if healthy != was {
				up := int64(0)
				if healthy {
					up = 1
				}
				rt.m.replicaUp[rep.shard][rep.idx].Set(up)
				//sociolint:ignore privflow shard and replica indices are topology, not preference data
				rt.logger.Info("router: replica health changed",
					"shard", rep.shard, "replica", rep.idx, "healthy", healthy)
			}
		}
	}
}

// probe performs one readyz round trip; any 200 counts as healthy. A
// parseable body additionally refreshes the replica's release lineage
// (full generation + applied delta chain), which the router's own readyz
// re-exports; an unparseable body is only a health signal, never an
// error — older shard builds without lineage fields stay probeable.
func (rt *Router) probe(rep *replica) bool {
	ctx, cancel := context.WithTimeout(rt.drainCtx, rt.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var ln replicaLineage
	if json.Unmarshal(body, &ln) == nil && ln.Version > 0 {
		rep.lineage.Store(&ln)
	}
	return true
}

// writeProxyError translates a callShard failure into the router's own
// response: deadline → 504, breakers open → 503 with Retry-After, any
// other exhaustion → 502. Upstream error text never reaches the client —
// it may name internal addresses.
func (rt *Router) writeProxyError(ctx context.Context, w http.ResponseWriter, shard int, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		rt.writeJSON(ctx, w, http.StatusGatewayTimeout, map[string]string{"error": "shard deadline exceeded"})
	case errors.Is(err, errAllBreakersOpen):
		w.Header().Set("Retry-After", "1")
		rt.writeJSON(ctx, w, http.StatusServiceUnavailable, map[string]string{"error": "shard unavailable (circuit open)"})
	default:
		//sociolint:ignore privflow shard id is topology; the error text stays in server-side logs
		rt.logger.WarnContext(ctx, "router: shard unavailable", "shard", shard, "err", err)
		rt.writeJSON(ctx, w, http.StatusBadGateway, map[string]string{"error": "shard unavailable"})
	}
}

// relay copies a buffered shard response to the client unchanged,
// including any Retry-After back-pressure hint the shard attached.
func relay(w http.ResponseWriter, resp *shardResp) {
	ct := resp.contentType
	if ct == "" {
		ct = "application/json"
	}
	if resp.retryAfter != "" {
		w.Header().Set("Retry-After", resp.retryAfter)
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set("Content-Length", strconv.Itoa(len(resp.body)))
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

func (rt *Router) writeJSON(ctx context.Context, w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		rt.logger.ErrorContext(ctx, "router: encoding response", "err", err)
		http.Error(w, `{"error":"internal encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// writeJSONTo is writeJSON without router state, for the drain-shed path.
func writeJSONTo(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"internal encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf)
}

// latencyTrack keeps a small ring of recent attempt latencies and a cached
// p99, recomputed every few observations — cheap enough for the proxy
// path, fresh enough to steer the hedge delay.
type latencyTrack struct {
	mu     sync.Mutex
	buf    []time.Duration
	n      int          // filled entries
	next   int          // ring cursor
	fresh  int          // observations since last recompute
	cached atomic.Int64 // nanoseconds; 0 = no data
}

const (
	latWindow  = 128
	latRecalc  = 16
	latPercent = 99
)

func newLatencyTrack() *latencyTrack {
	return &latencyTrack{buf: make([]time.Duration, latWindow)}
}

func (l *latencyTrack) Observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % latWindow
	if l.n < latWindow {
		l.n++
	}
	l.fresh++
	if l.fresh >= latRecalc || l.cached.Load() == 0 {
		l.fresh = 0
		tmp := make([]time.Duration, l.n)
		copy(tmp, l.buf[:l.n])
		sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
		idx := (l.n*latPercent + 99) / 100
		if idx > 0 {
			idx--
		}
		l.cached.Store(int64(tmp[idx]))
	}
	l.mu.Unlock()
}

// P99 returns the cached p99, or 0 before any observation.
func (l *latencyTrack) P99() time.Duration {
	return time.Duration(l.cached.Load())
}

// lockedRand is a mutex-guarded SplitMix64 stream for retry jitter. It
// exists so the router never touches math/rand (confined to internal/dp).
type lockedRand struct {
	mu    sync.Mutex
	state uint64
}

func (r *lockedRand) float64() float64 {
	r.mu.Lock()
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
