package router

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position. The numeric values are
// stable — they are exported as a telemetry gauge per replica.
type BreakerState int32

const (
	// BreakerClosed passes calls through; consecutive failures open it.
	BreakerClosed BreakerState = 0
	// BreakerOpen rejects calls until the open interval elapses.
	BreakerOpen BreakerState = 1
	// BreakerHalfOpen admits one probe at a time; enough successes close
	// the breaker, any failure reopens it.
	BreakerHalfOpen BreakerState = 2
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. The zero value selects the defaults
// documented per field.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker; 0 selects 5.
	FailureThreshold int
	// OpenFor is how long an open breaker rejects before admitting a
	// half-open probe; 0 selects 2 s.
	OpenFor time.Duration
	// HalfOpenSuccesses is how many consecutive probe successes close a
	// half-open breaker; 0 selects 1.
	HalfOpenSuccesses int
	// Now is the clock; nil selects time.Now. Tests inject a fake clock to
	// drive open → half-open transitions deterministically.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-replica circuit breaker: closed → open after
// FailureThreshold consecutive failures, open → half-open after OpenFor,
// half-open → closed after HalfOpenSuccesses probe successes (or back to
// open on any probe failure).
//
// Protocol: a caller that gets Allow() == true owns one call and must
// report its outcome with exactly one of Success, Failure or Cancel.
// Cancel exists for attempts abandoned through no fault of the replica
// (the request's deadline expired, a hedge lost the race); it releases a
// held half-open probe slot without counting either way, so a canceled
// probe cannot wedge the breaker half-open forever.
//
// All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	// onChange, when non-nil, observes every state transition (old, new).
	// It is called with the mutex held: keep it to a gauge store.
	onChange func(from, to BreakerState)

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last opened
	probing   bool      // a half-open probe is in flight
	successes int       // consecutive probe successes while half-open
}

// NewBreaker builds a closed breaker. onChange, when non-nil, observes
// every state transition; it runs under the breaker's lock.
func NewBreaker(cfg BreakerConfig, onChange func(from, to BreakerState)) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), onChange: onChange}
}

// State reports the current state (open breakers whose interval has
// elapsed still report open until an Allow admits the probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a call may proceed. In the open state it flips to
// half-open once OpenFor has elapsed and admits the caller as the probe;
// in half-open it admits one probe at a time.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		b.successes = 0
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a call that reached the replica and got an answer.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.probing = false
		b.successes++
		if b.successes >= b.cfg.HalfOpenSuccesses {
			b.transition(BreakerClosed)
			b.failures = 0
		}
	default:
		// A straggler from before the breaker opened; ignore.
	}
}

// Failure reports a call the replica failed (transport error, 5xx).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.transition(BreakerOpen)
			b.openedAt = b.cfg.Now()
		}
	case BreakerHalfOpen:
		// The probe failed: straight back to open for a fresh interval.
		b.probing = false
		b.successes = 0
		b.transition(BreakerOpen)
		b.openedAt = b.cfg.Now()
	default:
		// Already open; a straggler cannot make it more open, and
		// extending openedAt would let a burst of stale failures starve
		// the half-open probe forever.
	}
}

// Cancel releases an Allow()ed call whose outcome says nothing about the
// replica (caller's deadline expired, hedge lost the race, drain).
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// transition moves to state to, notifying onChange. Caller holds b.mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onChange != nil {
		b.onChange(from, to)
	}
}
