package router

import (
	"fmt"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty node list should fail")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate nodes should fail")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty node name should fail")
	}
}

func TestRingDeterministic(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("user:%d", i)
		if r1.Node(key) != r2.Node(key) {
			t.Fatalf("key %q: rings disagree (%s vs %s)", key, r1.Node(key), r2.Node(key))
		}
	}
}

func TestRingCoversAllNodes(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits := map[string]int{}
	for i := 0; i < 1000; i++ {
		hits[r.Node(fmt.Sprintf("user:%d", i))]++
	}
	for _, n := range nodes {
		if hits[n] == 0 {
			t.Errorf("node %s received no keys out of 1000", n)
		}
	}
}

func TestRingOrderedDistinctAndComplete(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("user:%d", i)
		ordered := r.Ordered(key)
		if len(ordered) != len(nodes) {
			t.Fatalf("key %q: Ordered returned %d nodes, want %d", key, len(ordered), len(nodes))
		}
		seen := map[string]bool{}
		for _, n := range ordered {
			if seen[n] {
				t.Fatalf("key %q: Ordered repeats node %s", key, n)
			}
			seen[n] = true
		}
		if ordered[0] != r.Node(key) {
			t.Fatalf("key %q: Ordered[0] = %s, Node = %s", key, ordered[0], r.Node(key))
		}
	}
}

// TestRingStability is the consistent-hashing property: adding a node only
// steals keys for the new node, it never shuffles keys between survivors.
func TestRingStability(t *testing.T) {
	before, err := NewRing([]string{"n0", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing([]string{"n0", "n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("user:%d", i)
		b, a := before.Node(key), after.Node(key)
		if b != a {
			if a != "n3" {
				t.Fatalf("key %q moved between surviving nodes: %s -> %s", key, b, a)
			}
			moved++
		}
	}
	// Expect roughly 1/4 of keys on the new node; allow a wide band.
	if moved < keys/10 || moved > keys/2 {
		t.Errorf("adding one of four nodes moved %d/%d keys; expected near %d", moved, keys, keys/4)
	}
}

func TestRingNodeIndex(t *testing.T) {
	nodes := []string{"n0", "n1", "n2"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("cluster:%d", i)
		if got, want := nodes[r.NodeIndex(key)], r.Node(key); got != want {
			t.Fatalf("key %q: NodeIndex points at %s, Node says %s", key, got, want)
		}
	}
}
