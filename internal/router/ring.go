// Package router implements the failure-aware routing tier in front of a
// sharded release (internal/release.SplitRelease): a consistent-hash ring
// assigns clusters to shards and orders each shard's replicas per user,
// and the Router proxies single-user reads to the owning shard and
// scatter/gathers batch requests across shards — with per-replica circuit
// breakers, capped jittered retries, optional hedged reads, and partial
// batch results that are explicitly labeled degraded instead of becoming
// all-or-nothing 502s.
//
// Everything here is stdlib-only. The ring uses FNV-1a with virtual nodes;
// randomized decisions (retry jitter) come from a seeded SplitMix64, never
// math/rand (which this repository confines to internal/dp).
package router

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over a fixed set of named nodes. It is
// immutable after construction and safe for concurrent use.
//
// The same ring construction serves two jobs: cmd/recserve uses one over
// shard names to assign clusters to shards at split time (so adding a
// shard moves ~1/n of the clusters instead of reshuffling everything), and
// the Router uses one per shard over replica URLs so a given user's
// requests prefer the same replica (cache affinity) while the successor
// order provides the natural failover sequence.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int32
}

// NewRing builds a ring over nodes with the given number of virtual nodes
// each; vnodes <= 0 selects 64. Node names must be non-empty and unique.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("router: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]ringPoint, 0, len(nodes)*vnodes),
	}
	for i, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("router: ring node %d has empty name", i)
		}
		if seen[n] {
			return nil, fmt.Errorf("router: duplicate ring node %q", n)
		}
		seen[n] = true
		base := fnv1a(n)
		for v := 0; v < vnodes; v++ {
			// Weyl-step the vnode index into the node's hash, then mix:
			// without the finalizer, similar names (and vnode indices)
			// land in a narrow band and the ring degenerates.
			h := mix64(base + uint64(v)*0x9e3779b97f4a7c15)
			r.points = append(r.points, ringPoint{hash: h, node: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Nodes returns the node names in construction order.
func (r *Ring) Nodes() []string { return r.nodes }

// Node returns the node owning key: the first ring point at or clockwise
// of the key's hash.
func (r *Ring) Node(key string) string {
	return r.nodes[r.points[r.at(key)].node]
}

// NodeIndex is Node returning the node's construction-order index.
func (r *Ring) NodeIndex(key string) int {
	return int(r.points[r.at(key)].node)
}

// Ordered returns every distinct node in ring order starting from the
// key's owner: element 0 is Node(key), element 1 is the first distinct
// successor, and so on. This is the failover / replica-preference order
// for the key.
func (r *Ring) Ordered(key string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make([]bool, len(r.nodes))
	for i, n := r.at(key), 0; n < len(r.points); i++ {
		p := r.points[i%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
			n++
			if len(out) == len(r.nodes) {
				break
			}
		}
	}
	return out
}

// at returns the index of the first point at or clockwise of key's hash.
func (r *Ring) at(key string) int {
	h := mix64(fnv1a(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnv1a is the 64-bit FNV-1a hash of s.
func fnv1a(s string) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// mix64 is the SplitMix64 finalizer: FNV-1a alone leaves strings that
// differ in their last byte within ~255*fnvPrime of each other, which
// would make sequential user keys map to one ring arc. The finalizer's
// avalanche spreads them over the full 64-bit circle.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
