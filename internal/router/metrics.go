package router

import (
	"fmt"

	"socialrec/internal/telemetry"
)

// Endpoint label values for router_requests_total — the only strings the
// router feeds telemetry as label values besides the static per-shard
// labels below. User tokens and request payloads never reach the registry.
const (
	rEpHealthz   = "healthz"
	rEpReadyz    = "readyz"
	rEpStats     = "stats"
	rEpUsers     = "users"
	rEpRecommend = "recommend"
	rEpBatch     = "batch"
	rEpReload    = "reload"
)

var routerEndpoints = []string{
	rEpHealthz, rEpReadyz, rEpStats, rEpUsers, rEpRecommend, rEpBatch, rEpReload,
}

// shardLabel renders the static label value for shard i ("s0", "s1", ...).
// The full value set is fixed at router construction, which is what keeps
// the registry's closed-world invariant: a shard id is topology, never
// request data.
func shardLabel(i int) string { return fmt.Sprintf("s%d", i) }

// metrics holds the router's pre-resolved instruments: every per-shard
// family is resolved to a slice indexed by shard id at construction, so
// the proxy hot path never performs a label lookup that could fail.
type metrics struct {
	requests map[string]*telemetry.Counter // by endpoint

	attempts      []*telemetry.Counter   // proxied attempts, by shard
	failures      []*telemetry.Counter   // failed attempts, by shard
	retries       []*telemetry.Counter   // retry attempts, by shard
	hedges        []*telemetry.Counter   // hedged attempts launched, by shard
	hedgeWins     []*telemetry.Counter   // requests won by the hedge, by shard
	breakerOpens  []*telemetry.Counter   // breaker close/half-open → open, by shard
	breakerReject []*telemetry.Counter   // calls refused with every breaker open, by shard
	proxySeconds  []*telemetry.Histogram // attempt latency, by shard

	breakerState [][]*telemetry.Gauge // current breaker state, [shard][replica]
	replicaUp    [][]*telemetry.Gauge // readyz-probe health, [shard][replica]

	degraded   *telemetry.Counter
	misrouted  *telemetry.Counter
	drainShed  *telemetry.Counter
	chaosShard *telemetry.Counter
	draining   *telemetry.Gauge
	inflight   *telemetry.Gauge
}

func newMetrics(reg *telemetry.Registry, replicasPerShard []int) *metrics {
	if reg == nil {
		reg = telemetry.Default()
	}
	numShards := len(replicasPerShard)
	labels := make([]string, numShards)
	for i := range labels {
		labels[i] = shardLabel(i)
	}
	m := &metrics{
		requests: map[string]*telemetry.Counter{},
		degraded: reg.NewCounter("router_degraded_total",
			"batch responses served partial because one or more shards were unavailable"),
		misrouted: reg.NewCounter("router_misdirected_total",
			"421 responses from shards that refused a user this router sent them (stale manifest)"),
		drainShed: reg.NewCounter("router_drain_shed_total",
			"requests rejected with 503 while the router was draining"),
		chaosShard: reg.NewCounter("router_chaos_injected_total",
			"shard attempts failed deliberately by fault injection at router.shard_call"),
		draining: reg.NewGauge("router_draining",
			"1 while the router is draining for shutdown"),
		inflight: reg.NewGauge("router_in_flight",
			"requests currently being handled by the router"),
	}
	reqVec := reg.NewCounterVec("router_requests_total",
		"requests handled by the router, by endpoint", "endpoint", routerEndpoints...)
	for _, ep := range routerEndpoints {
		m.requests[ep] = reqVec.MustWith(ep)
	}
	resolve := func(name, help string) []*telemetry.Counter {
		vec := reg.NewCounterVec(name, help, "shard", labels...)
		out := make([]*telemetry.Counter, numShards)
		for i := range out {
			out[i] = vec.MustWith(labels[i])
		}
		return out
	}
	m.attempts = resolve("router_shard_attempts_total",
		"attempts proxied to shard replicas, by shard")
	m.failures = resolve("router_shard_failures_total",
		"proxied attempts that failed (transport error or 5xx), by shard")
	m.retries = resolve("router_retries_total",
		"retry attempts after a failed proxied call, by shard")
	m.hedges = resolve("router_hedges_total",
		"hedged attempts launched after the hedge delay, by shard")
	m.hedgeWins = resolve("router_hedge_wins_total",
		"requests whose winning response came from a hedged attempt, by shard")
	m.breakerOpens = resolve("router_breaker_opens_total",
		"circuit breaker transitions into the open state, by shard")
	m.breakerReject = resolve("router_breaker_rejects_total",
		"calls refused because every replica breaker was open, by shard")
	latVec := reg.NewHistogramVec("router_shard_seconds",
		"proxied attempt latency, by shard", "shard", nil, labels...)
	m.proxySeconds = make([]*telemetry.Histogram, numShards)
	for i := range m.proxySeconds {
		m.proxySeconds[i] = latVec.MustWith(labels[i])
	}
	m.breakerState = make([][]*telemetry.Gauge, numShards)
	m.replicaUp = make([][]*telemetry.Gauge, numShards)
	for s, n := range replicasPerShard {
		m.breakerState[s] = make([]*telemetry.Gauge, n)
		m.replicaUp[s] = make([]*telemetry.Gauge, n)
		for r := 0; r < n; r++ {
			// Per-replica gauges get generated — but statically shaped —
			// names: the replica topology is fixed at construction, so the
			// name set is as closed as a label-vec's value set.
			m.breakerState[s][r] = reg.NewGauge(
				fmt.Sprintf("router_breaker_state_s%d_r%d", s, r),
				"circuit breaker state (0 closed, 1 open, 2 half-open)")
			m.replicaUp[s][r] = reg.NewGauge(
				fmt.Sprintf("router_replica_up_s%d_r%d", s, r),
				"1 while the replica's readyz probe answers")
			m.replicaUp[s][r].Set(1)
		}
	}
	return m
}
