package trace

import (
	"encoding/hex"
	"errors"
)

// TraceparentHeader is the W3C Trace Context header name carried on HTTP
// requests and responses.
const TraceparentHeader = "traceparent"

// Traceparent is a parsed W3C traceparent header:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^^ ^^^^^^^^^^^^^^^^ trace-id ^^^^^^ ^^ parent-id ^^^^ ^^ flags
//
// Only version 00 semantics are implemented; higher versions parse
// leniently per the spec (unknown trailing fields are ignored).
type Traceparent struct {
	TraceID  TraceID
	ParentID SpanID
	// Sampled is the sampled bit of trace-flags. The tracer records it but
	// makes its own retention decisions (tail sampling must be able to keep
	// traces the upstream did not sample).
	Sampled bool
}

var errTraceparent = errors.New("trace: malformed traceparent")

// ParseTraceparent parses a traceparent header value. It returns an error
// for anything malformed — the caller should fall back to starting a new
// root trace rather than propagating garbage.
func ParseTraceparent(s string) (Traceparent, error) {
	var tp Traceparent
	// version "ff" is forbidden; future versions may append fields after
	// the flags, so only reject extra data for version 00.
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tp, errTraceparent
	}
	version := s[0:2]
	if !isHexLower(version) || version == "ff" {
		return tp, errTraceparent
	}
	if version == "00" && len(s) != 55 {
		return tp, errTraceparent
	}
	if len(s) > 55 && s[55] != '-' {
		return tp, errTraceparent
	}
	traceHex, parentHex, flagsHex := s[3:35], s[36:52], s[53:55]
	if !isHexLower(traceHex) || !isHexLower(parentHex) || !isHexLower(flagsHex) {
		return tp, errTraceparent
	}
	if _, err := hex.Decode(tp.TraceID[:], []byte(traceHex)); err != nil {
		return tp, errTraceparent
	}
	if _, err := hex.Decode(tp.ParentID[:], []byte(parentHex)); err != nil {
		return tp, errTraceparent
	}
	if tp.TraceID.IsZero() || tp.ParentID.IsZero() {
		return tp, errTraceparent
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(flagsHex)); err != nil {
		return tp, errTraceparent
	}
	tp.Sampled = flags[0]&0x01 != 0
	return tp, nil
}

// String renders the version-00 header value. It assembles the fixed-width
// header in a stack buffer — one allocation for the returned string — since
// the serving path emits one per response.
func (tp Traceparent) String() string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], tp.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], tp.ParentID[:])
	b[52], b[53] = '-', '0'
	b[54] = '0'
	if tp.Sampled {
		b[54] = '1'
	}
	return string(b[:])
}

// isHexLower reports whether s is entirely lowercase hex digits, the only
// alphabet the W3C spec permits.
func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}
