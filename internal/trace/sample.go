package trace

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// quantile is a rolling quantile estimator over span durations, used for
// the tail-retention threshold ("always keep the slow tail"). Durations are
// bucketed by log2 (64 buckets cover 1ns..~584y) into atomic counters; the
// quantile is read by walking the cumulative histogram. Every decayEvery
// observations all counters are halved, so the estimate follows the recent
// workload instead of the whole process lifetime.
//
// Accuracy is one power of two, which is exactly what a "slow tail"
// threshold needs: the answer to "is 240ms slow?" does not change if the
// true p99 is 110ms vs 140ms.
type quantile struct {
	q       float64      // target quantile in (0,1), e.g. 0.99
	cached  atomic.Int64 // last computed threshold in ns; see Threshold
	buckets [64]atomic.Uint64
	total   atomic.Uint64 // observations since last decay
}

const (
	// quantMinSamples is the number of observations required before the
	// threshold activates; below it Threshold reports an unreachably large
	// duration so cold starts never mark everything "slow".
	quantMinSamples = 32
	// quantDecayEvery halves all buckets after this many observations.
	quantDecayEvery = 1024
	// quantRefreshEvery recomputes the cached threshold after this many
	// observations. The threshold is read on every root-span End, so it
	// must be one atomic load there; a ≤64-observation lag is well inside
	// the one-power-of-two accuracy the estimator promises anyway.
	quantRefreshEvery = 64
)

const quantInactive = int64(1<<63 - 1)

func newQuantile(q float64) *quantile {
	if q <= 0 || q >= 1 {
		q = 0.99
	}
	e := &quantile{q: q}
	e.cached.Store(quantInactive)
	return e
}

// bucketOf maps a duration to its log2 bucket.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d)) - 1
}

// Observe records one span duration.
func (e *quantile) Observe(d time.Duration) {
	e.buckets[bucketOf(d)].Add(1)
	n := e.total.Add(1)
	if n%quantDecayEvery == 0 {
		e.decay()
	}
	// Refresh the cached threshold on activation and every
	// quantRefreshEvery observations thereafter, so readers never pay for
	// the histogram walk.
	if n == quantMinSamples || n%quantRefreshEvery == 0 {
		e.cached.Store(int64(e.compute()))
	}
}

// decay halves every bucket. Concurrent Observes may interleave with the
// halving; the estimate tolerates that slop by design.
func (e *quantile) decay() {
	for i := range e.buckets {
		for {
			v := e.buckets[i].Load()
			if e.buckets[i].CompareAndSwap(v, v/2) {
				break
			}
		}
	}
}

// Threshold returns the current tail-latency threshold: the UPPER bound of
// the bucket holding the q-quantile, i.e. one log2 step beyond it. Using
// the upper bound matters — the quantile bucket itself holds ordinary
// traffic, and a lower-bound threshold would mark half of it "slow".
// Before quantMinSamples observations it returns the maximum duration,
// deactivating tail-slowness retention.
//
// The value is a cached copy refreshed by Observe — one atomic load, so
// the root-span End path (which reads it on every trace) never walks the
// histogram.
func (e *quantile) Threshold() time.Duration {
	return time.Duration(e.cached.Load())
}

// compute walks the cumulative histogram for the current threshold; called
// from Observe at refresh points, never on the read path.
func (e *quantile) compute() time.Duration {
	var counts [64]uint64
	var total uint64
	for i := range e.buckets {
		counts[i] = e.buckets[i].Load()
		total += counts[i]
	}
	if total < quantMinSamples {
		return time.Duration(1<<63 - 1)
	}
	rank := uint64(e.q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum > rank {
			if i >= 62 {
				break
			}
			return time.Duration(uint64(1) << uint(i+1))
		}
	}
	return time.Duration(1<<63 - 1)
}
