package trace

import (
	"context"
	"testing"
)

// BenchmarkSpanStartEnd measures the hot-path cost of opening and closing
// one child span under a live root — the overhead every traced operation
// pays. The leaf variant (StartLeaf: pooled object, no context derivation)
// is the engine's hot path and must stay at 0 allocs/op; the ctx variant
// pays for the derived context. Gated by scripts/benchdiff.go in CI.
func BenchmarkSpanStartEnd(b *testing.B) {
	tr := New(Config{Seed: 1, HeadRateZero: true, Capacity: 64})
	ctx, root := tr.StartRoot(context.Background(), "bench_root")
	defer root.End()
	b.Run("leaf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := StartLeaf(ctx, "bench_child")
			sp.Set(testKeyN.Int(int64(i)))
			sp.End()
		}
	})
	b.Run("ctx", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sp := Start(ctx, "bench_child")
			sp.Set(testKeyN.Int(int64(i)))
			sp.End()
		}
	})
}

// BenchmarkRootStartEnd measures a full root-span lifecycle including the
// sampling decision and (discarded) retention path.
func BenchmarkRootStartEnd(b *testing.B) {
	tr := New(Config{Seed: 1, HeadRateZero: true, Capacity: 64})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := tr.StartRoot(context.Background(), "bench_root")
		sp.End()
	}
}

// BenchmarkRootRetained measures the root lifecycle when every trace is
// retained (head rate 1) — the copy-on-retain path the ring pays.
func BenchmarkRootRetained(b *testing.B) {
	tr := New(Config{Seed: 1, Capacity: 64})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, sp := tr.StartRoot(context.Background(), "bench_root")
		leaf := StartLeaf(ctx, "bench_child")
		leaf.End()
		sp.End()
	}
}
