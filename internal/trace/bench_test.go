package trace

import (
	"context"
	"testing"
)

// BenchmarkSpanStartEnd measures the hot-path cost of opening and closing
// one child span under a live root — the overhead every traced operation
// pays. Gated by scripts/benchdiff.go in CI.
func BenchmarkSpanStartEnd(b *testing.B) {
	tr := New(Config{Seed: 1, HeadRateZero: true, Capacity: 64})
	ctx, root := tr.StartRoot(context.Background(), "bench_root")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench_child")
		sp.Set(testKeyN.Int(int64(i)))
		sp.End()
	}
}

// BenchmarkRootStartEnd measures a full root-span lifecycle including the
// sampling decision and (discarded) retention path.
func BenchmarkRootStartEnd(b *testing.B) {
	tr := New(Config{Seed: 1, HeadRateZero: true, Capacity: 64})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := tr.StartRoot(context.Background(), "bench_root")
		sp.End()
	}
}
