package trace

import "testing"

func TestParseTraceparentValid(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tp, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if tp.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", tp.TraceID)
	}
	if tp.ParentID.String() != "00f067aa0ba902b7" {
		t.Errorf("parent id = %s", tp.ParentID)
	}
	if !tp.Sampled {
		t.Error("sampled bit lost")
	}
	if tp.String() != h {
		t.Errorf("round trip = %q", tp.String())
	}
}

func TestParseTraceparentUnsampled(t *testing.T) {
	tp, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Sampled {
		t.Error("flags 00 parsed as sampled")
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Spec: parse version 01+ leniently, ignoring unknown trailing fields.
	tp, err := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra")
	if err != nil {
		t.Fatalf("future version rejected: %v", err)
	}
	if tp.TraceID.IsZero() {
		t.Error("trace id not parsed")
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	cases := []string{
		"",
		"hello",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // trailing junk on v00
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero parent id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // forbidden version
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad version hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong separator
	}
	for _, c := range cases {
		if _, err := ParseTraceparent(c); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", c)
		}
	}
}
