// Package trace is the repository's stdlib-only request-scoped tracer: it
// records causal trees of timed spans for individual recommendation
// requests and offline pipeline runs, complementing internal/telemetry's
// aggregates (which answer "how slow on average?") with per-request
// causality ("which child operation made THIS request slow, and which
// release did it observe?").
//
// # The no-preference-edges invariant
//
// Every retained trace is served over HTTP at /debug/traces, so the same
// discipline that guards telemetry labels guards span state, enforced by
// construction rather than by review:
//
//   - Span names must be static identifiers ([a-z][a-z0-9_]*); anything
//     else is recorded as "invalid_span".
//   - Attribute keys are declared up front through NewKey, which validates
//     the name and registers it in a closed world; a Key cannot be forged
//     (its field is unexported) and a zero Key is dropped on Set.
//   - Attribute values are int64, bool, or static-identifier strings.
//     There is deliberately no float constructor — an item score or a
//     noisy utility cannot become an attribute — and a string value that
//     is not a static identifier is replaced by "invalid_value", so a user
//     token or preference edge cannot ride along either.
//   - Error state is a status bit, never a message: error details belong
//     in logs, correlated back to the trace by trace_id (see NewSlogHandler).
//
// # Sampling
//
// Finished traces pass a two-tier sampler. Head sampling is deterministic
// on the trace ID (every process keeps the same subset, and an inbound
// traceparent keeps its fate from the caller's ID); tail retention then
// ALWAYS keeps traces whose root or any child errored, and traces whose
// root latency reaches a rolling quantile estimate of the recent latency
// distribution — the slow tail survives even a 1% head rate. Retained
// traces live in a fixed-size lock-free ring; old traces are overwritten,
// never reallocated.
//
// The span hot path (Start, Set, End on a non-retained trace) is a few
// atomics plus one short mutex hold on the trace's own accumulation list;
// no global lock is taken after tracer construction.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"socialrec/internal/telemetry"
)

// TraceID identifies one causal tree of spans, 16 bytes as in W3C Trace
// Context.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 32-char lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace, 8 bytes as in W3C Trace
// Context.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-char lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Status is a span's terminal disposition. There is deliberately no error
// message: messages are dynamic strings and belong in logs, which carry
// the trace id for correlation.
type Status uint8

const (
	// StatusOK is the default: the operation completed normally.
	StatusOK Status = iota
	// StatusError marks the operation failed; an errored span forces its
	// whole trace through tail retention.
	StatusError
)

func (s Status) String() string {
	if s == StatusError {
		return "error"
	}
	return "ok"
}

// validName reports whether s is a static identifier, the same rule
// telemetry applies to metric names and label values: non-empty, lower-case
// letter first, then lower-case letters, digits or underscores.
func validName(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r == '_' && i > 0:
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// Config assembles a Tracer. The zero value selects production defaults.
type Config struct {
	// Capacity is how many retained traces the ring holds before the
	// oldest are overwritten; rounded up to a power of two. 0 selects 1024.
	Capacity int
	// HeadRate is the deterministic head-sampling probability in [0, 1],
	// keyed on the trace ID. 0 selects 1.0 (keep everything); use
	// HeadRateZero for a true 0 (tail-only retention).
	HeadRate float64
	// HeadRateZero forces a 0 head rate (HeadRate 0 otherwise means 1.0).
	HeadRateZero bool
	// SlowQuantile is the rolling latency quantile at and above which a
	// root span is retained regardless of head sampling; 0 selects 0.99.
	SlowQuantile float64
	// MaxChildren caps how many finished child spans one trace
	// accumulates; further children are counted as dropped. 0 selects 256.
	MaxChildren int
	// Seed, when non-zero, makes span/trace IDs a deterministic sequence
	// (tests). 0 seeds the generator from crypto/rand at construction.
	Seed int64
}

// Tracer creates spans and retains sampled traces in a ring buffer.
type Tracer struct {
	ring        *ring
	quant       *quantile
	headBar     uint64 // keep when top 8 ID bytes <= headBar
	maxChildren int

	ids atomic.Uint64 // splitmix64 state; IDs need uniqueness, not secrecy

	started   atomic.Uint64 // spans started
	roots     atomic.Uint64 // root spans started
	kept      atomic.Uint64
	keptHead  atomic.Uint64
	keptError atomic.Uint64
	keptSlow  atomic.Uint64
	discarded atomic.Uint64 // finished roots not retained
	lateSpans atomic.Uint64 // children finished after their root ended
}

// New builds a tracer. See Config for defaults.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.SlowQuantile <= 0 || cfg.SlowQuantile >= 1 {
		cfg.SlowQuantile = 0.99
	}
	if cfg.MaxChildren <= 0 {
		cfg.MaxChildren = 256
	}
	rate := cfg.HeadRate
	if cfg.HeadRateZero {
		rate = 0
	} else if rate <= 0 || rate > 1 {
		rate = 1
	}
	var bar uint64
	switch {
	case rate >= 1:
		bar = ^uint64(0)
	case rate <= 0:
		bar = 0
	default:
		bar = uint64(rate * float64(^uint64(0)))
	}
	t := &Tracer{
		ring:        newRing(cfg.Capacity),
		quant:       newQuantile(cfg.SlowQuantile),
		headBar:     bar,
		maxChildren: cfg.MaxChildren,
	}
	seed := cfg.Seed
	if seed == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			// Entropy exhaustion is effectively impossible; fall back to a
			// fixed seed rather than failing tracer construction. IDs stay
			// unique within the process either way.
			b = [8]byte{0x9e, 0x37, 0x79, 0xb9, 0x7f, 0x4a, 0x7c, 0x15}
		}
		seed = int64(binary.LittleEndian.Uint64(b[:]))
	}
	t.ids.Store(uint64(seed))
	return t
}

var defaultTracer atomic.Pointer[Tracer]

func init() { defaultTracer.Store(New(Config{})) }

// Default returns the process-wide tracer, the one cmd/recserve serves at
// /debug/traces. Root spans started through the package-level Start use it.
func Default() *Tracer { return defaultTracer.Load() }

// SetDefault replaces the process-wide tracer (cmd/recserve configures
// sampling from flags before serving). nil is ignored.
func SetDefault(t *Tracer) {
	if t != nil {
		defaultTracer.Store(t)
	}
}

// nextID draws the next 64 pseudo-random bits (splitmix64; the stream is
// for uniqueness, not secrecy or privacy noise — privacy noise must flow
// through dp.NoiseSource, which sociolint enforces).
func (t *Tracer) nextID() uint64 {
	for {
		z := t.ids.Add(0x9e3779b97f4a7c15)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.nextID())
	binary.BigEndian.PutUint64(id[8:], t.nextID())
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.nextID())
	return id
}

// headSampled is the deterministic head decision: a pure function of the
// trace ID, so every hop of a distributed trace keeps or drops the same
// traces without coordination.
func (t *Tracer) headSampled(id TraceID) bool {
	return binary.BigEndian.Uint64(id[:8]) <= t.headBar
}

// root is the per-trace accumulation shared by every span of one trace.
type root struct {
	tracer  *Tracer
	traceID TraceID
	head    bool

	mu       sync.Mutex
	children []SpanData
	dropped  int
	errored  bool
	ended    bool
}

// Span is one in-flight timed operation. The zero and nil Span are inert:
// every method is a no-op, so code traced through an un-instrumented
// context needs no nil checks.
type Span struct {
	root     *root
	name     string
	spanID   SpanID
	parentID SpanID
	isRoot   bool
	start    time.Time

	mu     sync.Mutex
	attrs  []Attr
	status Status
	ended  bool
}

type ctxKey struct{}

// FromContext returns the active span, or nil when ctx carries none.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ContextWithSpan returns ctx carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// IDs returns the span's trace and span IDs as lowercase hex ("" for a
// nil/zero span) — the correlation tokens logs and exemplars carry.
func (sp *Span) IDs() (traceID, spanID string) {
	if sp == nil || sp.root == nil {
		return "", ""
	}
	return sp.root.traceID.String(), sp.spanID.String()
}

// TraceID returns the span's trace ID (zero for a nil/zero span).
func (sp *Span) TraceID() TraceID {
	if sp == nil || sp.root == nil {
		return TraceID{}
	}
	return sp.root.traceID
}

// SpanID returns the span's ID (zero for a nil/zero span).
func (sp *Span) SpanID() SpanID {
	if sp == nil || sp.root == nil {
		return SpanID{}
	}
	return sp.spanID
}

// HeadSampled reports the deterministic head-sampling fate of the span's
// trace (false for a nil/zero span).
func (sp *Span) HeadSampled() bool {
	return sp != nil && sp.root != nil && sp.root.head
}

// Start opens a span named name. If ctx carries an active span the new
// span joins its trace as a child; otherwise a new root trace begins on
// the Default tracer. The returned context carries the new span; callers
// MUST End the span on every path (sociolint's spanend analyzer enforces
// this for non-test code).
//
//sociolint:hotpath
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent := FromContext(ctx); parent != nil && parent.root != nil {
		sp := parent.root.tracer.newChild(parent, name)
		return ContextWithSpan(ctx, sp), sp
	}
	return Default().StartRoot(ctx, name)
}

// StartChild opens a child span only when ctx already carries an active
// span; otherwise it returns ctx unchanged and a nil (inert) span, whose
// every method is a no-op. Library code on shared paths (engine internals,
// stores) uses it so an untraced call cannot mint root traces of its own.
//
//sociolint:hotpath
func StartChild(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil || parent.root == nil {
		return ctx, nil
	}
	sp := parent.root.tracer.newChild(parent, name)
	return ContextWithSpan(ctx, sp), sp
}

// StartRoot opens a new root span (a new trace) on t, ignoring any span
// already in ctx.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	return t.startRoot(ctx, name, t.newTraceID(), SpanID{})
}

// StartRemote opens a root span that continues the remote trace described
// by tp (an inbound W3C traceparent): the trace ID is inherited — so the
// deterministic head decision matches the caller's — and the remote span
// becomes the parent.
func (t *Tracer) StartRemote(ctx context.Context, name string, tp Traceparent) (context.Context, *Span) {
	if tp.TraceID.IsZero() {
		return t.StartRoot(ctx, name)
	}
	return t.startRoot(ctx, name, tp.TraceID, tp.ParentID)
}

func (t *Tracer) startRoot(ctx context.Context, name string, traceID TraceID, parent SpanID) (context.Context, *Span) {
	if !validName(name) {
		name = "invalid_span"
	}
	t.started.Add(1)
	t.roots.Add(1)
	sp := &Span{
		root: &root{
			tracer:  t,
			traceID: traceID,
			head:    t.headSampled(traceID),
		},
		name:     name,
		spanID:   t.newSpanID(),
		parentID: parent,
		isRoot:   true,
		start:    time.Now(),
	}
	// Stamp the trace id where telemetry can see it (telemetryimports bars
	// telemetry from importing this package, so the handshake is a plain
	// string in the context) — Ledger.RecordCtx attributes ε spends with it.
	ctx = telemetry.ContextWithTrace(ctx, traceID.String())
	return ContextWithSpan(ctx, sp), sp
}

//sociolint:hotpath
func (t *Tracer) newChild(parent *Span, name string) *Span {
	if !validName(name) {
		name = "invalid_span"
	}
	t.started.Add(1)
	return &Span{
		root:     parent.root,
		name:     name,
		spanID:   t.newSpanID(),
		parentID: parent.spanID,
		start:    time.Now(),
	}
}

// Set attaches declared attributes to the span. Attributes from undeclared
// (zero) keys are dropped; see NewKey. At most maxAttrsPerSpan stick.
func (sp *Span) Set(attrs ...Attr) {
	if sp == nil || sp.root == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.ended {
		return
	}
	for _, a := range attrs {
		if a.key.name == "" || len(sp.attrs) >= maxAttrsPerSpan {
			continue
		}
		sp.attrs = append(sp.attrs, a)
	}
}

// SetStatus sets the span's terminal status. StatusError marks the whole
// trace for tail retention.
func (sp *Span) SetStatus(s Status) {
	if sp == nil || sp.root == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if !sp.ended {
		sp.status = s
	}
}

// End finishes the span and returns its duration. Ending a child folds it
// into its trace; ending the root runs the sampling decision and, when
// retained, commits the whole trace to the ring. End is idempotent —
// second and later calls are no-ops returning 0.
func (sp *Span) End() time.Duration {
	if sp == nil || sp.root == nil {
		return 0
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return 0
	}
	sp.ended = true
	d := time.Since(sp.start)
	data := SpanData{
		SpanID:   sp.spanID.String(),
		Name:     sp.name,
		Start:    sp.start.UnixNano(),
		Duration: d,
		Status:   sp.status.String(),
		Attrs:    exportAttrs(sp.attrs),
	}
	errored := sp.status == StatusError
	sp.mu.Unlock()
	if !sp.parentID.IsZero() || sp.isChild() {
		data.ParentID = sp.parentID.String()
	}

	r := sp.root
	t := r.tracer
	if sp.isChild() {
		r.mu.Lock()
		if r.ended {
			t.lateSpans.Add(1)
		} else if len(r.children) >= t.maxChildren {
			r.dropped++
		} else {
			r.children = append(r.children, data)
		}
		if errored {
			r.errored = true
		}
		r.mu.Unlock()
		return d
	}

	// Root: close the trace and decide retention.
	t.quant.Observe(d)
	slow := d >= t.quant.Threshold()
	r.mu.Lock()
	r.ended = true
	children := r.children
	dropped := r.dropped
	errored = errored || r.errored
	r.mu.Unlock()

	keep, why := false, ""
	switch {
	case errored:
		keep, why = true, "error"
		t.keptError.Add(1)
	case slow:
		keep, why = true, "slow"
		t.keptSlow.Add(1)
	case r.head:
		keep, why = true, "head"
		t.keptHead.Add(1)
	}
	if !keep {
		t.discarded.Add(1)
		return d
	}
	t.kept.Add(1)
	t.ring.push(&TraceData{
		TraceID:      r.traceID.String(),
		Retained:     why,
		Root:         data,
		Spans:        children,
		DroppedSpans: dropped,
		endNano:      data.Start + int64(d),
	})
	return d
}

// isChild reports whether sp is a child span (its trace's root is some
// other span). A root may still carry a non-zero parentID from a remote
// traceparent, so parentID alone cannot distinguish the two.
func (sp *Span) isChild() bool { return !sp.isRoot }

// Stats is a point-in-time summary of a tracer's sampling behaviour.
type Stats struct {
	// Started counts all spans started (roots + children).
	Started uint64 `json:"spans_started"`
	// Roots counts root spans (one per trace).
	Roots uint64 `json:"roots_started"`
	// Kept counts retained traces, split by retention reason.
	Kept      uint64 `json:"traces_kept"`
	KeptHead  uint64 `json:"kept_head"`
	KeptError uint64 `json:"kept_error"`
	KeptSlow  uint64 `json:"kept_slow"`
	// Discarded counts finished traces the sampler dropped.
	Discarded uint64 `json:"traces_discarded"`
	// LateSpans counts children that finished after their root ended.
	LateSpans uint64 `json:"late_spans"`
	// SlowThresholdNS is the current tail-retention latency threshold
	// (math.MaxInt64 until enough observations accumulate).
	SlowThresholdNS int64 `json:"slow_threshold_ns"`
}

// Stats snapshots the tracer's counters.
func (t *Tracer) Stats() Stats {
	return Stats{
		Started:         t.started.Load(),
		Roots:           t.roots.Load(),
		Kept:            t.kept.Load(),
		KeptHead:        t.keptHead.Load(),
		KeptError:       t.keptError.Load(),
		KeptSlow:        t.keptSlow.Load(),
		Discarded:       t.discarded.Load(),
		LateSpans:       t.lateSpans.Load(),
		SlowThresholdNS: int64(t.quant.Threshold()),
	}
}

// Snapshot returns the retained traces, newest first.
func (t *Tracer) Snapshot() []*TraceData {
	return t.ring.snapshot()
}
