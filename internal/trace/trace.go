// Package trace is the repository's stdlib-only request-scoped tracer: it
// records causal trees of timed spans for individual recommendation
// requests and offline pipeline runs, complementing internal/telemetry's
// aggregates (which answer "how slow on average?") with per-request
// causality ("which child operation made THIS request slow, and which
// release did it observe?").
//
// # The no-preference-edges invariant
//
// Every retained trace is served over HTTP at /debug/traces, so the same
// discipline that guards telemetry labels guards span state, enforced by
// construction rather than by review:
//
//   - Span names must be static identifiers ([a-z][a-z0-9_]*); anything
//     else is recorded as "invalid_span".
//   - Attribute keys are declared up front through NewKey, which validates
//     the name and registers it in a closed world; a Key cannot be forged
//     (its field is unexported) and a zero Key is dropped on Set.
//   - Attribute values are int64, bool, or static-identifier strings.
//     There is deliberately no float constructor — an item score or a
//     noisy utility cannot become an attribute — and a string value that
//     is not a static identifier is replaced by "invalid_value", so a user
//     token or preference edge cannot ride along either.
//   - Error state is a status bit, never a message: error details belong
//     in logs, correlated back to the trace by trace_id (see NewSlogHandler).
//
// # Sampling
//
// Finished traces pass a two-tier sampler. Head sampling is deterministic
// on the trace ID (every process keeps the same subset, and an inbound
// traceparent keeps its fate from the caller's ID); tail retention then
// ALWAYS keeps traces whose root or any child errored, and traces whose
// root latency reaches a rolling quantile estimate of the recent latency
// distribution — the slow tail survives even a 1% head rate. Retained
// traces live in a fixed-size ring of reusable slots; old traces are
// overwritten in place, never reallocated.
//
// # Pooling and allocation
//
// Span and per-trace accumulation objects are pooled (sync.Pool) with
// fixed-capacity attribute slots, so the span hot path — StartLeaf, Set,
// End on a child of a live trace — performs zero heap allocations in
// steady state. Safety under recycling comes from generation counters: the
// public Span is a small value handle {object, generation}; every method
// re-checks the generation under the object's own mutex and becomes a
// no-op once the object has been released, so End stays idempotent and a
// child that outlives its root is counted late instead of corrupting an
// unrelated trace. Retention copies-on-retain: the ring stores compact
// span records copied out of the pooled accumulator at the moment a trace
// is kept, into slot storage the ring reuses across overwrites (JSON-shaped
// export is deferred to Snapshot time), so pooled objects recycle
// immediately regardless of sampling fate and retention itself allocates
// nothing in steady state.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"socialrec/internal/telemetry"
)

// TraceID identifies one causal tree of spans, 16 bytes as in W3C Trace
// Context.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 32-char lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one span within a trace, 8 bytes as in W3C Trace
// Context.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-char lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Status is a span's terminal disposition. There is deliberately no error
// message: messages are dynamic strings and belong in logs, which carry
// the trace id for correlation.
type Status uint8

const (
	// StatusOK is the default: the operation completed normally.
	StatusOK Status = iota
	// StatusError marks the operation failed; an errored span forces its
	// whole trace through tail retention.
	StatusError
)

func (s Status) String() string {
	if s == StatusError {
		return "error"
	}
	return "ok"
}

// validName reports whether s is a static identifier, the same rule
// telemetry applies to metric names and label values: non-empty, lower-case
// letter first, then lower-case letters, digits or underscores.
func validName(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r == '_' && i > 0:
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// Config assembles a Tracer. The zero value selects production defaults.
type Config struct {
	// Capacity is how many retained traces the ring holds before the
	// oldest are overwritten; rounded up to a power of two. 0 selects 1024.
	Capacity int
	// HeadRate is the deterministic head-sampling probability in [0, 1],
	// keyed on the trace ID. 0 selects 1.0 (keep everything); use
	// HeadRateZero for a true 0 (tail-only retention).
	HeadRate float64
	// HeadRateZero forces a 0 head rate (HeadRate 0 otherwise means 1.0).
	HeadRateZero bool
	// SlowQuantile is the rolling latency quantile at and above which a
	// root span is retained regardless of head sampling; 0 selects 0.99.
	SlowQuantile float64
	// MaxChildren caps how many finished child spans one trace
	// accumulates; further children are counted as dropped. 0 selects 256.
	MaxChildren int
	// Seed, when non-zero, makes span/trace IDs a deterministic sequence
	// (tests). 0 seeds the generator from crypto/rand at construction.
	Seed int64
	// Process is the static process identity ("recrouter", "shard_0")
	// stamped on every exported trace, so a fleet collector stitching
	// spans from several /debug/traces exports can attribute each span to
	// the process that recorded it. Must be a static identifier under the
	// same closed-world rule as span names; anything else exports as
	// "invalid_process". Empty omits the field.
	Process string
}

// Tracer creates spans and retains sampled traces in a ring buffer.
type Tracer struct {
	ring        *ring
	quant       *quantile
	headBar     uint64 // keep when top 8 ID bytes <= headBar
	maxChildren int
	process     string // static process identity stamped on exports

	ids atomic.Uint64 // splitmix64 state; IDs need uniqueness, not secrecy

	started   atomic.Uint64 // spans started
	roots     atomic.Uint64 // root spans started
	kept      atomic.Uint64
	keptHead  atomic.Uint64
	keptError atomic.Uint64
	keptSlow  atomic.Uint64
	discarded atomic.Uint64 // finished roots not retained
	lateSpans atomic.Uint64 // children finished after their root ended
}

// New builds a tracer. See Config for defaults.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.SlowQuantile <= 0 || cfg.SlowQuantile >= 1 {
		cfg.SlowQuantile = 0.99
	}
	if cfg.MaxChildren <= 0 {
		cfg.MaxChildren = 256
	}
	rate := cfg.HeadRate
	if cfg.HeadRateZero {
		rate = 0
	} else if rate <= 0 || rate > 1 {
		rate = 1
	}
	var bar uint64
	switch {
	case rate >= 1:
		bar = ^uint64(0)
	case rate <= 0:
		bar = 0
	default:
		bar = uint64(rate * float64(^uint64(0)))
	}
	proc := cfg.Process
	if proc != "" && !validName(proc) {
		proc = "invalid_process"
	}
	t := &Tracer{
		ring:        newRing(cfg.Capacity),
		quant:       newQuantile(cfg.SlowQuantile),
		headBar:     bar,
		maxChildren: cfg.MaxChildren,
		process:     proc,
	}
	seed := cfg.Seed
	if seed == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			// Entropy exhaustion is effectively impossible; fall back to a
			// fixed seed rather than failing tracer construction. IDs stay
			// unique within the process either way.
			b = [8]byte{0x9e, 0x37, 0x79, 0xb9, 0x7f, 0x4a, 0x7c, 0x15}
		}
		seed = int64(binary.LittleEndian.Uint64(b[:]))
	}
	t.ids.Store(uint64(seed))
	return t
}

var defaultTracer atomic.Pointer[Tracer]

func init() {
	defaultTracer.Store(New(Config{}))
	telemetry.RegisterPoolStats("trace_span", func() telemetry.PoolStats {
		return telemetry.PoolStats{Gets: spanPoolGets.Load(), Misses: spanPoolNews.Load()}
	})
	telemetry.RegisterPoolStats("trace_root", func() telemetry.PoolStats {
		return telemetry.PoolStats{Gets: rootPoolGets.Load(), Misses: rootPoolNews.Load()}
	})
	// Telemetry's half of the trace-correlation handshake (it cannot import
	// this package): ε-spend attribution resolves the active span's trace id
	// on demand instead of every root span paying to stamp it eagerly.
	telemetry.SetTraceIDResolver(func(ctx context.Context) string {
		traceID, _ := FromContext(ctx).IDs()
		return traceID
	})
}

// Default returns the process-wide tracer, the one cmd/recserve serves at
// /debug/traces. Root spans started through the package-level Start use it.
func Default() *Tracer { return defaultTracer.Load() }

// SetDefault replaces the process-wide tracer (cmd/recserve configures
// sampling from flags before serving). nil is ignored.
func SetDefault(t *Tracer) {
	if t != nil {
		defaultTracer.Store(t)
	}
}

// nextID draws the next 64 pseudo-random bits (splitmix64; the stream is
// for uniqueness, not secrecy or privacy noise — privacy noise must flow
// through dp.NoiseSource, which sociolint enforces).
func (t *Tracer) nextID() uint64 {
	for {
		z := t.ids.Add(0x9e3779b97f4a7c15)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], t.nextID())
	binary.BigEndian.PutUint64(id[8:], t.nextID())
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], t.nextID())
	return id
}

// headSampled is the deterministic head decision: a pure function of the
// trace ID, so every hop of a distributed trace keeps or drops the same
// traces without coordination.
func (t *Tracer) headSampled(id TraceID) bool {
	return binary.BigEndian.Uint64(id[:8]) <= t.headBar
}

// root is the pooled per-trace accumulator shared by every span of one
// trace. Finished children fold compact records into children and their
// attributes into the arena; both slices keep their capacity across
// recycles, so steady-state folding never allocates. gen is bumped under
// mu when the root is released: a late child holding a stale generation
// sees the mismatch and is counted instead of folded. gen is atomic so a
// fresh owner (startRoot, sole holder right after rootPool.Get) can read
// it without taking mu; folds still check it under mu, which is what makes
// the late-child bail race-free.
type root struct {
	mu       sync.Mutex
	gen      atomic.Uint64
	children []spanRecord
	arena    []Attr
	dropped  int
	errored  bool
}

// span is the pooled object behind Span handles. All fields are guarded by
// mu; gen is bumped at release so stale handles become inert before the
// object is reused.
type span struct {
	mu  sync.Mutex
	gen uint64

	tracer   *Tracer
	rt       *root
	rtGen    uint64
	traceID  TraceID
	traceHex string // lazily cached by IDs; never eagerly rendered
	spanHex  string // lazily cached
	head     bool
	isRoot   bool
	name     string
	spanID   SpanID
	parentID SpanID
	// Timing is anchored at the root: rootStart is the root span's wall+
	// mono reading (copied to every child) and startOff this span's start
	// as a monotonic offset from it. Children therefore pay one
	// time.Since per start instead of a full time.Now — roughly half the
	// clock cost — and the exported start (rootStartNano+startOff) stays
	// correct even across wall-clock steps.
	rootStart     time.Time
	rootStartNano int64
	startOff      time.Duration
	status        Status
	ended         bool
	nattrs        int
	attrs         [maxAttrsPerSpan]Attr
}

// Pools for span and root objects. Gets/news counters feed the pool
// self-metrics exported by telemetry's runtime collector; a "miss" is a
// Get that had to allocate (pool empty, typically after a GC cycle).
var (
	spanPool     = sync.Pool{New: func() any { spanPoolNews.Add(1); return new(span) }}
	rootPool     = sync.Pool{New: func() any { rootPoolNews.Add(1); return new(root) }}
	spanPoolGets atomic.Uint64
	spanPoolNews atomic.Uint64
	rootPoolGets atomic.Uint64
	rootPoolNews atomic.Uint64
)

// Span is a handle to one in-flight timed operation: a pooled object plus
// the generation it was valid for. The zero Span is inert — every method
// is a no-op — and so is any handle whose object has since been released
// back to the pool (End recycles it), which is what makes pooling safe:
// double End, Set-after-End and children outliving their root all degrade
// to no-ops or a late-span count, never to writes into a recycled object.
type Span struct {
	sp  *span
	gen uint64
}

type ctxKey struct{}

// spanCtx is the dedicated context carrier for the active span. A plain
// context.WithValue stamp costs two allocations (the valueCtx plus the
// 16-byte Span boxed into its any field); boxing this struct into the
// context.Context return is one. FromContext unwraps it with a concrete
// type assertion — no interface round-trip — when the caller's context IS
// the stamp, which is the hot-path shape (a handler or engine receives the
// context StartRoot returned).
type spanCtx struct {
	context.Context
	sp Span
}

// Value serves the active span under the package's private key and
// delegates everything else, so spans derived through WithCancel & friends
// still find their parent.
func (c spanCtx) Value(key any) any {
	if _, ok := key.(ctxKey); ok {
		return c.sp
	}
	return c.Context.Value(key)
}

// FromContext returns the active span; the zero (inert) Span when ctx
// carries none.
func FromContext(ctx context.Context) Span {
	if c, ok := ctx.(spanCtx); ok {
		return c.sp
	}
	sp, _ := ctx.Value(ctxKey{}).(Span)
	return sp
}

// ContextWithSpan returns ctx carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp Span) context.Context {
	return spanCtx{Context: ctx, sp: sp}
}

// IDs returns the span's trace and span IDs as lowercase hex ("" for an
// inert span) — the correlation tokens logs and exemplars carry. The hex
// forms are computed once per span and cached.
func (sp Span) IDs() (traceID, spanID string) {
	s := sp.sp
	if s == nil {
		return "", ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != sp.gen {
		return "", ""
	}
	if s.traceHex == "" {
		s.traceHex = s.traceID.String()
	}
	if s.spanHex == "" {
		s.spanHex = s.spanID.String()
	}
	return s.traceHex, s.spanHex
}

// TraceID returns the span's trace ID (zero for an inert span).
func (sp Span) TraceID() TraceID {
	s := sp.sp
	if s == nil {
		return TraceID{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != sp.gen {
		return TraceID{}
	}
	return s.traceID
}

// SpanID returns the span's ID (zero for an inert span).
func (sp Span) SpanID() SpanID {
	s := sp.sp
	if s == nil {
		return SpanID{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != sp.gen {
		return SpanID{}
	}
	return s.spanID
}

// HeadSampled reports the deterministic head-sampling fate of the span's
// trace (false for an inert span).
func (sp Span) HeadSampled() bool {
	s := sp.sp
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen == sp.gen && s.head
}

// Start opens a span named name. If ctx carries an active span the new
// span joins its trace as a child; otherwise a new root trace begins on
// the Default tracer. The returned context carries the new span; callers
// MUST End the span on every path (sociolint's spanend analyzer enforces
// this for non-test code).
//
//sociolint:hotpath
func Start(ctx context.Context, name string) (context.Context, Span) {
	if parent := FromContext(ctx); parent.sp != nil {
		sp := parent.newChild(name, nil)
		if sp.sp == nil {
			// The parent was already recycled (its request finished);
			// starting a fresh root here would fabricate causality, so the
			// caller gets an inert span instead.
			return ctx, sp
		}
		return ContextWithSpan(ctx, sp), sp
	}
	return Default().StartRoot(ctx, name)
}

// StartChild opens a child span only when ctx already carries an active
// span; otherwise it returns ctx unchanged and an inert span, whose every
// method is a no-op. Library code on shared paths (engine internals,
// stores) uses it so an untraced call cannot mint root traces of its own.
//
//sociolint:hotpath
func StartChild(ctx context.Context, name string) (context.Context, Span) {
	parent := FromContext(ctx)
	if parent.sp == nil {
		return ctx, Span{}
	}
	sp := parent.newChild(name, nil)
	if sp.sp == nil {
		return ctx, sp
	}
	return ContextWithSpan(ctx, sp), sp
}

// StartLeaf opens a child of ctx's active span WITHOUT deriving a new
// context: the allocation-free variant of StartChild for leaf operations
// that never start children of their own (the engine's per-batch phases).
// Initial attributes may be attached in the same call — cheaper than a
// following Set, which pays a second lock round-trip. When ctx carries no
// active span — or the span was already recycled — the returned Span is
// inert. Callers MUST End the span on every path (spanend enforces this
// like every other Start variant).
//
//sociolint:hotpath
func StartLeaf(ctx context.Context, name string, attrs ...Attr) Span {
	parent := FromContext(ctx)
	if parent.sp == nil {
		return Span{}
	}
	return parent.newChild(name, attrs)
}

// StartRoot opens a new root span (a new trace) on t, ignoring any span
// already in ctx.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, Span) {
	return t.startRoot(ctx, name, t.newTraceID(), SpanID{})
}

// StartRemote opens a root span that continues the remote trace described
// by tp (an inbound W3C traceparent): the trace ID is inherited — so the
// deterministic head decision matches the caller's — and the remote span
// becomes the parent.
func (t *Tracer) StartRemote(ctx context.Context, name string, tp Traceparent) (context.Context, Span) {
	if tp.TraceID.IsZero() {
		return t.StartRoot(ctx, name)
	}
	return t.startRoot(ctx, name, tp.TraceID, tp.ParentID)
}

func (t *Tracer) startRoot(ctx context.Context, name string, traceID TraceID, parent SpanID) (context.Context, Span) {
	if !validName(name) {
		name = "invalid_span"
	}
	t.started.Add(1)
	t.roots.Add(1)

	rootPoolGets.Add(1)
	rt := rootPool.Get().(*root)
	// This goroutine is the accumulator's sole owner right after Get —
	// late children from its previous life only ever compare gen under
	// rt.mu — so an atomic read suffices here; no lock round-trip.
	rtGen := rt.gen.Load()

	spanPoolGets.Add(1)
	s := spanPool.Get().(*span)
	// Initialization runs WITHOUT s.mu. A stale handle from the object's
	// previous life may still call methods concurrently, but those lock
	// s.mu and read only s.gen before bailing — and gen was bumped under
	// s.mu at release, before the Put whose matching Get handed us the
	// object — so the bail is race-free and init never touches the one
	// field it reads. Methods on the handle returned below re-lock s.mu,
	// and reach these fields through whatever synchronization delivered
	// them the handle.
	s.tracer = t
	s.rt = rt
	s.rtGen = rtGen
	s.traceID = traceID
	s.head = t.headSampled(traceID)
	s.isRoot = true
	s.name = name
	s.spanID = t.newSpanID()
	s.parentID = parent
	s.rootStart = time.Now()
	s.rootStartNano = s.rootStart.UnixNano()
	s.startOff = 0
	gen := s.gen

	// Telemetry finds the trace id through the resolver registered in this
	// package's init (telemetryimports bars telemetry from importing this
	// package), so no second context value is stamped here: root start stays
	// at its alloc floor and the hex id is only rendered when something —
	// an ε-spend attribution, a log line, an exemplar — actually asks.
	sp := Span{sp: s, gen: gen}
	return ContextWithSpan(ctx, sp), sp
}

// newChild allocates nothing in steady state: a pooled span object is
// initialized from the parent's fields, read under the parent's lock so a
// recycled parent yields an inert child instead of joining a stranger's
// trace. attrs, when non-empty, are attached during init — same validation
// as Set, minus Set's extra lock round-trip (a non-escaping variadic slice
// lives on the caller's stack).
//
//sociolint:hotpath
func (parent Span) newChild(name string, attrs []Attr) Span {
	if !validName(name) {
		name = "invalid_span"
	}
	ps := parent.sp
	ps.mu.Lock()
	if ps.gen != parent.gen {
		ps.mu.Unlock()
		return Span{}
	}
	t := ps.tracer
	rt, rtGen := ps.rt, ps.rtGen
	traceID, head := ps.traceID, ps.head
	parentID := ps.spanID
	rootStart, rootStartNano := ps.rootStart, ps.rootStartNano
	ps.mu.Unlock()

	t.started.Add(1)
	spanPoolGets.Add(1)
	s := spanPool.Get().(*span)
	// Lock-free init; see the twin comment in startRoot for why a stale
	// handle racing these writes is safe (it only reads s.gen, under mu).
	s.tracer = t
	s.rt = rt
	s.rtGen = rtGen
	s.traceID = traceID
	s.head = head
	s.isRoot = false
	s.name = name
	s.spanID = t.newSpanID()
	s.parentID = parentID
	s.rootStart = rootStart
	s.rootStartNano = rootStartNano
	n := 0
	for _, a := range attrs {
		if a.key.name == "" || n >= maxAttrsPerSpan {
			continue
		}
		s.attrs[n] = a
		n++
	}
	s.nattrs = n
	s.startOff = time.Since(rootStart)
	return Span{sp: s, gen: s.gen}
}

// Set attaches declared attributes to the span. Attributes from undeclared
// (zero) keys are dropped; see NewKey. At most maxAttrsPerSpan stick — the
// backing storage is a fixed-capacity array inside the pooled span object,
// so Set never allocates.
//
//sociolint:hotpath
func (sp Span) Set(attrs ...Attr) {
	s := sp.sp
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != sp.gen || s.ended {
		return
	}
	for _, a := range attrs {
		if a.key.name == "" || s.nattrs >= maxAttrsPerSpan {
			continue
		}
		s.attrs[s.nattrs] = a
		s.nattrs++
	}
}

// SetStatus sets the span's terminal status. StatusError marks the whole
// trace for tail retention.
//
//sociolint:hotpath
func (sp Span) SetStatus(st Status) {
	s := sp.sp
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != sp.gen || s.ended {
		return
	}
	s.status = st
}

// End finishes the span and returns its duration. Ending a child folds its
// compact record into its trace's pooled accumulator; ending the root runs
// the sampling decision and, when retained, copies the accumulated records
// into the ring (copy-on-retain) before both objects recycle. End is
// idempotent — second and later calls are no-ops returning 0, enforced by
// the generation check even after the underlying object is reused.
//
//sociolint:hotpath
func (sp Span) End() time.Duration {
	s := sp.sp
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if s.gen != sp.gen || s.ended {
		s.mu.Unlock()
		return 0
	}
	s.ended = true
	d := time.Since(s.rootStart) - s.startOff
	rec := spanRecord{
		spanID:   s.spanID,
		parentID: s.parentID,
		name:     s.name,
		start:    s.rootStartNano + int64(s.startOff),
		dur:      d,
		status:   s.status,
	}
	t := s.tracer
	if s.isRoot {
		t.endRoot(s, rec, d)
	} else {
		t.endChild(s, rec)
	}
	// Release: bump the generation (stale handles go inert) and return the
	// span to the pool. Lock order is always span.mu → root.mu, never the
	// reverse, so holding s.mu through the fold above cannot deadlock.
	//
	// s.tracer, s.rt and s.name are deliberately NOT cleared: the next Get
	// overwrites them, and everything they can pin — the tracer, a pooled
	// root, a static span-name literal — is long-lived anyway, so the only
	// thing the clears bought was three pointer write barriers on the hot
	// path. The lazily-rendered hex strings are the exception (per-span
	// garbage), dropped only when they were actually materialized.
	s.gen++
	if s.traceHex != "" {
		s.traceHex = ""
	}
	if s.spanHex != "" {
		s.spanHex = ""
	}
	s.head = false
	s.isRoot = false
	s.ended = false
	s.status = StatusOK
	s.nattrs = 0
	s.mu.Unlock()
	spanPool.Put(s)
	return d
}

// endChild folds a finished child into its trace's accumulator. Called
// with s.mu held.
//
//sociolint:hotpath
func (t *Tracer) endChild(s *span, rec spanRecord) {
	rt := s.rt
	rt.mu.Lock()
	if rt.gen.Load() != s.rtGen {
		// The root ended (and recycled the accumulator) first.
		rt.mu.Unlock()
		t.lateSpans.Add(1)
		return
	}
	if s.status == StatusError {
		rt.errored = true
	}
	if len(rt.children) >= t.maxChildren {
		rt.dropped++
	} else {
		rec.attrOff = len(rt.arena)
		rec.attrN = s.nattrs
		rt.arena = append(rt.arena, s.attrs[:s.nattrs]...)
		rt.children = append(rt.children, rec)
	}
	rt.mu.Unlock()
}

// endRoot closes the trace: it decides retention, copies the accumulated
// records out when kept, and recycles the accumulator. Called with s.mu
// held.
func (t *Tracer) endRoot(s *span, rec spanRecord, d time.Duration) {
	t.quant.Observe(d)
	slow := d >= t.quant.Threshold()

	rt := s.rt
	rt.mu.Lock()
	if rt.gen.Load() != s.rtGen {
		// Unreachable in practice (the root span's own gen/ended gate
		// already serializes End), kept as defense in depth.
		rt.mu.Unlock()
		t.lateSpans.Add(1)
		return
	}
	errored := s.status == StatusError || rt.errored

	keep, why := false, ""
	switch {
	case errored:
		keep, why = true, "error"
		t.keptError.Add(1)
	case slow:
		keep, why = true, "slow"
		t.keptSlow.Add(1)
	case s.head:
		keep, why = true, "head"
		t.keptHead.Add(1)
	}

	if keep {
		// Copy-on-retain: the ring slot copies the records and the
		// attribute arena into storage it owns (reused across overwrites,
		// so this allocates nothing in steady state). The accumulator's
		// slices are only borrowed for the duration of the push, which is
		// why it happens here, still under rt.mu.
		t.ring.push(s.traceID, why, rec, rt.children, rt.arena,
			s.attrs[:s.nattrs], rt.dropped, rec.start+int64(d))
	}

	// Recycle the accumulator: bump the generation so late children count
	// as late instead of folding into the next trace, keep slice capacity.
	rt.gen.Add(1)
	rt.children = rt.children[:0]
	rt.arena = rt.arena[:0]
	rt.dropped = 0
	rt.errored = false
	rt.mu.Unlock()
	rootPool.Put(rt)

	if !keep {
		t.discarded.Add(1)
		return
	}
	t.kept.Add(1)
}

// Stats is a point-in-time summary of a tracer's sampling behaviour.
type Stats struct {
	// Started counts all spans started (roots + children).
	Started uint64 `json:"spans_started"`
	// Roots counts root spans (one per trace).
	Roots uint64 `json:"roots_started"`
	// Kept counts retained traces, split by retention reason.
	Kept      uint64 `json:"traces_kept"`
	KeptHead  uint64 `json:"kept_head"`
	KeptError uint64 `json:"kept_error"`
	KeptSlow  uint64 `json:"kept_slow"`
	// Discarded counts finished traces the sampler dropped.
	Discarded uint64 `json:"traces_discarded"`
	// LateSpans counts children that finished after their root ended.
	LateSpans uint64 `json:"late_spans"`
	// SlowThresholdNS is the current tail-retention latency threshold
	// (math.MaxInt64 until enough observations accumulate).
	SlowThresholdNS int64 `json:"slow_threshold_ns"`
}

// Stats snapshots the tracer's counters.
func (t *Tracer) Stats() Stats {
	return Stats{
		Started:         t.started.Load(),
		Roots:           t.roots.Load(),
		Kept:            t.kept.Load(),
		KeptHead:        t.keptHead.Load(),
		KeptError:       t.keptError.Load(),
		KeptSlow:        t.keptSlow.Load(),
		Discarded:       t.discarded.Load(),
		LateSpans:       t.lateSpans.Load(),
		SlowThresholdNS: int64(t.quant.Threshold()),
	}
}

// Snapshot returns the retained traces, newest first, exported to their
// JSON shape (the ring itself stores compact records). Every trace is
// stamped with the tracer's configured process identity.
func (t *Tracer) Snapshot() []*TraceData {
	out := t.ring.snapshot()
	if t.process != "" {
		for _, td := range out {
			td.Process = t.process
		}
	}
	return out
}

// Lookup returns the retained trace with the given id, or nil if the ring
// no longer (or never) holds one. If the ring retained the id more than
// once, the most recently finished copy wins.
func (t *Tracer) Lookup(id TraceID) *TraceData {
	td := t.ring.lookup(id)
	if td != nil && t.process != "" {
		td.Process = t.process
	}
	return td
}

// ParseTraceID parses the 32-lowercase-hex form produced by
// TraceID.String (the W3C canonical alphabet; uppercase is rejected, as
// nothing in this system emits it). ok is false for anything else,
// including the forbidden all-zero id.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 || !isHexLower(s) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	if id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}
