package trace

import (
	"context"
	"log/slog"
)

// slogHandler decorates another slog.Handler, injecting trace_id and
// span_id attributes from the record's context so log lines correlate with
// retained traces at /debug/traces.
type slogHandler struct {
	inner slog.Handler
}

// NewSlogHandler wraps inner so every record logged with a context carrying
// an active span gains trace_id and span_id attributes. Records logged
// without a span pass through unchanged.
func NewSlogHandler(inner slog.Handler) slog.Handler {
	return &slogHandler{inner: inner}
}

func (h *slogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *slogHandler) Handle(ctx context.Context, rec slog.Record) error {
	if traceID, spanID := FromContext(ctx).IDs(); traceID != "" {
		rec.AddAttrs(slog.String("trace_id", traceID), slog.String("span_id", spanID))
	}
	return h.inner.Handle(ctx, rec)
}

func (h *slogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &slogHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *slogHandler) WithGroup(name string) slog.Handler {
	return &slogHandler{inner: h.inner.WithGroup(name)}
}
