package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is one finished span as exported at /debug/traces.
type SpanData struct {
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_span_id,omitempty"`
	Name     string         `json:"name"`
	Start    int64          `json:"start_unix_ns"`
	Duration time.Duration  `json:"duration_ns"`
	Status   string         `json:"status"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// TraceData is one retained trace: the root span, its finished children,
// and why the sampler kept it.
type TraceData struct {
	TraceID string `json:"trace_id"`
	// Process is the static identity of the process that recorded the
	// trace (Config.Process), so a fleet collector can attribute the
	// spans after stitching several processes' exports together. Empty
	// when the tracer was built without one.
	Process string `json:"process,omitempty"`
	// Retained is the retention reason: "head" (deterministic head
	// sample), "error" (root or a child errored) or "slow" (root latency
	// reached the rolling tail threshold).
	Retained string     `json:"retained"`
	Root     SpanData   `json:"root"`
	Spans    []SpanData `json:"spans,omitempty"`
	// DroppedSpans counts children beyond the per-trace cap.
	DroppedSpans int `json:"dropped_spans,omitempty"`

	endNano int64 // root end time, for newest-first ordering
}

// Err reports whether the trace contains an errored span.
func (td *TraceData) Err() bool {
	if td.Root.Status == "error" {
		return true
	}
	for _, s := range td.Spans {
		if s.Status == "error" {
			return true
		}
	}
	return false
}

// spanRecord is the compact in-ring form of one finished span: fixed-size
// IDs instead of hex strings, an (offset, count) window into the owning
// trace's attribute arena instead of a map. Export to SpanData happens at
// Snapshot time, so the span hot path never builds JSON-shaped state.
type spanRecord struct {
	spanID   SpanID
	parentID SpanID
	name     string
	start    int64 // UnixNano
	dur      time.Duration
	status   Status
	attrOff  int
	attrN    int
}

// export renders the record for /debug/traces. child forces ParentID out
// even for spans whose parent id would also be emitted for a root
// continuing a remote trace.
func (r spanRecord) export(arena []Attr, child bool) SpanData {
	sd := SpanData{
		SpanID:   r.spanID.String(),
		Name:     r.name,
		Start:    r.start,
		Duration: r.dur,
		Status:   r.status.String(),
		Attrs:    exportAttrs(arena[r.attrOff : r.attrOff+r.attrN]),
	}
	if child || !r.parentID.IsZero() {
		sd.ParentID = r.parentID.String()
	}
	return sd
}

// retained is one kept trace as stored in a ring slot: the root record,
// the children records and the attribute arena, all private copies made at
// retention time (copy-on-retain) so the pooled accumulator they came from
// could recycle immediately. The slices are owned by the slot and keep
// their capacity when the ring wraps and the slot is overwritten, which is
// what makes steady-state retention allocation-free.
type retained struct {
	traceID  TraceID
	why      string
	root     spanRecord
	children []spanRecord
	arena    []Attr
	dropped  int
	endNano  int64
}

// export renders the retained trace to its JSON shape.
func (rt *retained) export() *TraceData {
	td := &TraceData{
		TraceID:      rt.traceID.String(),
		Retained:     rt.why,
		Root:         rt.root.export(rt.arena, false),
		DroppedSpans: rt.dropped,
		endNano:      rt.endNano,
	}
	if len(rt.children) > 0 {
		spans := make([]SpanData, len(rt.children))
		for i := range rt.children {
			spans[i] = rt.children[i].export(rt.arena, true)
		}
		td.Spans = spans
	}
	return td
}

// slot is one reusable ring cell: a retained trace plus the mutex guarding
// its overwrite. full distinguishes a never-written slot from a real trace.
type slot struct {
	mu   sync.Mutex
	full bool
	data retained
}

// ring is a fixed-capacity overwrite buffer of retained traces. push claims
// a slot with one atomic add, then copies the trace into storage the SLOT
// owns under the slot's mutex — successive pushes land on different slots,
// so writers only contend after a full wrap, and reusing each slot's slice
// capacity keeps steady-state retention allocation-free (the earlier
// allocate-per-trace design spent more on GC assists than on the copies).
// snapshot takes each slot mutex briefly; it is the rare debug-endpoint
// path and pays for export, never the span hot path.
//
// Lock order: span.mu → root.mu → slot.mu (push is called from endRoot
// with the first two held); snapshot takes only slot.mu.
type ring struct {
	mask  uint64
	next  atomic.Uint64
	slots []slot
}

// newRing rounds capacity up to a power of two so slot selection is a mask.
func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

// push copies one kept trace into the next slot. rootAttrs (the root
// span's own attributes) are appended after the children's arena and the
// root record's attribute window is pointed at them, so callers hand over
// borrowed slices and nothing outlives the call.
//
//sociolint:hotpath
func (r *ring) push(traceID TraceID, why string, root spanRecord, children []spanRecord, arena, rootAttrs []Attr, dropped int, endNano int64) {
	i := r.next.Add(1) - 1
	sl := &r.slots[i&r.mask]
	sl.mu.Lock()
	d := &sl.data
	d.traceID = traceID
	d.why = why
	d.children = append(d.children[:0], children...)
	a := append(d.arena[:0], arena...)
	root.attrOff = len(a)
	root.attrN = len(rootAttrs)
	d.arena = append(a, rootAttrs...)
	d.root = root
	d.dropped = dropped
	d.endNano = endNano
	sl.full = true
	sl.mu.Unlock()
}

// lookup exports the retained trace with the given id, nil when no slot
// holds it. Exporting under the slot mutex is deliberate: the slot may be
// overwritten the moment the mutex drops, and this is the rare
// debug-endpoint path, not the span hot path. If several slots hold the
// id (a wrapped ring re-retaining it), the most recently finished wins.
func (r *ring) lookup(id TraceID) *TraceData {
	var best *TraceData
	for i := range r.slots {
		sl := &r.slots[i]
		sl.mu.Lock()
		if sl.full && sl.data.traceID == id && (best == nil || sl.data.endNano > best.endNano) {
			best = sl.data.export()
		}
		sl.mu.Unlock()
	}
	return best
}

// snapshot exports the retained traces newest-first.
func (r *ring) snapshot() []*TraceData {
	out := make([]*TraceData, 0, len(r.slots))
	for i := range r.slots {
		sl := &r.slots[i]
		sl.mu.Lock()
		if sl.full {
			out = append(out, sl.data.export())
		}
		sl.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].endNano > out[j].endNano })
	return out
}
