package trace

import (
	"sort"
	"sync/atomic"
	"time"
)

// SpanData is one finished span as exported at /debug/traces.
type SpanData struct {
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_span_id,omitempty"`
	Name     string         `json:"name"`
	Start    int64          `json:"start_unix_ns"`
	Duration time.Duration  `json:"duration_ns"`
	Status   string         `json:"status"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// TraceData is one retained trace: the root span, its finished children,
// and why the sampler kept it.
type TraceData struct {
	TraceID string `json:"trace_id"`
	// Retained is the retention reason: "head" (deterministic head
	// sample), "error" (root or a child errored) or "slow" (root latency
	// reached the rolling tail threshold).
	Retained string     `json:"retained"`
	Root     SpanData   `json:"root"`
	Spans    []SpanData `json:"spans,omitempty"`
	// DroppedSpans counts children beyond the per-trace cap.
	DroppedSpans int `json:"dropped_spans,omitempty"`

	endNano int64 // root end time, for newest-first ordering
}

// Err reports whether the trace contains an errored span.
func (td *TraceData) Err() bool {
	if td.Root.Status == "error" {
		return true
	}
	for _, s := range td.Spans {
		if s.Status == "error" {
			return true
		}
	}
	return false
}

// ring is a fixed-capacity lock-free overwrite buffer of retained traces.
// push claims a slot with one atomic add and publishes the trace with one
// atomic pointer store; concurrent pushes to a wrapped slot resolve to
// last-writer-wins, which for a newest-wins buffer is the right loss.
// snapshot reads every slot once with atomic loads — no locks, no
// coordination with writers.
type ring struct {
	mask  uint64
	next  atomic.Uint64
	slots []atomic.Pointer[TraceData]
}

// newRing rounds capacity up to a power of two so slot selection is a mask.
func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ring{mask: uint64(n - 1), slots: make([]atomic.Pointer[TraceData], n)}
}

func (r *ring) push(td *TraceData) {
	i := r.next.Add(1) - 1
	r.slots[i&r.mask].Store(td)
}

// snapshot returns the retained traces newest-first.
func (r *ring) snapshot() []*TraceData {
	out := make([]*TraceData, 0, len(r.slots))
	for i := range r.slots {
		if td := r.slots[i].Load(); td != nil {
			out = append(out, td)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].endNano > out[j].endNano })
	return out
}
