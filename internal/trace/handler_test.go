package trace

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func testTracerWithTraffic(t *testing.T) *Tracer {
	t.Helper()
	tr := New(Config{Seed: 37, Capacity: 64, SlowQuantile: 0.9})
	for i := 0; i < 100; i++ {
		_, sp := tr.StartRoot(context.Background(), "fast")
		sp.End()
	}
	_, errSp := tr.StartRoot(context.Background(), "failing")
	errSp.SetStatus(StatusError)
	errSp.End()
	_, slow := tr.StartRoot(context.Background(), "slow")
	time.Sleep(15 * time.Millisecond)
	slow.End()
	return tr
}

func getTraces(t *testing.T, h http.Handler, url string) tracesResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var resp tracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp
}

func TestHandlerFilters(t *testing.T) {
	h := Handler(testTracerWithTraffic(t))

	all := getTraces(t, h, "/debug/traces")
	if len(all.Traces) == 0 {
		t.Fatal("no traces")
	}
	if all.Stats.Roots != 102 {
		t.Errorf("stats roots = %d", all.Stats.Roots)
	}

	errs := getTraces(t, h, "/debug/traces?status=error")
	if len(errs.Traces) != 1 || errs.Traces[0].Root.Name != "failing" {
		t.Errorf("status=error returned %+v", errs.Traces)
	}

	slow := getTraces(t, h, "/debug/traces?status=slow")
	foundSlow := false
	for _, td := range slow.Traces {
		if td.Retained != "slow" {
			t.Errorf("status=slow leaked retention %q", td.Retained)
		}
		if td.Root.Name == "slow" {
			foundSlow = true
		}
	}
	if !foundSlow {
		t.Errorf("status=slow missing the slow outlier: %d traces", len(slow.Traces))
	}

	minms := getTraces(t, h, "/debug/traces?min_ms=10")
	for _, td := range minms.Traces {
		if td.Root.Duration < 10*time.Millisecond {
			t.Errorf("min_ms filter leaked %v", td.Root.Duration)
		}
	}
	if len(minms.Traces) == 0 {
		t.Error("min_ms=10 excluded the slow trace")
	}

	lim := getTraces(t, h, "/debug/traces?limit=3")
	if len(lim.Traces) != 3 {
		t.Errorf("limit=3 returned %d", len(lim.Traces))
	}
}

func TestHandlerBadInputs(t *testing.T) {
	h := Handler(New(Config{Seed: 41}))
	for _, url := range []string{
		"/debug/traces?min_ms=-1",
		"/debug/traces?min_ms=abc",
		"/debug/traces?status=weird",
		"/debug/traces?limit=0",
		"/debug/traces?limit=x",
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", url, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", rec.Code)
	}
}

func TestHandlerEmptyTracer(t *testing.T) {
	resp := getTraces(t, Handler(New(Config{Seed: 43})), "/debug/traces")
	if resp.Traces == nil {
		t.Error("traces should encode as [] not null")
	}
	if len(resp.Traces) != 0 {
		t.Errorf("empty tracer returned %d traces", len(resp.Traces))
	}
}
