package trace

import (
	"context"
	"sync"
	"testing"
)

// TestRingConcurrentPushSnapshot hammers a tiny ring with concurrent
// writers (forcing constant wraparound) and concurrent snapshotters. Run
// under -race this is the ring's memory-model proof; without -race it
// still checks snapshots never observe a torn or nil-holed state.
func TestRingConcurrentPushSnapshot(t *testing.T) {
	r := newRing(8)
	var wg sync.WaitGroup
	const writers, perWriter, readers = 8, 500, 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.push(TraceID{1}, "head", spanRecord{}, nil, nil, nil, 0, int64(w*perWriter+i))
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				snap := r.snapshot()
				for j, td := range snap {
					if td == nil {
						t.Errorf("nil trace in snapshot")
						return
					}
					if j > 0 && snap[j-1].endNano < td.endNano {
						t.Errorf("snapshot not newest-first")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := len(r.snapshot()); got != 8 {
		t.Errorf("full ring snapshot has %d entries, want 8", got)
	}
}

// TestTracerConcurrentSpans exercises the full span lifecycle — concurrent
// child start/finish on shared roots, root finish racing child finish, and
// snapshot/stats readers — under the race detector.
func TestTracerConcurrentSpans(t *testing.T) {
	tr := New(Config{Seed: 31, Capacity: 16, MaxChildren: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ctx, root := tr.StartRoot(context.Background(), "op")
				var cwg sync.WaitGroup
				for c := 0; c < 4; c++ {
					cwg.Add(1)
					go func() {
						defer cwg.Done()
						_, sp := Start(ctx, "child")
						sp.Set(testKeyN.Int(1))
						sp.End()
					}()
				}
				if i%2 == 0 {
					cwg.Wait() // children beat the root
				}
				root.SetStatus(StatusOK)
				root.End()
				cwg.Wait() // or race it
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				tr.Snapshot()
				tr.Stats()
			}
		}()
	}
	wg.Wait()
	st := tr.Stats()
	if st.Roots != 800 {
		t.Errorf("roots = %d, want 800", st.Roots)
	}
	if st.Kept+st.Discarded != st.Roots {
		t.Errorf("kept %d + discarded %d != roots %d", st.Kept, st.Discarded, st.Roots)
	}
}

func TestQuantileConcurrent(t *testing.T) {
	q := newQuantile(0.99)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				q.Observe(1 << (i % 20))
				if i%100 == 0 {
					q.Threshold()
				}
			}
		}()
	}
	wg.Wait()
}
