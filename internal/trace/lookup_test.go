package trace

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseTraceID(t *testing.T) {
	id, ok := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	if !ok || id.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("round trip failed: %v %v", id, ok)
	}
	for _, bad := range []string{
		"",
		"4bf92f3577b34da6a3ce929d0e0e473",    // short
		"4bf92f3577b34da6a3ce929d0e0e47366",  // long
		"4BF92F3577B34DA6A3CE929D0E0E4736",   // uppercase
		"4bf92f3577b34da6a3ce929d0e0e473g",   // non-hex
		"00000000000000000000000000000000",   // forbidden zero id
		"../etc/passwd/0e0e47364bf92f3577b3", // path junk
	} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestLookupFindsRetainedTrace(t *testing.T) {
	tr := New(Config{Seed: 51, Capacity: 8, Process: "shard_0"})
	ctx, root := tr.StartRoot(context.Background(), "recommend")
	_, child := StartChild(ctx, "rank")
	child.End()
	wantID := root.TraceID()
	root.End()

	td := tr.Lookup(wantID)
	if td == nil {
		t.Fatal("retained trace not found by id")
	}
	if td.TraceID != wantID.String() {
		t.Errorf("lookup returned trace %s, want %s", td.TraceID, wantID)
	}
	if td.Process != "shard_0" {
		t.Errorf("process identity %q, want shard_0", td.Process)
	}
	if len(td.Spans) != 1 || td.Spans[0].Name != "rank" {
		t.Errorf("child spans %+v", td.Spans)
	}
	if got := tr.Lookup(tr.newTraceID()); got != nil {
		t.Errorf("lookup of unretained id returned %+v", got)
	}
}

func TestSnapshotStampsProcess(t *testing.T) {
	tr := New(Config{Seed: 53, Process: "recrouter"})
	_, sp := tr.StartRoot(context.Background(), "route")
	sp.End()
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Process != "recrouter" {
		t.Fatalf("snapshot = %+v", snap)
	}
	// A dynamic (invalid) identifier must not ride into the export.
	bad := New(Config{Seed: 55, Process: "Host-1; rm -rf"})
	_, sp = bad.StartRoot(context.Background(), "route")
	sp.End()
	if got := bad.Snapshot()[0].Process; got != "invalid_process" {
		t.Errorf("invalid process exported as %q", got)
	}
}

func TestLookupHandler(t *testing.T) {
	tr := New(Config{Seed: 57, Process: "shard_1"})
	_, sp := tr.StartRoot(context.Background(), "recommend")
	id := sp.TraceID().String()
	sp.End()

	mux := http.NewServeMux()
	mux.Handle("GET /debug/traces/{trace_id}", LookupHandler(tr))

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET by id: %d %s", rec.Code, rec.Body)
	}
	var td TraceData
	if err := json.Unmarshal(rec.Body.Bytes(), &td); err != nil {
		t.Fatal(err)
	}
	if td.TraceID != id || td.Process != "shard_1" || td.Root.Name != "recommend" {
		t.Errorf("lookup body = %+v", td)
	}

	rec = httptest.NewRecorder()
	missing := "4bf92f3577b34da6a3ce929d0e0e4736"
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/"+missing, nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unretained id = %d, want 404", rec.Code)
	}
	if strings.Contains(rec.Body.String(), missing) {
		t.Errorf("404 body echoed the requested id: %s", rec.Body)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/NOT-HEX", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed id = %d, want 400", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "NOT-HEX") {
		t.Errorf("400 body echoed the path value: %s", rec.Body)
	}
}
