package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"
)

func TestSlogHandlerInjectsIDs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewSlogHandler(slog.NewJSONHandler(&buf, nil)))
	tr := New(Config{Seed: 47, Capacity: 8})
	ctx, sp := tr.StartRoot(context.Background(), "op")

	logger.InfoContext(ctx, "inside span", "k", "v")
	// Capture before End: a finished handle is inert (its pooled object
	// recycles), so IDs must be read while the span is live.
	wantTrace, wantSpan := sp.IDs()
	sp.End()

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rec["trace_id"] != wantTrace {
		t.Errorf("trace_id = %v, want %s", rec["trace_id"], wantTrace)
	}
	if rec["span_id"] != wantSpan {
		t.Errorf("span_id = %v, want %s", rec["span_id"], wantSpan)
	}
	if rec["k"] != "v" {
		t.Errorf("user attr lost: %v", rec)
	}
}

func TestSlogHandlerNoSpanPassthrough(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewSlogHandler(slog.NewJSONHandler(&buf, nil)))
	logger.Info("no span")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if _, ok := rec["trace_id"]; ok {
		t.Error("trace_id injected without a span")
	}
}

func TestSlogHandlerWithAttrsAndGroup(t *testing.T) {
	var buf bytes.Buffer
	base := slog.New(NewSlogHandler(slog.NewJSONHandler(&buf, nil)))
	logger := base.With("component", "server").WithGroup("req")
	tr := New(Config{Seed: 53, Capacity: 8})
	ctx, sp := tr.StartRoot(context.Background(), "op")
	logger.InfoContext(ctx, "msg", "n", 1)
	sp.End()
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rec["component"] != "server" {
		t.Errorf("WithAttrs lost: %v", rec)
	}
	group, _ := rec["req"].(map[string]any)
	if group == nil || group["n"] != float64(1) {
		t.Errorf("WithGroup lost: %v", rec)
	}
	// IDs are added at Handle time, inside the open group — the group keys
	// them under req.*, which is fine for correlation as long as present.
	if _, ok := group["trace_id"]; !ok {
		if _, top := rec["trace_id"]; !top {
			t.Errorf("trace_id missing entirely: %v", rec)
		}
	}
}
