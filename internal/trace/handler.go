package trace

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// tracesResponse is the JSON document served at GET /debug/traces.
type tracesResponse struct {
	Traces []*TraceData `json:"traces"`
	Stats  Stats        `json:"stats"`
}

// Handler serves retained traces as JSON, newest first.
//
// Query parameters:
//
//	min_ms=N   only traces whose root lasted at least N milliseconds
//	status=S   all (default) | error | slow | head (retention reason)
//	limit=N    at most N traces (default 100)
//
// Everything in the response is post-processing of data already validated
// by the closed-world attribute model, so the endpoint upholds the
// no-sensitive-labels invariant by construction.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		var minDur time.Duration
		if v := q.Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil || ms < 0 {
				http.Error(w, "min_ms must be a non-negative number", http.StatusBadRequest)
				return
			}
			minDur = time.Duration(ms * float64(time.Millisecond))
		}
		status := q.Get("status")
		switch status {
		case "", "all", "error", "slow", "head":
		default:
			http.Error(w, "status must be one of all, error, slow, head", http.StatusBadRequest)
			return
		}
		limit := 100
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				http.Error(w, "limit must be a positive integer", http.StatusBadRequest)
				return
			}
			limit = n
		}

		resp := tracesResponse{Traces: []*TraceData{}, Stats: t.Stats()}
		for _, td := range t.Snapshot() {
			if td.Root.Duration < minDur {
				continue
			}
			switch status {
			case "error":
				if !td.Err() {
					continue
				}
			case "slow", "head":
				if td.Retained != status {
					continue
				}
			}
			resp.Traces = append(resp.Traces, td)
			if len(resp.Traces) >= limit {
				break
			}
		}

		writeJSON(w, resp)
	})
}

// LookupHandler serves one retained trace by exact id, for mounting at a
// Go 1.22 pattern route like "GET /debug/traces/{trace_id}". A fleet
// collector stitching a cross-process trace fetches the id from each
// process directly instead of filtering every ring dump. The path value
// is validated as 32 lowercase hex digits before any lookup and is never
// echoed back — a 404 body carries no request data.
func LookupHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, ok := ParseTraceID(r.PathValue("trace_id"))
		if !ok {
			http.Error(w, "trace_id must be 32 lowercase hex digits", http.StatusBadRequest)
			return
		}
		td := t.Lookup(id)
		if td == nil {
			http.Error(w, "trace not retained", http.StatusNotFound)
			return
		}
		writeJSON(w, td)
	})
}

// writeJSON encodes v fully before writing, so an encoding failure can
// still become a clean 500 instead of a torn body.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, "encoding error", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}
