package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

var (
	testKeyN      = NewKey("n")
	testKeyCached = NewKey("cached")
	testKeyStage  = NewKey("stage")
)

func TestRootWithChildrenRetained(t *testing.T) {
	tr := New(Config{Seed: 1, Capacity: 8})
	ctx, root := tr.StartRoot(context.Background(), "recommend")
	root.Set(testKeyN.Int(10))

	_, c1 := Start(ctx, "similarity_batch")
	c1.End()
	cctx, c2 := Start(ctx, "cluster_average")
	c2.Set(testKeyCached.Bool(true))
	_, g := Start(cctx, "top_n")
	g.End()
	c2.End()
	root.End()

	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	td := traces[0]
	if td.Retained != "head" {
		t.Errorf("retained = %q, want head (default rate 1.0)", td.Retained)
	}
	if td.Root.Name != "recommend" {
		t.Errorf("root name = %q", td.Root.Name)
	}
	if len(td.Spans) != 3 {
		t.Fatalf("got %d child spans, want 3", len(td.Spans))
	}
	if td.Root.Attrs["n"] != int64(10) {
		t.Errorf("root attrs = %v, want n=10", td.Root.Attrs)
	}
	// Child parentage: c1 and c2 parent to root, g parents to c2.
	byName := map[string]SpanData{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	if byName["similarity_batch"].ParentID != td.Root.SpanID {
		t.Errorf("similarity_batch parent = %q, want root %q", byName["similarity_batch"].ParentID, td.Root.SpanID)
	}
	if byName["top_n"].ParentID != byName["cluster_average"].SpanID {
		t.Errorf("top_n parent = %q, want cluster_average %q", byName["top_n"].ParentID, byName["cluster_average"].SpanID)
	}
	if byName["cluster_average"].Attrs["cached"] != true {
		t.Errorf("cluster_average attrs = %v", byName["cluster_average"].Attrs)
	}
}

func TestHeadSamplingDeterministic(t *testing.T) {
	// The head decision is a pure function of the trace ID: two processes
	// with the same rate agree on every trace, so a distributed trace is
	// kept or dropped consistently at every hop.
	a := New(Config{Seed: 7, HeadRate: 0.25})
	b := New(Config{Seed: 7, HeadRate: 0.25})
	c := New(Config{Seed: 99, HeadRate: 0.25})
	kept := 0
	for i := 0; i < 4000; i++ {
		id := a.newTraceID()
		if got := b.newTraceID(); got != id {
			t.Fatalf("same seed produced different IDs at %d", i)
		}
		if a.headSampled(id) != c.headSampled(id) {
			t.Fatalf("head decision depends on tracer state, not just the ID")
		}
		if a.headSampled(id) {
			kept++
		}
	}
	// 4000 draws at p=0.25: expect ~1000, allow wide slack.
	if kept < 700 || kept > 1300 {
		t.Errorf("head rate 0.25 kept %d/4000", kept)
	}
}

func TestErrorRetainedAtZeroHeadRate(t *testing.T) {
	tr := New(Config{Seed: 3, HeadRateZero: true, Capacity: 8})
	// A plain trace is discarded...
	_, ok := tr.StartRoot(context.Background(), "fine")
	ok.End()
	if n := len(tr.Snapshot()); n != 0 {
		t.Fatalf("tail-only tracer kept %d ok traces", n)
	}
	// ...an errored child forces retention of the whole trace.
	ctx, root := tr.StartRoot(context.Background(), "failing")
	_, child := Start(ctx, "similarity_batch")
	child.SetStatus(StatusError)
	child.End()
	root.End()
	traces := tr.Snapshot()
	if len(traces) != 1 || traces[0].Retained != "error" {
		t.Fatalf("errored trace not retained: %+v", traces)
	}
	if !traces[0].Err() {
		t.Error("Err() = false for errored trace")
	}
}

func TestSlowTailRetainedAtZeroHeadRate(t *testing.T) {
	tr := New(Config{Seed: 5, HeadRateZero: true, SlowQuantile: 0.9, Capacity: 64})
	// Warm the quantile with fast spans.
	for i := 0; i < 200; i++ {
		_, sp := tr.StartRoot(context.Background(), "fast")
		sp.End()
	}
	// One slow outlier must be kept even though the head rate is zero.
	// (Scheduler jitter may legitimately retain the odd "fast" span too, so
	// assert presence of the outlier, not emptiness.)
	_, slow := tr.StartRoot(context.Background(), "slow")
	time.Sleep(20 * time.Millisecond)
	slow.End()
	found := false
	for _, td := range tr.Snapshot() {
		if td.Root.Name == "slow" {
			found = td.Retained == "slow"
		}
	}
	if !found {
		t.Fatalf("slow outlier not retained as slow: %+v", tr.Snapshot())
	}
}

func TestClosedWorldAttributes(t *testing.T) {
	tr := New(Config{Seed: 9, Capacity: 8})
	_, sp := tr.StartRoot(context.Background(), "op")

	// A zero (undeclared) key is dropped.
	var undeclared Key
	sp.Set(undeclared.Int(42))
	// A non-identifier string value is scrubbed.
	sp.Set(testKeyStage.Ident("user:alice→item:b"))
	sp.End()

	td := tr.Snapshot()[0]
	if len(td.Root.Attrs) != 1 {
		t.Fatalf("attrs = %v, want only the declared key", td.Root.Attrs)
	}
	if td.Root.Attrs["stage"] != "invalid_value" {
		t.Errorf("dynamic string survived: %v", td.Root.Attrs)
	}
	for k := range td.Root.Attrs {
		if !KeyDeclared(k) {
			t.Errorf("exported attr key %q was never declared", k)
		}
	}
}

func TestNewKeyPanicsOnDynamicName(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("NewKey accepted a non-identifier name")
		}
		// A dynamic key name is suspected request data; the panic message
		// (which lands in crash logs) must not reproduce it.
		if msg, ok := p.(string); ok && strings.Contains(msg, "User ID") {
			t.Errorf("NewKey panic echoes the rejected name: %q", msg)
		}
	}()
	NewKey("User ID")
}

func TestInvalidSpanNameScrubbed(t *testing.T) {
	tr := New(Config{Seed: 11, Capacity: 8})
	_, sp := tr.StartRoot(context.Background(), "GET /recommend?user=alice")
	sp.End()
	if got := tr.Snapshot()[0].Root.Name; got != "invalid_span" {
		t.Errorf("span name = %q, want invalid_span", got)
	}
}

func TestEndIdempotentAndLateChildren(t *testing.T) {
	tr := New(Config{Seed: 13, Capacity: 8})
	ctx, root := tr.StartRoot(context.Background(), "op")
	_, late := Start(ctx, "straggler")
	if d := root.End(); d < 0 {
		t.Fatal("negative duration")
	}
	if d := root.End(); d != 0 {
		t.Errorf("second End returned %v, want 0", d)
	}
	late.End() // after root ended
	st := tr.Stats()
	if st.LateSpans != 1 {
		t.Errorf("late spans = %d, want 1", st.LateSpans)
	}
	if len(tr.Snapshot()) != 1 {
		t.Errorf("trace not retained")
	}
	if got := tr.Snapshot()[0].Spans; len(got) != 0 {
		t.Errorf("late child folded in: %v", got)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var sp Span
	sp.Set(testKeyN.Int(1))
	sp.SetStatus(StatusError)
	if sp.End() != 0 {
		t.Error("zero End != 0")
	}
	if id, _ := sp.IDs(); id != "" {
		t.Error("zero IDs non-empty")
	}
	if got := FromContext(context.Background()); got.sp != nil {
		t.Error("empty ctx carries a span")
	}
}

func TestStaleHandleInertAfterRecycle(t *testing.T) {
	// A handle kept after End must stay a no-op even when the pooled span
	// object underneath it has been recycled into a different span: the
	// generation check is what makes sync.Pool reuse safe.
	tr := New(Config{Seed: 31, Capacity: 8})
	ctx, root := tr.StartRoot(context.Background(), "op")
	stale := StartLeaf(ctx, "first")
	stale.End()
	// Very likely reuses the object stale's handle points to.
	fresh := StartLeaf(ctx, "second")
	stale.SetStatus(StatusError) // must not mark fresh (or anything) errored
	stale.Set(testKeyN.Int(99))  // must not attach to fresh
	if d := stale.End(); d != 0 {
		t.Errorf("stale End = %v, want 0", d)
	}
	if id, _ := stale.IDs(); id != "" {
		t.Errorf("stale IDs = %q, want empty", id)
	}
	fresh.End()
	root.End()
	td := tr.Snapshot()[0]
	if td.Retained != "head" {
		t.Fatalf("retained = %q (stale SetStatus leaked an error)", td.Retained)
	}
	if len(td.Spans) != 2 {
		t.Fatalf("children = %d, want 2", len(td.Spans))
	}
	for _, s := range td.Spans {
		if s.Status != "ok" {
			t.Errorf("child %s status = %q, want ok", s.Name, s.Status)
		}
		if len(s.Attrs) != 0 {
			t.Errorf("child %s attrs = %v, want none", s.Name, s.Attrs)
		}
	}
}

func TestStartLeafFoldsAsChild(t *testing.T) {
	tr := New(Config{Seed: 37, Capacity: 8})
	ctx, root := tr.StartRoot(context.Background(), "op")
	leaf := StartLeaf(ctx, "leaf_phase")
	leaf.Set(testKeyN.Int(7))
	leaf.End()
	root.End()
	td := tr.Snapshot()[0]
	if len(td.Spans) != 1 || td.Spans[0].Name != "leaf_phase" {
		t.Fatalf("spans = %+v, want one leaf_phase child", td.Spans)
	}
	if td.Spans[0].ParentID != td.Root.SpanID {
		t.Errorf("leaf parent = %q, want root %q", td.Spans[0].ParentID, td.Root.SpanID)
	}
	if td.Spans[0].Attrs["n"] != int64(7) {
		t.Errorf("leaf attrs = %v", td.Spans[0].Attrs)
	}
	// Without an active span in ctx, StartLeaf is inert.
	inert := StartLeaf(context.Background(), "leaf_phase")
	if inert.sp != nil {
		t.Error("StartLeaf minted a span from an untraced ctx")
	}
	inert.End()
}

func TestMaxChildrenCap(t *testing.T) {
	tr := New(Config{Seed: 17, MaxChildren: 4, Capacity: 8})
	ctx, root := tr.StartRoot(context.Background(), "op")
	for i := 0; i < 10; i++ {
		_, c := Start(ctx, "child")
		c.End()
	}
	root.End()
	td := tr.Snapshot()[0]
	if len(td.Spans) != 4 || td.DroppedSpans != 6 {
		t.Errorf("children = %d dropped = %d, want 4/6", len(td.Spans), td.DroppedSpans)
	}
}

func TestStartRemoteInheritsTrace(t *testing.T) {
	tr := New(Config{Seed: 19, Capacity: 8})
	tp, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	_, sp := tr.StartRemote(context.Background(), "op", tp)
	if sp.TraceID() != tp.TraceID {
		t.Errorf("trace id not inherited")
	}
	sp.End()
	td := tr.Snapshot()[0]
	if td.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %q", td.TraceID)
	}
	if td.Root.ParentID != "00f067aa0ba902b7" {
		t.Errorf("remote parent = %q", td.Root.ParentID)
	}
}

func TestStatsAndThreshold(t *testing.T) {
	tr := New(Config{Seed: 23, Capacity: 8})
	st := tr.Stats()
	if st.SlowThresholdNS <= 0 {
		t.Errorf("cold threshold = %d, want max-ish", st.SlowThresholdNS)
	}
	ctx, root := tr.StartRoot(context.Background(), "op")
	_, c := Start(ctx, "child")
	c.End()
	root.End()
	st = tr.Stats()
	if st.Started != 2 || st.Roots != 1 || st.Kept != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQuantileEstimator(t *testing.T) {
	q := newQuantile(0.99)
	if q.Threshold() != time.Duration(1<<63-1) {
		t.Fatal("cold quantile should deactivate tail sampling")
	}
	for i := 0; i < 1000; i++ {
		q.Observe(time.Millisecond)
	}
	th := q.Threshold()
	if th < 512*time.Microsecond || th > 2*time.Millisecond {
		t.Errorf("threshold %v outside one log2 bucket of 1ms", th)
	}
	// Decay follows a workload shift downward.
	for i := 0; i < 20000; i++ {
		q.Observe(10 * time.Microsecond)
	}
	if th = q.Threshold(); th > 100*time.Microsecond {
		t.Errorf("threshold %v did not decay toward new workload", th)
	}
}

func TestValidNameRule(t *testing.T) {
	for _, good := range []string{"a", "top_n", "http_recommend", "x9"} {
		if !validName(good) {
			t.Errorf("validName(%q) = false", good)
		}
	}
	for _, bad := range []string{"", "_x", "9x", "Top", "a-b", "a b", "héllo"} {
		if validName(bad) {
			t.Errorf("validName(%q) = true", bad)
		}
	}
}

func TestIDStrings(t *testing.T) {
	tr := New(Config{Seed: 29, Capacity: 8})
	_, sp := tr.StartRoot(context.Background(), "op")
	traceID, spanID := sp.IDs()
	sp.End()
	if len(traceID) != 32 || strings.ToLower(traceID) != traceID {
		t.Errorf("trace id %q not 32 lowercase hex", traceID)
	}
	if len(spanID) != 16 {
		t.Errorf("span id %q not 16 hex", spanID)
	}
}
