package trace

import (
	"sync"
)

// maxAttrsPerSpan bounds per-span attribute storage; later Sets are
// dropped. Spans describe operations, not payloads — a handful of counts
// and identifiers is the intended shape.
const maxAttrsPerSpan = 16

// keyRegistry is the closed world of declared attribute keys. Keys are
// declared at package init time by the subsystems that emit them; there is
// no way to attach an attribute under a name that was not spelled out as a
// static string up front.
var keyRegistry = struct {
	mu    sync.Mutex
	names map[string]bool
}{names: map[string]bool{}}

// Key names one declared span attribute. The zero Key is undeclared and
// attributes built from it are dropped; the only way to obtain a non-zero
// Key is NewKey, which is what makes the attribute key space closed-world.
type Key struct {
	name string
}

// NewKey declares an attribute key. The name must be a static identifier
// ([a-z][a-z0-9_]*); anything else panics, because key declaration happens
// at package init with compile-time-constant names and a dynamic name here
// would mean request data is about to become an attribute key. Redeclaring
// a name returns an equal Key (subsystems may share one).
func NewKey(name string) Key {
	if !validName(name) {
		// The offending name is deliberately not echoed: a dynamic name
		// here is suspected request data, and panic messages land in crash
		// logs. The stack trace identifies the offending declaration.
		panic("trace: invalid attribute key (keys are static identifiers declared up front, never request data)")
	}
	keyRegistry.mu.Lock()
	keyRegistry.names[name] = true
	keyRegistry.mu.Unlock()
	return Key{name: name}
}

// KeyDeclared reports whether name has been declared through NewKey
// (tests assert the closed world).
func KeyDeclared(name string) bool {
	keyRegistry.mu.Lock()
	defer keyRegistry.mu.Unlock()
	return keyRegistry.names[name]
}

// attrKind discriminates the three legal value shapes. There is no float
// kind on purpose: released scores and noisy utilities are floats, and the
// absence of a constructor is the strongest possible guarantee none ever
// becomes span state.
type attrKind uint8

const (
	kindInt attrKind = iota
	kindBool
	kindIdent
)

// Attr is one (declared key, validated value) pair awaiting Span.Set.
type Attr struct {
	key  Key
	kind attrKind
	num  int64
	str  string
}

// Int builds an integer attribute — public cardinalities and sizes (list
// length n, batch size, cluster count), never encoded payloads.
func (k Key) Int(v int64) Attr { return Attr{key: k, kind: kindInt, num: v} }

// Bool builds a boolean attribute.
func (k Key) Bool(v bool) Attr {
	var n int64
	if v {
		n = 1
	}
	return Attr{key: k, kind: kindBool, num: n}
}

// Ident builds a string attribute whose value must itself be a static
// identifier (an endpoint constant, a mechanism name, a stage name). Any
// other string — a user token, an item, a file path — is recorded as
// "invalid_value" instead, upholding the no-preference-edges invariant.
func (k Key) Ident(v string) Attr {
	if !validName(v) {
		v = "invalid_value"
	}
	return Attr{key: k, kind: kindIdent, str: v}
}

// exportAttrs renders attributes for the JSON export.
func exportAttrs(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	out := make(map[string]any, len(attrs))
	for _, a := range attrs {
		switch a.kind {
		case kindBool:
			out[a.key.name] = a.num == 1
		case kindIdent:
			out[a.key.name] = a.str
		default:
			out[a.key.name] = a.num
		}
	}
	return out
}
