package trace

import (
	"context"
	"testing"

	"socialrec/internal/raceflag"
)

// TestSpanAllocBudget pins the span hot path's exact allocation counts:
// the budget the pooled design buys, enforced so a refactor cannot quietly
// re-introduce per-span garbage. Skipped under -race (detector shadow
// state allocates).
func TestSpanAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are only exact without the race detector")
	}
	tr := New(Config{Seed: 1, HeadRateZero: true, Capacity: 8})
	ctx, root := tr.StartRoot(context.Background(), "alloc_root")
	defer root.End()

	// Warm the pool so the measurement sees steady state, not first-use.
	for i := 0; i < 8; i++ {
		sp := StartLeaf(ctx, "warm")
		sp.End()
	}

	if got := testing.AllocsPerRun(200, func() {
		sp := StartLeaf(ctx, "leaf_child")
		sp.Set(testKeyN.Int(1))
		sp.End()
	}); got != 0 {
		t.Errorf("StartLeaf+Set+End allocs/run = %v, want 0", got)
	}
}

// TestRootAllocBudget pins the per-request root-span cost: pool round-trip
// plus the unavoidable context plumbing. The trace-id hex and the telemetry
// handshake are lazy (resolver-based), so a root that nothing logs against
// pays only for carrying the span in the context.
func TestRootAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are only exact without the race detector")
	}
	tr := New(Config{Seed: 3, HeadRateZero: true, Capacity: 8})
	for i := 0; i < 8; i++ {
		_, sp := tr.StartRoot(context.Background(), "warm")
		sp.End()
	}
	const want = 1 // the spanCtx carrier (span rides inline, not boxed)
	if got := testing.AllocsPerRun(200, func() {
		_, sp := tr.StartRoot(context.Background(), "alloc_root")
		sp.End()
	}); got != want {
		t.Errorf("StartRoot+End allocs/run = %v, want %v", got, want)
	}
}
