// Package graph provides the two graph structures that comprise the input to
// a social recommendation system: the social graph G_s (Definition 1 of the
// paper) and the bipartite preference graph G_p (Definition 2).
//
// Both graphs use dense integer node identifiers in [0, n). Callers that work
// with external identifiers (user names, item SKUs) should maintain their own
// mapping; internal/dataset provides one for TSV-encoded data.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Social is an undirected social graph G_s = (U, E_s). Nodes are users,
// identified by dense integers in [0, NumUsers). The adjacency structure is
// stored in compressed sparse row (CSR) form: the neighbors of user u are
// adj[off[u]:off[u+1]], sorted ascending. Social is immutable after Build.
type Social struct {
	off []int32 // len NumUsers+1
	adj []int32 // len 2*NumEdges
}

// SocialBuilder accumulates undirected edges and produces an immutable
// Social graph. Duplicate edges and self-loops are discarded.
type SocialBuilder struct {
	numUsers int
	edges    map[[2]int32]struct{}
}

// NewSocialBuilder returns a builder for a social graph with numUsers user
// nodes. It panics if numUsers is negative.
func NewSocialBuilder(numUsers int) *SocialBuilder {
	if numUsers < 0 {
		panic("graph: negative user count")
	}
	return &SocialBuilder{
		numUsers: numUsers,
		edges:    make(map[[2]int32]struct{}),
	}
}

// AddEdge records the undirected social edge (u, v). Self-loops and
// duplicates are ignored. It returns an error if either endpoint is out of
// range.
func (b *SocialBuilder) AddEdge(u, v int) error {
	if u < 0 || u >= b.numUsers || v < 0 || v >= b.numUsers {
		return fmt.Errorf("graph: social edge (%d, %d) out of range [0, %d)", u, v, b.numUsers)
	}
	if u == v {
		return nil
	}
	if u > v {
		u, v = v, u
	}
	b.edges[[2]int32{int32(u), int32(v)}] = struct{}{}
	return nil
}

// NumEdges reports the number of distinct undirected edges added so far.
func (b *SocialBuilder) NumEdges() int { return len(b.edges) }

// Build produces the immutable Social graph. The builder may be reused
// afterwards; further AddEdge calls do not affect the built graph.
func (b *SocialBuilder) Build() *Social {
	deg := make([]int32, b.numUsers)
	for e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	off := make([]int32, b.numUsers+1)
	for u := 0; u < b.numUsers; u++ {
		off[u+1] = off[u] + deg[u]
	}
	adj := make([]int32, off[b.numUsers])
	next := make([]int32, b.numUsers)
	copy(next, off[:b.numUsers])
	for e := range b.edges {
		u, v := e[0], e[1]
		adj[next[u]] = v
		next[u]++
		adj[next[v]] = u
		next[v]++
	}
	for u := 0; u < b.numUsers; u++ {
		s := adj[off[u]:off[u+1]]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return &Social{off: off, adj: adj}
}

// NumUsers reports |U|.
func (g *Social) NumUsers() int { return len(g.off) - 1 }

// NumEdges reports |E_s| (undirected edges counted once).
func (g *Social) NumEdges() int { return len(g.adj) / 2 }

// Degree reports |Γ(u)|, the number of immediate neighbors of user u.
func (g *Social) Degree(u int) int { return int(g.off[u+1] - g.off[u]) }

// Neighbors returns the sorted neighbor list Γ(u). The returned slice aliases
// the graph's internal storage and must not be modified.
func (g *Social) Neighbors(u int) []int32 { return g.adj[g.off[u]:g.off[u+1]] }

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Social) HasEdge(u, v int) bool {
	n := g.Neighbors(u)
	i := sort.Search(len(n), func(i int) bool { return n[i] >= int32(v) })
	return i < len(n) && n[i] == int32(v)
}

// AvgDegree returns the mean and population standard deviation of the user
// degree distribution, as reported in Table 1 of the paper.
func (g *Social) AvgDegree() (mean, std float64) {
	n := g.NumUsers()
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for u := 0; u < n; u++ {
		sum += float64(g.Degree(u))
	}
	mean = sum / float64(n)
	var ss float64
	for u := 0; u < n; u++ {
		d := float64(g.Degree(u)) - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(n))
}

// ConnectedComponents labels each user with a component identifier in
// [0, count) and returns the labels together with the component count.
// Components are numbered in order of discovery by increasing user id, so
// label 0 is the component of the lowest-numbered user.
func (g *Social) ConnectedComponents() (labels []int32, count int) {
	n := g.NumUsers()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = int32(count)
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(int(u)) {
				if labels[v] < 0 {
					labels[v] = int32(count)
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return labels, count
}

// MainComponent returns the user ids of the largest connected component,
// sorted ascending. Ties are broken by lowest component label.
func (g *Social) MainComponent() []int32 {
	labels, count := g.ConnectedComponents()
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	out := make([]int32, 0, sizes[best])
	for u, l := range labels {
		if int(l) == best {
			out = append(out, int32(u))
		}
	}
	return out
}

// InducedSubgraph builds the social graph induced by the given user set and
// returns it together with the mapping from new ids to original ids
// (origID[newID] == original user id). Users not in the set are dropped along
// with their edges. The user set may be in any order; new ids follow the
// ascending order of original ids.
func (g *Social) InducedSubgraph(users []int32) (*Social, []int32) {
	origID := make([]int32, len(users))
	copy(origID, users)
	sort.Slice(origID, func(i, j int) bool { return origID[i] < origID[j] })
	newID := make(map[int32]int32, len(origID))
	for i, u := range origID {
		newID[u] = int32(i)
	}
	b := NewSocialBuilder(len(origID))
	for i, u := range origID {
		for _, v := range g.Neighbors(int(u)) {
			if j, ok := newID[v]; ok && int32(i) < j {
				// Errors are impossible: both endpoints are in range.
				_ = b.AddEdge(i, int(j))
			}
		}
	}
	return b.Build(), origID
}
