package graph

import (
	"fmt"
	"math"
	"sort"
)

// WeightedPreference is the weighted extension of the preference graph the
// paper sketches in §7: each edge (u, i) carries a weight w(u, i) ∈
// (0, MaxWeight] (e.g. a star rating or a normalized listen count). The
// unweighted graph is the special case of all weights equal to 1.
//
// For differential privacy the relevant quantity is MaxWeight: adding or
// removing one edge changes any sum of weights by at most MaxWeight, so the
// cluster mechanism's noise scales with MaxWeight/(|c|·ε). Normalizing
// ratings into [0, 1] before building the graph therefore gives the same
// noise behaviour as the unweighted framework.
type WeightedPreference struct {
	numUsers int
	numItems int

	uoff   []int32
	uitems []int32
	uw     []float64

	maxWeight float64
}

// WeightedPreferenceBuilder accumulates weighted preference edges.
// Re-adding an existing edge overwrites its weight.
type WeightedPreferenceBuilder struct {
	numUsers int
	numItems int
	edges    map[[2]int32]float64
}

// NewWeightedPreferenceBuilder returns a builder over numUsers users and
// numItems items. It panics if either count is negative.
func NewWeightedPreferenceBuilder(numUsers, numItems int) *WeightedPreferenceBuilder {
	if numUsers < 0 || numItems < 0 {
		panic("graph: negative node count")
	}
	return &WeightedPreferenceBuilder{
		numUsers: numUsers,
		numItems: numItems,
		edges:    make(map[[2]int32]float64),
	}
}

// AddEdge records the weighted preference edge (u, i). Weights must be
// positive and finite (absent edges implicitly have weight 0, as in §2.1).
func (b *WeightedPreferenceBuilder) AddEdge(u, i int, w float64) error {
	// Ids and weights are the raw preference data and are deliberately not
	// echoed; only the structural bounds appear in the error.
	if u < 0 || u >= b.numUsers {
		return fmt.Errorf("graph: weighted edge user out of range [0, %d)", b.numUsers)
	}
	if i < 0 || i >= b.numItems {
		return fmt.Errorf("graph: weighted edge item out of range [0, %d)", b.numItems)
	}
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		return fmt.Errorf("graph: weighted edge has non-positive or non-finite weight")
	}
	b.edges[[2]int32{int32(u), int32(i)}] = w
	return nil
}

// NumEdges reports the number of distinct edges added so far.
func (b *WeightedPreferenceBuilder) NumEdges() int { return len(b.edges) }

// Build produces the immutable weighted graph.
func (b *WeightedPreferenceBuilder) Build() *WeightedPreference {
	p := &WeightedPreference{numUsers: b.numUsers, numItems: b.numItems}
	deg := make([]int32, b.numUsers)
	for e := range b.edges {
		deg[e[0]]++
	}
	p.uoff = prefixSum(deg)
	p.uitems = make([]int32, len(b.edges))
	p.uw = make([]float64, len(b.edges))
	next := make([]int32, b.numUsers)
	copy(next, p.uoff[:b.numUsers])
	for e, w := range b.edges {
		u := e[0]
		p.uitems[next[u]] = e[1]
		p.uw[next[u]] = w
		next[u]++
		if w > p.maxWeight {
			p.maxWeight = w
		}
	}
	for u := 0; u < b.numUsers; u++ {
		lo, hi := p.uoff[u], p.uoff[u+1]
		idx := p.uitems[lo:hi]
		ws := p.uw[lo:hi]
		sort.Sort(&itemWeightSort{idx, ws})
	}
	return p
}

type itemWeightSort struct {
	items []int32
	w     []float64
}

func (s *itemWeightSort) Len() int           { return len(s.items) }
func (s *itemWeightSort) Less(i, j int) bool { return s.items[i] < s.items[j] }
func (s *itemWeightSort) Swap(i, j int) {
	s.items[i], s.items[j] = s.items[j], s.items[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// NumUsers reports |U|.
func (p *WeightedPreference) NumUsers() int { return p.numUsers }

// NumItems reports |I|.
func (p *WeightedPreference) NumItems() int { return p.numItems }

// NumEdges reports |E_p|.
func (p *WeightedPreference) NumEdges() int { return len(p.uitems) }

// MaxWeight reports the largest edge weight — the sensitivity unit of any
// private release over this graph.
func (p *WeightedPreference) MaxWeight() float64 { return p.maxWeight }

// Edges returns user u's sorted item ids and their weights. Both slices
// alias internal storage and must not be modified.
func (p *WeightedPreference) Edges(u int) (items []int32, weights []float64) {
	return p.uitems[p.uoff[u]:p.uoff[u+1]], p.uw[p.uoff[u]:p.uoff[u+1]]
}

// Weight reports w(u, i), or 0 for an absent edge.
func (p *WeightedPreference) Weight(u, i int) float64 {
	items, ws := p.Edges(u)
	k := sort.Search(len(items), func(k int) bool { return items[k] >= int32(i) })
	if k < len(items) && items[k] == int32(i) {
		return ws[k]
	}
	return 0
}

// Normalized returns a copy with every weight divided by MaxWeight, so all
// weights lie in (0, 1] and private releases over the copy need the same
// noise as the unweighted framework. A graph with no edges is returned
// unchanged.
func (p *WeightedPreference) Normalized() *WeightedPreference {
	//sociolint:ignore floateq a max weight of exactly 1.0 is the already-normalized sentinel, and 1.0 is IEEE-exact
	if p.maxWeight == 0 || p.maxWeight == 1 {
		return p
	}
	c := &WeightedPreference{
		numUsers:  p.numUsers,
		numItems:  p.numItems,
		uoff:      p.uoff,
		uitems:    p.uitems,
		uw:        make([]float64, len(p.uw)),
		maxWeight: 1,
	}
	inv := 1 / p.maxWeight
	for i, w := range p.uw {
		c.uw[i] = w * inv
	}
	return c
}

// Unweighted converts the graph to the paper's unweighted model, keeping
// edges with weight >= threshold (the §6.1 preprocessing step).
func (p *WeightedPreference) Unweighted(threshold float64) *Preference {
	b := NewPreferenceBuilder(p.numUsers, p.numItems)
	for u := 0; u < p.numUsers; u++ {
		items, ws := p.Edges(u)
		for k, i := range items {
			if ws[k] >= threshold {
				// Range-checked at weighted build time.
				_ = b.AddEdge(u, int(i))
			}
		}
	}
	return b.Build()
}
