package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, b *SocialBuilder, u, v int) {
	t.Helper()
	if err := b.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d, %d): %v", u, v, err)
	}
}

func TestSocialBuildBasics(t *testing.T) {
	b := NewSocialBuilder(5)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 2, 0)
	mustAdd(t, b, 3, 4)
	g := b.Build()

	if got := g.NumUsers(); got != 5 {
		t.Errorf("NumUsers = %d, want 5", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d, want 4", got)
	}
	wantDeg := []int{2, 2, 2, 1, 1}
	for u, want := range wantDeg {
		if got := g.Degree(u); got != want {
			t.Errorf("Degree(%d) = %d, want %d", u, got, want)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge (0,1) missing in one direction")
	}
	if g.HasEdge(0, 3) {
		t.Error("HasEdge(0,3) = true, want false")
	}
}

func TestSocialDuplicatesAndSelfLoops(t *testing.T) {
	b := NewSocialBuilder(3)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 0) // duplicate, reversed
	mustAdd(t, b, 0, 1) // duplicate
	mustAdd(t, b, 2, 2) // self-loop, dropped
	g := b.Build()
	if got := g.NumEdges(); got != 1 {
		t.Errorf("NumEdges = %d, want 1", got)
	}
	if got := g.Degree(2); got != 0 {
		t.Errorf("Degree(2) = %d, want 0 (self-loop dropped)", got)
	}
}

func TestSocialAddEdgeOutOfRange(t *testing.T) {
	b := NewSocialBuilder(2)
	for _, pair := range [][2]int{{-1, 0}, {0, 2}, {5, 5}} {
		if err := b.AddEdge(pair[0], pair[1]); err == nil {
			t.Errorf("AddEdge(%d, %d): want error", pair[0], pair[1])
		}
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewSocialBuilder(6)
	for _, v := range []int{5, 2, 4, 1, 3} {
		mustAdd(t, b, 0, v)
	}
	g := b.Build()
	n := g.Neighbors(0)
	for i := 1; i < len(n); i++ {
		if n[i-1] >= n[i] {
			t.Fatalf("Neighbors(0) not strictly sorted: %v", n)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewSocialBuilder(7)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 3, 4)
	// 5 and 6 isolated
	g := b.Build()
	labels, count := g.ConnectedComponents()
	if count != 4 {
		t.Fatalf("component count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("0,1,2 not in same component: %v", labels)
	}
	if labels[3] != labels[4] {
		t.Errorf("3,4 not in same component: %v", labels)
	}
	if labels[5] == labels[6] || labels[5] == labels[0] {
		t.Errorf("isolated users share components: %v", labels)
	}
}

func TestMainComponent(t *testing.T) {
	b := NewSocialBuilder(6)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 2, 3)
	mustAdd(t, b, 4, 5)
	g := b.Build()
	main := g.MainComponent()
	want := []int32{0, 1, 2, 3}
	if len(main) != len(want) {
		t.Fatalf("MainComponent = %v, want %v", main, want)
	}
	for i := range want {
		if main[i] != want[i] {
			t.Fatalf("MainComponent = %v, want %v", main, want)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewSocialBuilder(6)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 2, 3)
	mustAdd(t, b, 3, 0)
	mustAdd(t, b, 4, 5)
	mustAdd(t, b, 1, 4)
	g := b.Build()

	sub, origID := g.InducedSubgraph([]int32{3, 1, 0})
	if sub.NumUsers() != 3 {
		t.Fatalf("sub users = %d, want 3", sub.NumUsers())
	}
	// origID must be sorted originals.
	want := []int32{0, 1, 3}
	for i := range want {
		if origID[i] != want[i] {
			t.Fatalf("origID = %v, want %v", origID, want)
		}
	}
	// Edges kept: (0,1) and (3,0) → in new ids (0,1), (2,0). Edge (1,2),
	// (2,3), (1,4) dropped.
	if sub.NumEdges() != 2 {
		t.Fatalf("sub edges = %d, want 2", sub.NumEdges())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(0, 2) {
		t.Error("expected edges missing from induced subgraph")
	}
}

func TestAvgDegree(t *testing.T) {
	b := NewSocialBuilder(4)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 0, 2)
	mustAdd(t, b, 0, 3)
	g := b.Build()
	mean, std := g.AvgDegree()
	// degrees: 3,1,1,1 → mean 1.5, var = (2.25+.25*3)/4 = 0.75
	if mean != 1.5 {
		t.Errorf("mean = %v, want 1.5", mean)
	}
	if diff := std*std - 0.75; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("std^2 = %v, want 0.75", std*std)
	}
}

// Property: for any random graph, the CSR structure is symmetric — v appears
// in Neighbors(u) iff u appears in Neighbors(v) — and degrees sum to twice
// the edge count.
func TestSocialSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewSocialBuilder(n)
		for k := 0; k < 3*n; k++ {
			if err := b.AddEdge(rng.Intn(n), rng.Intn(n)); err != nil {
				return false
			}
		}
		g := b.Build()
		degSum := 0
		for u := 0; u < n; u++ {
			degSum += g.Degree(u)
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(int(v), u) {
					return false
				}
			}
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: components partition the users and every edge stays within one
// component.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		b := NewSocialBuilder(n)
		for k := 0; k < n; k++ {
			_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		labels, count := g.ConnectedComponents()
		for _, l := range labels {
			if l < 0 || int(l) >= count {
				return false
			}
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if labels[u] != labels[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
