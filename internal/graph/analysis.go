package graph

// Analysis helpers over the social graph: the structural statistics used to
// validate that generated graphs look like the crawled ones the paper
// evaluates on (small-world clustering, heavy-tailed degrees) and to
// implement the per-user views the experiments need.

// LocalClusteringCoefficient returns the fraction of pairs of u's neighbors
// that are themselves connected — 1.0 inside a clique, 0.0 in a star. Users
// with fewer than two neighbors score 0.
func (g *Social) LocalClusteringCoefficient(u int) float64 {
	neigh := g.Neighbors(u)
	d := len(neigh)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(int(neigh[i]), int(neigh[j])) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(d*(d-1))
}

// AvgClusteringCoefficient returns the mean local clustering coefficient
// over all users — the small-world statistic ([27] in the paper) that makes
// 2-hop similarity sets explode and motivates the GD/KZ cutoffs of §2.2.
func (g *Social) AvgClusteringCoefficient() float64 {
	n := g.NumUsers()
	if n == 0 {
		return 0
	}
	var sum float64
	for u := 0; u < n; u++ {
		sum += g.LocalClusteringCoefficient(u)
	}
	return sum / float64(n)
}

// DegreeHistogram returns counts[d] = number of users with degree d, up to
// the maximum degree present.
func (g *Social) DegreeHistogram() []int {
	maxDeg := 0
	for u := 0; u < g.NumUsers(); u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for u := 0; u < g.NumUsers(); u++ {
		counts[g.Degree(u)]++
	}
	return counts
}

// BFSDistances returns the shortest-path distance from u to every user, or
// -1 for unreachable users. maxDepth bounds the search; 0 means unbounded.
func (g *Social) BFSDistances(u int, maxDepth int) []int32 {
	n := g.NumUsers()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[u] = 0
	frontier := []int32{int32(u)}
	var next []int32
	for d := int32(1); len(frontier) > 0; d++ {
		if maxDepth > 0 && int(d) > maxDepth {
			break
		}
		next = next[:0]
		for _, x := range frontier {
			for _, v := range g.Neighbors(int(x)) {
				if dist[v] < 0 {
					dist[v] = d
					next = append(next, v)
				}
			}
		}
		frontier, next = next, frontier
	}
	return dist
}

// TwoHopNeighborhoodSize reports |{v : dist(u, v) ≤ 2, v ≠ u}| — the size
// of the similarity-set support for the CN/AA/GD measures, and the quantity
// whose explosion beyond two hops (§2.2) motivates their cutoffs.
func (g *Social) TwoHopNeighborhoodSize(u int) int {
	dist := g.BFSDistances(u, 2)
	count := 0
	for v, d := range dist {
		if v != u && d > 0 {
			count++
		}
	}
	return count
}
