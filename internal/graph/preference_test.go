package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAddPref(t *testing.T, b *PreferenceBuilder, u, i int) {
	t.Helper()
	if err := b.AddEdge(u, i); err != nil {
		t.Fatalf("AddEdge(%d, %d): %v", u, i, err)
	}
}

func TestPreferenceBuildBasics(t *testing.T) {
	b := NewPreferenceBuilder(3, 4)
	mustAddPref(t, b, 0, 0)
	mustAddPref(t, b, 0, 2)
	mustAddPref(t, b, 1, 2)
	mustAddPref(t, b, 2, 3)
	p := b.Build()

	if p.NumUsers() != 3 || p.NumItems() != 4 || p.NumEdges() != 4 {
		t.Fatalf("shape = (%d, %d, %d), want (3, 4, 4)", p.NumUsers(), p.NumItems(), p.NumEdges())
	}
	if got := p.UserDegree(0); got != 2 {
		t.Errorf("UserDegree(0) = %d, want 2", got)
	}
	if got := p.ItemDegree(2); got != 2 {
		t.Errorf("ItemDegree(2) = %d, want 2", got)
	}
	if got := p.ItemDegree(1); got != 0 {
		t.Errorf("ItemDegree(1) = %d, want 0", got)
	}
	if p.Weight(0, 2) != 1 {
		t.Error("Weight(0,2) = 0, want 1")
	}
	if p.Weight(0, 1) != 0 {
		t.Error("Weight(0,1) = 1, want 0")
	}
}

func TestPreferenceDuplicates(t *testing.T) {
	b := NewPreferenceBuilder(2, 2)
	mustAddPref(t, b, 0, 1)
	mustAddPref(t, b, 0, 1)
	p := b.Build()
	if p.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", p.NumEdges())
	}
}

func TestPreferenceOutOfRange(t *testing.T) {
	b := NewPreferenceBuilder(2, 2)
	for _, pair := range [][2]int{{-1, 0}, {2, 0}, {0, -1}, {0, 2}} {
		if err := b.AddEdge(pair[0], pair[1]); err == nil {
			t.Errorf("AddEdge(%d, %d): want error", pair[0], pair[1])
		}
	}
}

func TestSparsity(t *testing.T) {
	b := NewPreferenceBuilder(2, 5)
	mustAddPref(t, b, 0, 0)
	mustAddPref(t, b, 1, 1)
	p := b.Build()
	if got, want := p.Sparsity(), 1-2.0/10.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Sparsity = %v, want %v", got, want)
	}
}

func TestAvgItemDegreeExcludesEmpty(t *testing.T) {
	b := NewPreferenceBuilder(3, 3)
	mustAddPref(t, b, 0, 0)
	mustAddPref(t, b, 1, 0)
	mustAddPref(t, b, 2, 1)
	// item 2 has no edges and must be excluded
	p := b.Build()
	mean, _ := p.AvgItemDegree()
	if want := 1.5; math.Abs(mean-want) > 1e-12 {
		t.Errorf("AvgItemDegree mean = %v, want %v", mean, want)
	}
}

func TestRemoveAndAddEdge(t *testing.T) {
	b := NewPreferenceBuilder(2, 3)
	mustAddPref(t, b, 0, 0)
	mustAddPref(t, b, 1, 2)
	p := b.Build()

	removed := p.RemoveEdge(0, 0)
	if removed.Weight(0, 0) != 0 || removed.NumEdges() != 1 {
		t.Error("RemoveEdge did not remove the edge")
	}
	if p.Weight(0, 0) != 1 {
		t.Error("RemoveEdge mutated the receiver")
	}
	if same := p.RemoveEdge(0, 1); same != p {
		t.Error("removing an absent edge should return the receiver")
	}

	added := p.AddedEdge(0, 1)
	if added.Weight(0, 1) != 1 || added.NumEdges() != 3 {
		t.Error("AddedEdge did not add the edge")
	}
	if same := p.AddedEdge(0, 0); same != p {
		t.Error("adding a present edge should return the receiver")
	}
}

// Property: the user-major and item-major CSR views describe the same edge
// set.
func TestPreferenceDualViewProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, ni := 1+rng.Intn(20), 1+rng.Intn(20)
		b := NewPreferenceBuilder(nu, ni)
		for k := 0; k < 2*(nu+ni); k++ {
			_ = b.AddEdge(rng.Intn(nu), rng.Intn(ni))
		}
		p := b.Build()
		// Every (u, i) via Items must appear in Users(i) and vice versa.
		fromUsers := 0
		for u := 0; u < nu; u++ {
			for _, i := range p.Items(u) {
				fromUsers++
				found := false
				for _, v := range p.Users(int(i)) {
					if int(v) == u {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		fromItems := 0
		for i := 0; i < ni; i++ {
			fromItems += p.ItemDegree(i)
		}
		return fromUsers == p.NumEdges() && fromItems == p.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Weight agrees with membership in Items.
func TestWeightConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nu, ni := 1+rng.Intn(10), 1+rng.Intn(10)
		b := NewPreferenceBuilder(nu, ni)
		for k := 0; k < nu*ni/2; k++ {
			_ = b.AddEdge(rng.Intn(nu), rng.Intn(ni))
		}
		p := b.Build()
		for u := 0; u < nu; u++ {
			present := make(map[int32]bool)
			for _, i := range p.Items(u) {
				present[i] = true
			}
			for i := 0; i < ni; i++ {
				want := 0.0
				if present[int32(i)] {
					want = 1.0
				}
				if p.Weight(u, i) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
