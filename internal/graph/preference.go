package graph

import (
	"fmt"
	"math"
	"sort"
)

// Preference is the bipartite preference graph G_p = (U, I, E_p). A directed
// edge (u, i) expresses a positive preference of user u for item i; following
// §2.1 of the paper all edges have implicit weight 1 (w(u,i) = 1 for
// (u,i) ∈ E_p and 0 otherwise). Both orientations are stored in CSR form so
// that per-user and per-item traversals are O(degree). Preference is
// immutable after Build.
type Preference struct {
	numUsers int
	numItems int

	// user → items
	uoff   []int32
	uitems []int32
	// item → users
	ioff   []int32
	iusers []int32
}

// PreferenceBuilder accumulates preference edges and produces an immutable
// Preference graph. Duplicate edges are discarded.
type PreferenceBuilder struct {
	numUsers int
	numItems int
	edges    map[[2]int32]struct{}
}

// NewPreferenceBuilder returns a builder for a preference graph over
// numUsers users and numItems items. It panics if either count is negative.
func NewPreferenceBuilder(numUsers, numItems int) *PreferenceBuilder {
	if numUsers < 0 || numItems < 0 {
		panic("graph: negative node count")
	}
	return &PreferenceBuilder{
		numUsers: numUsers,
		numItems: numItems,
		edges:    make(map[[2]int32]struct{}),
	}
}

// AddEdge records the preference edge (u, i). Duplicates are ignored. It
// returns an error if either endpoint is out of range.
func (b *PreferenceBuilder) AddEdge(u, i int) error {
	// The offending ids are deliberately not echoed: user and item ids are
	// the raw adjacency data, and builder errors bubble into ingestion
	// logs. The bounds are structural and safe to report.
	if u < 0 || u >= b.numUsers {
		return fmt.Errorf("graph: preference edge user out of range [0, %d)", b.numUsers)
	}
	if i < 0 || i >= b.numItems {
		return fmt.Errorf("graph: preference edge item out of range [0, %d)", b.numItems)
	}
	b.edges[[2]int32{int32(u), int32(i)}] = struct{}{}
	return nil
}

// NumEdges reports the number of distinct preference edges added so far.
func (b *PreferenceBuilder) NumEdges() int { return len(b.edges) }

// Build produces the immutable Preference graph.
func (b *PreferenceBuilder) Build() *Preference {
	p := &Preference{numUsers: b.numUsers, numItems: b.numItems}

	udeg := make([]int32, b.numUsers)
	ideg := make([]int32, b.numItems)
	for e := range b.edges {
		udeg[e[0]]++
		ideg[e[1]]++
	}
	p.uoff = prefixSum(udeg)
	p.ioff = prefixSum(ideg)
	p.uitems = make([]int32, len(b.edges))
	p.iusers = make([]int32, len(b.edges))
	unext := make([]int32, b.numUsers)
	copy(unext, p.uoff[:b.numUsers])
	inext := make([]int32, b.numItems)
	copy(inext, p.ioff[:b.numItems])
	for e := range b.edges {
		u, i := e[0], e[1]
		p.uitems[unext[u]] = i
		unext[u]++
		p.iusers[inext[i]] = u
		inext[i]++
	}
	for u := 0; u < b.numUsers; u++ {
		s := p.uitems[p.uoff[u]:p.uoff[u+1]]
		sort.Slice(s, func(a, c int) bool { return s[a] < s[c] })
	}
	for i := 0; i < b.numItems; i++ {
		s := p.iusers[p.ioff[i]:p.ioff[i+1]]
		sort.Slice(s, func(a, c int) bool { return s[a] < s[c] })
	}
	return p
}

func prefixSum(deg []int32) []int32 {
	off := make([]int32, len(deg)+1)
	for i, d := range deg {
		off[i+1] = off[i] + d
	}
	return off
}

// NumUsers reports |U|.
func (p *Preference) NumUsers() int { return p.numUsers }

// NumItems reports |I|.
func (p *Preference) NumItems() int { return p.numItems }

// NumEdges reports |E_p|.
func (p *Preference) NumEdges() int { return len(p.uitems) }

// Items returns the sorted item ids preferred by user u. The returned slice
// aliases internal storage and must not be modified.
func (p *Preference) Items(u int) []int32 { return p.uitems[p.uoff[u]:p.uoff[u+1]] }

// Users returns the sorted user ids that prefer item i. The returned slice
// aliases internal storage and must not be modified.
func (p *Preference) Users(i int) []int32 { return p.iusers[p.ioff[i]:p.ioff[i+1]] }

// UserDegree reports the number of items preferred by user u.
func (p *Preference) UserDegree(u int) int { return int(p.uoff[u+1] - p.uoff[u]) }

// ItemDegree reports the number of users that prefer item i.
func (p *Preference) ItemDegree(i int) int { return int(p.ioff[i+1] - p.ioff[i]) }

// Weight reports w(u, i): 1 if the preference edge exists and 0 otherwise.
func (p *Preference) Weight(u, i int) float64 {
	items := p.Items(u)
	k := sort.Search(len(items), func(k int) bool { return items[k] >= int32(i) })
	if k < len(items) && items[k] == int32(i) {
		return 1
	}
	return 0
}

// AvgItemDegree returns the mean and population standard deviation of the
// item degree distribution, as reported in Table 1 of the paper. Items with
// no preference edges are excluded, matching how crawled datasets only
// contain items somebody interacted with.
func (p *Preference) AvgItemDegree() (mean, std float64) {
	var n int
	var sum float64
	for i := 0; i < p.numItems; i++ {
		if d := p.ItemDegree(i); d > 0 {
			n++
			sum += float64(d)
		}
	}
	if n == 0 {
		return 0, 0
	}
	mean = sum / float64(n)
	var ss float64
	for i := 0; i < p.numItems; i++ {
		if d := p.ItemDegree(i); d > 0 {
			dd := float64(d) - mean
			ss += dd * dd
		}
	}
	return mean, sqrtf(ss / float64(n))
}

// Sparsity reports 1 - |E_p| / (|U|·|I|), the fraction of absent user-item
// pairs, as reported in Table 1 of the paper.
func (p *Preference) Sparsity() float64 {
	total := float64(p.numUsers) * float64(p.numItems)
	if total == 0 {
		return 0
	}
	return 1 - float64(p.NumEdges())/total
}

// RemoveEdge returns a copy of the preference graph with the edge (u, i)
// removed, or the receiver itself if the edge does not exist. It is intended
// for constructing the neighboring databases of Definition 6 in privacy
// tests, not for hot paths.
func (p *Preference) RemoveEdge(u, i int) *Preference {
	if p.Weight(u, i) == 0 {
		return p
	}
	b := NewPreferenceBuilder(p.numUsers, p.numItems)
	for v := 0; v < p.numUsers; v++ {
		for _, it := range p.Items(v) {
			if v == u && int(it) == i {
				continue
			}
			_ = b.AddEdge(v, int(it))
		}
	}
	return b.Build()
}

// AddedEdge returns a copy of the preference graph with the edge (u, i)
// added, or the receiver itself if the edge already exists. See RemoveEdge.
func (p *Preference) AddedEdge(u, i int) *Preference {
	if p.Weight(u, i) != 0 {
		return p
	}
	b := NewPreferenceBuilder(p.numUsers, p.numItems)
	for v := 0; v < p.numUsers; v++ {
		for _, it := range p.Items(v) {
			_ = b.AddEdge(v, int(it))
		}
	}
	_ = b.AddEdge(u, i)
	return b.Build()
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
