package graph

import (
	"math"
	"testing"
)

// triangleWithTail: 0-1-2 triangle, 2-3 tail, 4 isolated.
func triangleWithTail(t testing.TB) *Social {
	t.Helper()
	b := NewSocialBuilder(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestLocalClusteringCoefficient(t *testing.T) {
	g := triangleWithTail(t)
	// Node 0: neighbors {1, 2} connected → 1.0.
	if got := g.LocalClusteringCoefficient(0); got != 1 {
		t.Errorf("cc(0) = %v, want 1", got)
	}
	// Node 2: neighbors {0, 1, 3}; pairs (0,1) connected, (0,3), (1,3)
	// not → 1/3.
	if got := g.LocalClusteringCoefficient(2); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("cc(2) = %v, want 1/3", got)
	}
	// Degree-1 node 3 and isolated node 4 score 0.
	if g.LocalClusteringCoefficient(3) != 0 || g.LocalClusteringCoefficient(4) != 0 {
		t.Error("low-degree nodes must score 0")
	}
}

func TestAvgClusteringCoefficient(t *testing.T) {
	g := triangleWithTail(t)
	want := (1.0 + 1.0 + 1.0/3 + 0 + 0) / 5
	if got := g.AvgClusteringCoefficient(); math.Abs(got-want) > 1e-12 {
		t.Errorf("avg cc = %v, want %v", got, want)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := triangleWithTail(t)
	h := g.DegreeHistogram()
	// degrees: 2, 2, 3, 1, 0 → counts [1, 1, 2, 1].
	want := []int{1, 1, 2, 1}
	if len(h) != len(want) {
		t.Fatalf("histogram = %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := triangleWithTail(t)
	d := g.BFSDistances(0, 0)
	want := []int32{0, 1, 1, 2, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("distances = %v, want %v", d, want)
		}
	}
	// Depth-limited search stops early.
	d1 := g.BFSDistances(0, 1)
	if d1[3] != -1 {
		t.Errorf("depth-1 BFS reached distance 2: %v", d1)
	}
}

func TestTwoHopNeighborhoodSize(t *testing.T) {
	g := triangleWithTail(t)
	if got := g.TwoHopNeighborhoodSize(0); got != 3 {
		t.Errorf("two-hop size of 0 = %d, want 3", got)
	}
	if got := g.TwoHopNeighborhoodSize(4); got != 0 {
		t.Errorf("two-hop size of isolated node = %d, want 0", got)
	}
}
