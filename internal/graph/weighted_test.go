package graph

import (
	"math"
	"testing"
)

func TestWeightedBuildBasics(t *testing.T) {
	b := NewWeightedPreferenceBuilder(3, 4)
	if err := b.AddEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	p := b.Build()
	if p.NumUsers() != 3 || p.NumItems() != 4 || p.NumEdges() != 3 {
		t.Fatalf("shape = (%d, %d, %d)", p.NumUsers(), p.NumItems(), p.NumEdges())
	}
	if p.Weight(0, 1) != 2.5 || p.Weight(0, 3) != 4 || p.Weight(0, 0) != 0 {
		t.Error("weights wrong")
	}
	if p.MaxWeight() != 4 {
		t.Errorf("MaxWeight = %v, want 4", p.MaxWeight())
	}
	items, ws := p.Edges(0)
	if len(items) != 2 || items[0] != 1 || items[1] != 3 || ws[0] != 2.5 {
		t.Errorf("Edges(0) = %v, %v", items, ws)
	}
}

func TestWeightedOverwrite(t *testing.T) {
	b := NewWeightedPreferenceBuilder(1, 1)
	_ = b.AddEdge(0, 0, 1)
	_ = b.AddEdge(0, 0, 3)
	p := b.Build()
	if p.NumEdges() != 1 || p.Weight(0, 0) != 3 {
		t.Error("re-adding an edge must overwrite its weight")
	}
}

func TestWeightedValidation(t *testing.T) {
	b := NewWeightedPreferenceBuilder(2, 2)
	bad := []struct {
		u, i int
		w    float64
	}{
		{-1, 0, 1}, {2, 0, 1}, {0, -1, 1}, {0, 2, 1},
		{0, 0, 0}, {0, 0, -1}, {0, 0, math.Inf(1)}, {0, 0, math.NaN()},
	}
	for _, c := range bad {
		if err := b.AddEdge(c.u, c.i, c.w); err == nil {
			t.Errorf("AddEdge(%d, %d, %v): want error", c.u, c.i, c.w)
		}
	}
}

func TestWeightedNormalized(t *testing.T) {
	b := NewWeightedPreferenceBuilder(2, 2)
	_ = b.AddEdge(0, 0, 2)
	_ = b.AddEdge(1, 1, 5)
	p := b.Build()
	n := p.Normalized()
	if n.MaxWeight() != 1 {
		t.Errorf("normalized MaxWeight = %v", n.MaxWeight())
	}
	if got := n.Weight(0, 0); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("normalized weight = %v, want 0.4", got)
	}
	if p.Weight(0, 0) != 2 {
		t.Error("Normalized mutated the original")
	}
	// Already-normalized graphs are returned as-is.
	if n2 := n.Normalized(); n2 != n {
		t.Error("normalizing twice should be a no-op")
	}
}

func TestWeightedUnweighted(t *testing.T) {
	b := NewWeightedPreferenceBuilder(2, 3)
	_ = b.AddEdge(0, 0, 1)
	_ = b.AddEdge(0, 1, 2)
	_ = b.AddEdge(1, 2, 5)
	p := b.Build()
	// Mirrors §6.1: threshold 2 keeps two edges.
	u := p.Unweighted(2)
	if u.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", u.NumEdges())
	}
	if u.Weight(0, 1) != 1 || u.Weight(1, 2) != 1 || u.Weight(0, 0) != 0 {
		t.Error("thresholding wrong")
	}
}
