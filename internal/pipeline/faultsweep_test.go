package pipeline

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"socialrec/internal/dp"
	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
)

// sweepPipeline builds a release-shaped pipeline whose last stage draws
// seeded Laplace noise and spends ε, mirroring the offline path: the
// "release" output is the bytes that would leave the trust boundary, so the
// crash/resume invariant under test is exactly the paper-level one — the
// published noisy values must be identical whether or not the run crashed,
// and the ε must be journaled exactly once.
func sweepPipeline(t *testing.T, seed int64) *Pipeline {
	t.Helper()
	p, err := New(
		&testStage{
			name: "load", version: 1, fp: uint64(seed),
			outputs: []Port{int64Port("count")},
			run: func(ctx context.Context, st *State) error {
				st.Put("count", seed*3)
				return nil
			},
		},
		&testStage{
			name: "aggregate", version: 1,
			inputs:  []Key{"count"},
			outputs: []Port{int64Port("sum")},
			run: func(ctx context.Context, st *State) error {
				v, err := Get[int64](st, "count")
				if err != nil {
					return err
				}
				st.Put("sum", v+17)
				return nil
			},
		},
		&testStage{
			name: "release", version: 1,
			inputs:  []Key{"sum"},
			outputs: []Port{int64Port("release")},
			run: func(ctx context.Context, st *State) error {
				v, err := Get[int64](st, "sum")
				if err != nil {
					return err
				}
				// Seeded noise: a re-run reproduces the identical draw, so
				// re-releasing after a crash is the same single release.
				noise := dp.NewRand(seed + 1).NormFloat64()
				st.Put("release", v+int64(math.Round(noise*1000)))
				st.RecordSpend(telemetry.ReleaseEvent{Mechanism: "test", Epsilon: 0.25, Sensitivity: 1, Values: 1})
				return nil
			},
		},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

// assertConverged checks the post-resume invariants: the release value and
// its checkpoint bytes equal the uninterrupted baseline, and the durable
// ledger records the ε-spend exactly once.
func assertConverged(t *testing.T, label, dir string, res *Result, wantFinal int64, wantBytes []byte) {
	t.Helper()
	got, err := Get[int64](res.State, "release")
	if err != nil {
		t.Fatalf("%s: release value: %v", label, err)
	}
	if got != wantFinal {
		t.Fatalf("%s: release = %d, want %d (resume not deterministic)", label, got, wantFinal)
	}
	data, err := os.ReadFile(filepath.Join(dir, "release.art"))
	if err != nil {
		t.Fatalf("%s: reading release artifact: %v", label, err)
	}
	if !bytes.Equal(data, wantBytes) {
		t.Fatalf("%s: release artifact differs from uninterrupted baseline", label)
	}
	store, _, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatalf("%s: OpenStore: %v", label, err)
	}
	records, skipped, err := store.Ledger()
	if err != nil {
		t.Fatalf("%s: Ledger: %v", label, err)
	}
	if len(skipped) != 0 {
		t.Fatalf("%s: corrupt receipts after resume: %v", label, skipped)
	}
	spends := 0
	for _, r := range records {
		if r.Event.Epsilon != 0 {
			spends++
			if r.Stage != "release" || r.Event.Epsilon != 0.25 {
				t.Fatalf("%s: unexpected spend %+v", label, r)
			}
		}
	}
	if spends != 1 {
		t.Fatalf("%s: ε recorded %d times, want exactly once (records %+v)", label, spends, records)
	}
}

// baseline runs the pipeline uninterrupted and returns the expected release
// value and artifact bytes.
func sweepBaseline(t *testing.T, seed int64) (int64, []byte) {
	t.Helper()
	dir := t.TempDir()
	res, err := sweepPipeline(t, seed).Run(context.Background(), testOpts(dir))
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	v, err := Get[int64](res.State, "release")
	if err != nil {
		t.Fatalf("baseline release: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "release.art"))
	if err != nil {
		t.Fatalf("baseline artifact: %v", err)
	}
	return v, data
}

// TestFaultPointSweep is the crash-recovery proof from the issue: interrupt
// the pipeline at every filesystem fault point and every occurrence of that
// point (checkpoint create, write, fsync, close, rename, directory fsync,
// …), then resume and require the final release byte-identical to an
// uninterrupted run with the ε-spend journaled exactly once. Faults abort
// the run exactly where a crash would: nothing after the failed syscall
// executes against the checkpoint directory.
func TestFaultPointSweep(t *testing.T) {
	const seed = 77
	wantFinal, wantBytes := sweepBaseline(t, seed)

	points := []faults.Point{
		faults.PointFSCreate, faults.PointFSWrite, faults.PointFSSync,
		faults.PointFSClose, faults.PointFSRename, faults.PointFSSyncDir,
		faults.PointFSReadDir, faults.PointFSRemove,
		faults.PointFSOpen, faults.PointFSRead,
	}
	const maxOccurrence = 64
	for _, point := range points {
		point := point
		t.Run(string(point), func(t *testing.T) {
			for k := 0; ; k++ {
				if k >= maxOccurrence {
					t.Fatalf("occurrence cap %d reached; %s consulted more often than expected", maxOccurrence, point)
				}
				reg := faults.New(int64(1000 + k))
				reg.Arm(point, faults.Plan{After: uint64(k), Times: 1})
				dir := t.TempDir()

				// Interrupted run: the injected fault aborts it mid-checkpoint.
				opts := testOpts(dir)
				opts.FS = faults.NewFS(faults.OS{}, reg)
				_, runErr := sweepPipeline(t, seed).Run(context.Background(), opts)
				if reg.Fired(point) == 0 {
					// The whole run completed before occurrence k of this
					// point: the sweep is exhaustive, stop.
					if runErr != nil {
						t.Fatalf("occurrence %d: fault never fired yet run failed: %v", k, runErr)
					}
					assertConverged(t, "uninterrupted tail", dir, mustResume(t, dir, seed), wantFinal, wantBytes)
					return
				}

				// Resume with a healthy filesystem: must converge on the
				// byte-identical release with one journaled spend.
				assertConverged(t, string(point)+" occurrence "+itoa(k), dir, mustResume(t, dir, seed), wantFinal, wantBytes)
			}
		})
	}
}

// TestStagePanicMidRunThenResume crashes a stage with an injected panic
// after it spent ε but before its receipt committed, then resumes.
func TestStagePanicMidRunThenResume(t *testing.T) {
	const seed = 77
	wantFinal, wantBytes := sweepBaseline(t, seed)
	dir := t.TempDir()

	p := sweepPipeline(t, seed)
	inner := p.stages[2].(*testStage).run
	p.stages[2].(*testStage).run = func(ctx context.Context, st *State) error {
		if err := inner(ctx, st); err != nil {
			return err
		}
		panic(faults.InjectedPanic{Point: "stage.release"})
	}
	if _, err := p.Run(context.Background(), testOpts(dir)); err == nil {
		t.Fatalf("panicking run should fail")
	}
	// The spend happened in-process but the receipt never committed, so the
	// durable ledger must be empty of release spends.
	store, _, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := store.Ledger()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if r.Stage == "release" {
			t.Fatalf("uncommitted stage left a durable spend: %+v", r)
		}
	}
	assertConverged(t, "after panic", dir, mustResume(t, dir, seed), wantFinal, wantBytes)
}

// TestStageTimeoutThenResume times a stage out mid-run, then resumes
// without the timeout.
func TestStageTimeoutThenResume(t *testing.T) {
	const seed = 77
	wantFinal, wantBytes := sweepBaseline(t, seed)
	dir := t.TempDir()

	p := sweepPipeline(t, seed)
	inner := p.stages[2].(*testStage).run
	p.stages[2].(*testStage).run = func(ctx context.Context, st *State) error {
		<-ctx.Done() // hang until the per-stage timeout fires
		return ctx.Err()
	}
	opts := testOpts(dir)
	opts.StageTimeout = 10 * time.Millisecond
	if _, err := p.Run(context.Background(), opts); err == nil {
		t.Fatalf("timed-out run should fail")
	}
	p.stages[2].(*testStage).run = inner
	assertConverged(t, "after timeout", dir, mustResume(t, dir, seed), wantFinal, wantBytes)
}

func mustResume(t *testing.T, dir string, seed int64) *Result {
	t.Helper()
	res, err := sweepPipeline(t, seed).Run(context.Background(), testOpts(dir))
	if err != nil {
		t.Fatalf("resume run in %s: %v", dir, err)
	}
	return res
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
