package pipeline

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"math"
	"path/filepath"
	"sort"
	"strings"

	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
)

// Checkpoint file layout. Each completed stage leaves one artifact file
// per output plus one receipt file; the receipt is written last and is the
// stage's commit point. All files are CRC'd and written via
// faults.WriteAtomicFunc, so a crash at any moment leaves either the
// previous checkpoint intact or the new one fully durable — never a torn
// file under a final name.
//
//	<key>.art      one stage output (header + payload + CRC)
//	<stage>.stage  stage receipt (fingerprint, output keys, ε-spends + CRC)
//	*.tmp          in-progress atomic writes; swept on open
//
// Artifact (integers little-endian):
//
//	magic    [8]byte "SOCKPT01"
//	stage    uint16-prefixed UTF-8 string (producing stage)
//	key      uint16-prefixed UTF-8 string
//	version  uint32   (stage code version)
//	fp       uint64   (artifact fingerprint: chain(stage fp, key))
//	paylen   uint64
//	payload  paylen bytes (Port.Encode output)
//	crc32    uint32   (IEEE, over everything after the magic)
//
// Receipt:
//
//	magic    [8]byte "SOCRCT01"
//	stage    uint16-prefixed UTF-8 string
//	version  uint32
//	fp       uint64   (stage fingerprint)
//	nkeys    uint16, then nkeys × uint16-prefixed output key
//	nspends  uint16, then nspends × {mechanism uint16-str, epsilon float64,
//	         sensitivity float64, values uint32}
//	crc32    uint32   (IEEE, over everything after the magic)
const (
	artifactMagic   = "SOCKPT01"
	receiptMagic    = "SOCRCT01"
	artifactSuffix  = ".art"
	receiptSuffix   = ".stage"
	maxHeaderString = 1<<16 - 1
)

// Artifact is one checkpointed stage output.
type Artifact struct {
	Stage       string
	Key         Key
	Version     int
	Fingerprint uint64
	Payload     []byte
}

// Receipt is a stage's commit record: it exists if and only if every
// output artifact of the stage became durable, and it carries the stage's
// ε-spends so the checkpoint directory doubles as a persistent budget
// journal.
type Receipt struct {
	Stage       string
	Version     int
	Fingerprint uint64
	Outputs     []Key
	Spends      []telemetry.ReleaseEvent
}

// SpendRecord is one persisted ε-spend read back from a stage receipt.
type SpendRecord struct {
	Stage       string
	Fingerprint uint64
	Event       telemetry.ReleaseEvent
}

// Store reads and writes checkpoint files in one directory through a
// (possibly fault-injecting) filesystem. Methods are not safe for
// concurrent use; the runner serializes them.
type Store struct {
	dir  string
	fsys faults.FS
}

// OpenStore opens (creating if needed) a checkpoint directory and sweeps
// temp debris left by crashed writes. swept reports what was removed.
func OpenStore(dir string, fsys faults.FS) (s *Store, swept []string, err error) {
	if fsys == nil {
		fsys = faults.OS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("pipeline: opening checkpoint dir %s: %w", dir, err)
	}
	// Sweep all *.tmp regardless of prefix: every atomic write in this
	// directory is ours.
	swept, err = faults.SweepTmp(fsys, dir)
	if err != nil {
		return nil, swept, fmt.Errorf("pipeline: sweeping checkpoint dir %s: %w", dir, err)
	}
	return &Store{dir: dir, fsys: fsys}, swept, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Clear removes every checkpoint file (artifacts, receipts and temp
// debris), implementing -fresh. Foreign files are left alone.
func (s *Store) Clear() error {
	names, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("pipeline: clearing checkpoint dir %s: %w", s.dir, err)
	}
	for _, name := range names {
		if strings.HasSuffix(name, artifactSuffix) ||
			strings.HasSuffix(name, receiptSuffix) ||
			strings.HasSuffix(name, faults.AtomicTmpSuffix) {
			if err := s.fsys.Remove(filepath.Join(s.dir, name)); err != nil {
				return fmt.Errorf("pipeline: clearing checkpoint dir %s: %w", s.dir, err)
			}
		}
	}
	return nil
}

// header helpers: every multi-byte integer is little-endian; strings are
// uint16-length-prefixed UTF-8.

func writeString16(w io.Writer, s string) error {
	if len(s) > maxHeaderString {
		return fmt.Errorf("pipeline: string too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString16(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// SaveArtifact durably writes one artifact.
func (s *Store) SaveArtifact(a Artifact) error {
	var body bytes.Buffer
	if err := writeString16(&body, a.Stage); err != nil {
		return err
	}
	if err := writeString16(&body, string(a.Key)); err != nil {
		return err
	}
	if err := binary.Write(&body, binary.LittleEndian, uint32(a.Version)); err != nil {
		return err
	}
	if err := binary.Write(&body, binary.LittleEndian, a.Fingerprint); err != nil {
		return err
	}
	if err := binary.Write(&body, binary.LittleEndian, uint64(len(a.Payload))); err != nil {
		return err
	}
	body.Write(a.Payload)
	return s.writeChecked(string(a.Key)+artifactSuffix, artifactMagic, body.Bytes())
}

// LoadArtifact reads and validates one artifact. Any validation failure —
// missing file, bad magic, truncation, CRC mismatch — is an error; the
// runner treats all of them as "checkpoint absent".
func (s *Store) LoadArtifact(key Key) (*Artifact, error) {
	body, err := s.readChecked(string(key)+artifactSuffix, artifactMagic)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(body)
	a := &Artifact{}
	if a.Stage, err = readString16(r); err != nil {
		return nil, fmt.Errorf("pipeline: artifact %s: %w", key, err)
	}
	k, err := readString16(r)
	if err != nil {
		return nil, fmt.Errorf("pipeline: artifact %s: %w", key, err)
	}
	a.Key = Key(k)
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("pipeline: artifact %s: %w", key, err)
	}
	a.Version = int(version)
	if err := binary.Read(r, binary.LittleEndian, &a.Fingerprint); err != nil {
		return nil, fmt.Errorf("pipeline: artifact %s: %w", key, err)
	}
	var paylen uint64
	if err := binary.Read(r, binary.LittleEndian, &paylen); err != nil {
		return nil, fmt.Errorf("pipeline: artifact %s: %w", key, err)
	}
	if paylen != uint64(r.Len()) {
		return nil, fmt.Errorf("pipeline: artifact %s: payload length %d does not match remaining %d bytes", key, paylen, r.Len())
	}
	a.Payload = body[len(body)-r.Len():]
	if a.Key != key {
		return nil, fmt.Errorf("pipeline: artifact %s: header names key %q", key, a.Key)
	}
	return a, nil
}

// SaveReceipt durably writes a stage receipt. Callers must only invoke it
// after every artifact the receipt lists is durable: the receipt is the
// stage's commit point.
func (s *Store) SaveReceipt(rc Receipt) error {
	var body bytes.Buffer
	if err := writeString16(&body, rc.Stage); err != nil {
		return err
	}
	if err := binary.Write(&body, binary.LittleEndian, uint32(rc.Version)); err != nil {
		return err
	}
	if err := binary.Write(&body, binary.LittleEndian, rc.Fingerprint); err != nil {
		return err
	}
	if len(rc.Outputs) > maxHeaderString || len(rc.Spends) > maxHeaderString {
		return fmt.Errorf("pipeline: receipt %s: too many outputs or spends", rc.Stage)
	}
	if err := binary.Write(&body, binary.LittleEndian, uint16(len(rc.Outputs))); err != nil {
		return err
	}
	for _, k := range rc.Outputs {
		if err := writeString16(&body, string(k)); err != nil {
			return err
		}
	}
	if err := binary.Write(&body, binary.LittleEndian, uint16(len(rc.Spends))); err != nil {
		return err
	}
	for _, ev := range rc.Spends {
		if err := writeString16(&body, ev.Mechanism); err != nil {
			return err
		}
		if err := binary.Write(&body, binary.LittleEndian, ev.Epsilon); err != nil {
			return err
		}
		if err := binary.Write(&body, binary.LittleEndian, ev.Sensitivity); err != nil {
			return err
		}
		if err := binary.Write(&body, binary.LittleEndian, uint32(ev.Values)); err != nil {
			return err
		}
	}
	return s.writeChecked(rc.Stage+receiptSuffix, receiptMagic, body.Bytes())
}

// LoadReceipt reads and validates a stage receipt.
func (s *Store) LoadReceipt(stage string) (*Receipt, error) {
	body, err := s.readChecked(stage+receiptSuffix, receiptMagic)
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(body)
	rc := &Receipt{}
	if rc.Stage, err = readString16(r); err != nil {
		return nil, fmt.Errorf("pipeline: receipt %s: %w", stage, err)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("pipeline: receipt %s: %w", stage, err)
	}
	rc.Version = int(version)
	if err := binary.Read(r, binary.LittleEndian, &rc.Fingerprint); err != nil {
		return nil, fmt.Errorf("pipeline: receipt %s: %w", stage, err)
	}
	var nkeys uint16
	if err := binary.Read(r, binary.LittleEndian, &nkeys); err != nil {
		return nil, fmt.Errorf("pipeline: receipt %s: %w", stage, err)
	}
	for i := 0; i < int(nkeys); i++ {
		k, err := readString16(r)
		if err != nil {
			return nil, fmt.Errorf("pipeline: receipt %s: %w", stage, err)
		}
		rc.Outputs = append(rc.Outputs, Key(k))
	}
	var nspends uint16
	if err := binary.Read(r, binary.LittleEndian, &nspends); err != nil {
		return nil, fmt.Errorf("pipeline: receipt %s: %w", stage, err)
	}
	for i := 0; i < int(nspends); i++ {
		var ev telemetry.ReleaseEvent
		if ev.Mechanism, err = readString16(r); err != nil {
			return nil, fmt.Errorf("pipeline: receipt %s: %w", stage, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &ev.Epsilon); err != nil {
			return nil, fmt.Errorf("pipeline: receipt %s: %w", stage, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &ev.Sensitivity); err != nil {
			return nil, fmt.Errorf("pipeline: receipt %s: %w", stage, err)
		}
		var values uint32
		if err := binary.Read(r, binary.LittleEndian, &values); err != nil {
			return nil, fmt.Errorf("pipeline: receipt %s: %w", stage, err)
		}
		ev.Values = int(values)
		rc.Spends = append(rc.Spends, ev)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("pipeline: receipt %s: %d trailing bytes", stage, r.Len())
	}
	if rc.Stage != stage {
		return nil, fmt.Errorf("pipeline: receipt %s: header names stage %q", stage, rc.Stage)
	}
	return rc, nil
}

// RemoveReceipt deletes a stage's receipt (invalidating its checkpoint
// before a re-run). Missing receipts are not an error.
func (s *Store) RemoveReceipt(stage string) error {
	err := s.fsys.Remove(filepath.Join(s.dir, stage+receiptSuffix))
	if err != nil && !isNotExist(err) {
		return fmt.Errorf("pipeline: removing receipt %s: %w", stage, err)
	}
	return nil
}

// Ledger scans the durable stage receipts and returns every persisted
// ε-spend, sorted by stage name. Receipts that fail validation are skipped
// and reported by name: a torn receipt means its stage never committed, so
// its spend is (correctly) absent. Infinite-ε events (deliberately
// non-private runs) are included; the caller decides how to count them.
func (s *Store) Ledger() (records []SpendRecord, skipped []string, err error) {
	names, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline: scanning checkpoint dir %s: %w", s.dir, err)
	}
	sort.Strings(names)
	for _, name := range names {
		stage, ok := strings.CutSuffix(name, receiptSuffix)
		if !ok {
			continue
		}
		rc, err := s.LoadReceipt(stage)
		if err != nil {
			skipped = append(skipped, name)
			continue
		}
		for _, ev := range rc.Spends {
			records = append(records, SpendRecord{Stage: rc.Stage, Fingerprint: rc.Fingerprint, Event: ev})
		}
	}
	return records, skipped, nil
}

// SpentEpsilon sums the finite ε of the given records — the sequential-
// composition bound on what the checkpointed pipeline has durably spent.
func SpentEpsilon(records []SpendRecord) float64 {
	var total float64
	for _, r := range records {
		if !math.IsInf(r.Event.Epsilon, 1) {
			total += r.Event.Epsilon
		}
	}
	return total
}

// writeChecked atomically writes magic + body + CRC32(body).
func (s *Store) writeChecked(name, magic string, body []byte) error {
	path := filepath.Join(s.dir, name)
	return faults.WriteAtomicFunc(s.fsys, path, func(w io.Writer) error {
		if _, err := io.WriteString(w, magic); err != nil {
			return err
		}
		if _, err := w.Write(body); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(body))
	})
}

// readChecked reads a checked file and returns its body after verifying
// magic and CRC.
func (s *Store) readChecked(name, magic string) ([]byte, error) {
	f, err := s.fsys.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening %s: %w", name, err)
	}
	data, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		return nil, fmt.Errorf("pipeline: reading %s: close: %w", name, cerr)
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: reading %s: %w", name, err)
	}
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("pipeline: %s: truncated (%d bytes)", name, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("pipeline: %s: bad magic %q", name, data[:len(magic)])
	}
	body := data[len(magic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("pipeline: %s: checksum mismatch (file corrupted)", name)
	}
	return body, nil
}

// isNotExist matches fs.ErrNotExist through the faults.FS wrappers.
func isNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}
