package pipeline

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
)

// testStage is a configurable stage for tests.
type testStage struct {
	name    string
	version int
	fp      uint64
	inputs  []Key
	outputs []Port
	run     func(ctx context.Context, st *State) error
}

func (s *testStage) Name() string        { return s.name }
func (s *testStage) Version() int        { return s.version }
func (s *testStage) Fingerprint() uint64 { return s.fp }
func (s *testStage) Inputs() []Key       { return s.inputs }
func (s *testStage) Outputs() []Port     { return s.outputs }
func (s *testStage) Run(ctx context.Context, st *State) error {
	return s.run(ctx, st)
}

// int64Port is a deterministic codec for int64 values.
func int64Port(k Key) Port {
	return Port{
		Key: k,
		Encode: func(w io.Writer, v any) error {
			i, ok := v.(int64)
			if !ok {
				return fmt.Errorf("want int64, got %T", v)
			}
			return binary.Write(w, binary.LittleEndian, i)
		},
		Decode: func(r io.Reader) (any, error) {
			var i int64
			if err := binary.Read(r, binary.LittleEndian, &i); err != nil {
				return nil, err
			}
			return i, nil
		},
	}
}

// testOpts returns quiet Options writing checkpoints to dir.
func testOpts(dir string) Options {
	return Options{
		CheckpointDir: dir,
		Resume:        true,
		Metrics:       telemetry.NewRegistry(),
		Tracer:        telemetry.NewTracer(),
		Sleep:         func(time.Duration) {},
	}
}

// chain builds the canonical three-stage test pipeline:
// source (emits seed) → double → add_ten. runs counts executions per stage.
func chain(t *testing.T, seed int64, runs map[string]*int) *Pipeline {
	t.Helper()
	bump := func(name string) {
		if runs != nil {
			if _, ok := runs[name]; !ok {
				c := 0
				runs[name] = &c
			}
			*runs[name]++
		}
	}
	p, err := New(
		&testStage{
			name: "source", version: 1, fp: uint64(seed),
			outputs: []Port{int64Port("base")},
			run: func(ctx context.Context, st *State) error {
				bump("source")
				st.Put("base", seed)
				return nil
			},
		},
		&testStage{
			name: "double", version: 1,
			inputs:  []Key{"base"},
			outputs: []Port{int64Port("doubled")},
			run: func(ctx context.Context, st *State) error {
				bump("double")
				v, err := Get[int64](st, "base")
				if err != nil {
					return err
				}
				st.Put("doubled", 2*v)
				return nil
			},
		},
		&testStage{
			name: "add_ten", version: 1,
			inputs:  []Key{"doubled"},
			outputs: []Port{int64Port("final")},
			run: func(ctx context.Context, st *State) error {
				bump("add_ten")
				v, err := Get[int64](st, "doubled")
				if err != nil {
					return err
				}
				st.Put("final", v+10)
				st.RecordSpend(telemetry.ReleaseEvent{Mechanism: "test", Epsilon: 0.5, Sensitivity: 1, Values: 1})
				return nil
			},
		},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func finalValue(t *testing.T, res *Result) int64 {
	t.Helper()
	v, err := Get[int64](res.State, "final")
	if err != nil {
		t.Fatalf("final value: %v", err)
	}
	return v
}

func TestNewValidation(t *testing.T) {
	ok := &testStage{name: "a", outputs: []Port{int64Port("x")},
		run: func(context.Context, *State) error { return nil }}
	cases := []struct {
		name   string
		stages []Stage
		want   string
	}{
		{"empty", nil, "no stages"},
		{"bad name", []Stage{&testStage{name: "Bad-Name"}}, "invalid stage name"},
		{"dup stage", []Stage{ok, &testStage{name: "a"}}, "duplicate stage name"},
		{"negative version", []Stage{&testStage{name: "a", version: -1}}, "negative version"},
		{"unknown input", []Stage{&testStage{name: "a", inputs: []Key{"ghost"}}}, "not produced"},
		{"dup output", []Stage{ok, &testStage{name: "b", outputs: []Port{int64Port("x")}}}, "produced by both"},
		{"bad key", []Stage{&testStage{name: "a", outputs: []Port{int64Port("UPPER")}}}, "not a valid name"},
		{"nil codec", []Stage{&testStage{name: "a", outputs: []Port{{Key: "x"}}}}, "missing its codec"},
	}
	for _, tc := range cases {
		_, err := New(tc.stages...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestRunWithoutCheckpoints(t *testing.T) {
	runs := map[string]*int{}
	p := chain(t, 21, runs)
	opts := testOpts("")
	res, err := p.Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := finalValue(t, res); got != 52 {
		t.Fatalf("final = %d, want 52", got)
	}
	if res.Resumed() != 0 {
		t.Fatalf("resumed %d stages without a checkpoint dir", res.Resumed())
	}
	for name, n := range runs {
		if *n != 1 {
			t.Errorf("stage %s ran %d times, want 1", name, *n)
		}
	}
}

func TestStageMustPublishDeclaredOutputs(t *testing.T) {
	p, err := New(&testStage{
		name: "lazy", outputs: []Port{int64Port("x")},
		run: func(context.Context, *State) error { return nil },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, dir := range []string{"", t.TempDir()} {
		_, err = p.Run(context.Background(), testOpts(dir))
		if err == nil || !strings.Contains(err.Error(), "did not publish") {
			t.Errorf("dir=%q: err = %v, want did-not-publish", dir, err)
		}
	}
}

func TestResumeSkipsCompletedStages(t *testing.T) {
	dir := t.TempDir()
	runs := map[string]*int{}
	p := chain(t, 21, runs)

	res1, err := p.Run(context.Background(), testOpts(dir))
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	res2, err := p.Run(context.Background(), testOpts(dir))
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if got, want := finalValue(t, res2), finalValue(t, res1); got != want {
		t.Fatalf("resumed final = %d, want %d", got, want)
	}
	if res2.Resumed() != 3 {
		t.Fatalf("resumed %d stages, want 3", res2.Resumed())
	}
	for name, n := range runs {
		if *n != 1 {
			t.Errorf("stage %s ran %d times across both runs, want 1", name, *n)
		}
	}
	// Resumed reports carry the persisted spends.
	last := res2.Stages[2]
	if !last.Resumed || len(last.Spends) != 1 || last.Spends[0].Epsilon != 0.5 {
		t.Fatalf("resumed add_ten report = %+v, want 1 spend of ε=0.5", last)
	}
}

func TestResumeOffReRunsButRefreshesCheckpoints(t *testing.T) {
	dir := t.TempDir()
	runs := map[string]*int{}
	p := chain(t, 21, runs)
	opts := testOpts(dir)
	if _, err := p.Run(context.Background(), opts); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	opts.Resume = false
	if _, err := p.Run(context.Background(), opts); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	for name, n := range runs {
		if *n != 2 {
			t.Errorf("stage %s ran %d times, want 2 (Resume off)", name, *n)
		}
	}
}

func TestFreshDiscardsCheckpoints(t *testing.T) {
	dir := t.TempDir()
	runs := map[string]*int{}
	p := chain(t, 21, runs)
	if _, err := p.Run(context.Background(), testOpts(dir)); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	opts := testOpts(dir)
	opts.Fresh = true
	res, err := p.Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("fresh Run: %v", err)
	}
	if res.Resumed() != 0 {
		t.Fatalf("fresh run resumed %d stages", res.Resumed())
	}
	for name, n := range runs {
		if *n != 2 {
			t.Errorf("stage %s ran %d times, want 2", name, *n)
		}
	}
}

func TestVersionBumpInvalidatesStageAndDownstream(t *testing.T) {
	dir := t.TempDir()
	if _, err := chain(t, 21, nil).Run(context.Background(), testOpts(dir)); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	runs := map[string]*int{}
	p := chain(t, 21, runs)
	p.stages[1].(*testStage).version = 2 // bump "double"
	res, err := p.Run(context.Background(), testOpts(dir))
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !res.Stages[0].Resumed {
		t.Errorf("source should have been resumed")
	}
	if res.Stages[1].Resumed || res.Stages[2].Resumed {
		t.Errorf("double and add_ten should have re-run: %+v", res.Stages[1:])
	}
	if _, ran := runs["source"]; ran {
		t.Errorf("source ran despite valid checkpoint")
	}
}

func TestConfigChangeInvalidatesEverything(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.Config = 1
	if _, err := chain(t, 21, nil).Run(context.Background(), opts); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	runs := map[string]*int{}
	opts.Config = 2
	res, err := chain(t, 21, runs).Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if res.Resumed() != 0 {
		t.Fatalf("config change resumed %d stages, want 0", res.Resumed())
	}
}

func TestCorruptArtifactForcesReRun(t *testing.T) {
	dir := t.TempDir()
	if _, err := chain(t, 21, nil).Run(context.Background(), testOpts(dir)); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	// Flip a payload byte in the "doubled" artifact; CRC validation must
	// reject it and re-run "double" (and, because add_ten's checkpoint is
	// still fingerprint-valid, add_ten may resume).
	path := filepath.Join(dir, "doubled.art")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	runs := map[string]*int{}
	res, err := chain(t, 21, runs).Run(context.Background(), testOpts(dir))
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if got := finalValue(t, res); got != 52 {
		t.Fatalf("final = %d, want 52", got)
	}
	if _, ran := runs["double"]; !ran {
		t.Errorf("double should have re-run after artifact corruption")
	}
	if _, ran := runs["source"]; ran {
		t.Errorf("source should have resumed")
	}
}

func TestRetryWithCappedBackoff(t *testing.T) {
	attempts := 0
	p, err := New(&testStage{
		name: "flaky", outputs: []Port{int64Port("x")},
		run: func(ctx context.Context, st *State) error {
			attempts++
			if attempts < 6 {
				return errors.New("transient")
			}
			st.Put("x", int64(7))
			return nil
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var slept []time.Duration
	opts := testOpts("")
	opts.Retries = 5
	opts.Backoff = 10 * time.Millisecond
	opts.Sleep = func(d time.Duration) { slept = append(slept, d) }
	res, err := p.Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stages[0].Attempts != 6 {
		t.Fatalf("attempts = %d, want 6", res.Stages[0].Attempts)
	}
	want := []time.Duration{10, 20, 40, 80, 80} // ms, doubling capped at 8×base
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff[%d] = %v, want %v (all: %v)", i, slept[i], want[i], slept)
		}
	}
}

func TestPermanentFailureAfterRetriesExhausted(t *testing.T) {
	p, err := New(&testStage{
		name: "doomed", outputs: []Port{int64Port("x")},
		run: func(context.Context, *State) error { return errors.New("always") },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	opts := testOpts("")
	opts.Retries = 2
	_, err = p.Run(context.Background(), opts)
	if err == nil || !strings.Contains(err.Error(), "failed after 3 attempt(s)") {
		t.Fatalf("err = %v, want failure after 3 attempts", err)
	}
}

func TestStageTimeout(t *testing.T) {
	p, err := New(&testStage{
		name: "slow", outputs: []Port{int64Port("x")},
		run: func(ctx context.Context, st *State) error {
			<-ctx.Done()
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	opts := testOpts("")
	opts.StageTimeout = 5 * time.Millisecond
	start := time.Now()
	_, err = p.Run(context.Background(), opts)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestTimeoutSwallowedByStageStillFails(t *testing.T) {
	// A stage that ignores cancellation and returns nil must not commit.
	p, err := New(&testStage{
		name: "ignorer", outputs: []Port{int64Port("x")},
		run: func(ctx context.Context, st *State) error {
			<-ctx.Done()
			st.Put("x", int64(1))
			return nil // swallows the timeout
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.StageTimeout = 5 * time.Millisecond
	_, err = p.Run(context.Background(), opts)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ignorer.stage")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("timed-out stage left a receipt (stat err %v)", err)
	}
}

func TestPanicContainedAndRetried(t *testing.T) {
	attempts := 0
	p, err := New(&testStage{
		name: "panicky", outputs: []Port{int64Port("x")},
		run: func(ctx context.Context, st *State) error {
			attempts++
			if attempts == 1 {
				panic(faults.InjectedPanic{Point: "stage.run"})
			}
			st.Put("x", int64(3))
			return nil
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	opts := testOpts("")
	opts.Retries = 1
	res, err := p.Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stages[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Stages[0].Attempts)
	}
}

func TestCancellationNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	p, err := New(&testStage{
		name: "victim", outputs: []Port{int64Port("x")},
		run: func(ctx context.Context, st *State) error {
			attempts++
			cancel()
			<-ctx.Done()
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	opts := testOpts("")
	opts.Retries = 5
	_, err = p.Run(ctx, opts)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retries against a dead parent context)", attempts)
	}
}

func TestSpendPersistedExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	p := chain(t, 21, nil)
	if _, err := p.Run(context.Background(), testOpts(dir)); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	store, _, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	check := func(when string) {
		records, skipped, err := store.Ledger()
		if err != nil {
			t.Fatalf("%s: Ledger: %v", when, err)
		}
		if len(skipped) != 0 {
			t.Fatalf("%s: skipped receipts %v", when, skipped)
		}
		if len(records) != 1 || records[0].Stage != "add_ten" || records[0].Event.Epsilon != 0.5 {
			t.Fatalf("%s: ledger = %+v, want exactly one add_ten spend of ε=0.5", when, records)
		}
		if got := SpentEpsilon(records); math.Abs(got-0.5) > 1e-15 {
			t.Fatalf("%s: SpentEpsilon = %g, want 0.5", when, got)
		}
	}
	check("after first run")
	if _, err := p.Run(context.Background(), testOpts(dir)); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	check("after resumed run")
}

func TestOpenStoreSweepsTempDebris(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "base.art.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := chain(t, 21, nil).Run(context.Background(), testOpts(dir))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Swept) != 1 || res.Swept[0] != "base.art.tmp" {
		t.Fatalf("Swept = %v, want [base.art.tmp]", res.Swept)
	}
	if _, err := os.Stat(filepath.Join(dir, "base.art.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp debris survived open")
	}
}

func TestInfiniteEpsilonExcludedFromSpentTotal(t *testing.T) {
	records := []SpendRecord{
		{Event: telemetry.ReleaseEvent{Epsilon: 1.5}},
		{Event: telemetry.ReleaseEvent{Epsilon: math.Inf(1)}},
	}
	if got := SpentEpsilon(records); got != 1.5 {
		t.Fatalf("SpentEpsilon = %g, want 1.5 (∞ excluded)", got)
	}
}
