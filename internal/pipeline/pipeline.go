// Package pipeline is a checkpointed, resumable stage-graph orchestrator
// for the offline release path (the paper's Algorithm 1 and the experiment
// harness around it): load dataset → similarity batch shards → Louvain
// best-of-N runs → merge/pick → mechanism release → persist.
//
// At the ROADMAP's millions-of-users scale those stages run for hours, and
// a crash near the end of an all-or-nothing run loses everything. Each
// stage here declares typed inputs and outputs; completed stage outputs
// are checkpointed to disk as CRC'd, versioned artifacts written with the
// same crash-safe discipline as internal/release.Store (same-directory
// temp file + fsync + atomic rename + directory fsync, via
// faults.WriteAtomicFunc). A resumed run fingerprints every stage over
// (config, seed, external-input hashes, code-level stage version, upstream
// fingerprints) and skips stages whose checkpoints match, re-running from
// the first invalidated stage.
//
// # Determinism and the privacy budget
//
// Every stage must be a deterministic function of its fingerprinted
// inputs: seeded noise, seeded clustering order, seeded sampling. That is
// what makes resumption privacy-sound — re-running an interrupted release
// stage reproduces the *same* noisy values, so the bytes that eventually
// leave the trust boundary are identical whether or not the run crashed,
// and publishing the same draw twice is one release, not two. The
// checkpoint store doubles as a persistent budget journal: a stage that
// spends ε records the spend in its stage receipt (State.RecordSpend), the
// receipt becomes durable atomically after the stage's outputs, and
// Store.Ledger reads the spends back. Because a receipt either exists once
// or not at all, each ε-spend is recorded exactly once across arbitrary
// crash/resume sequences.
package pipeline

import (
	"context"
	"fmt"
	"io"
	"sync"

	"socialrec/internal/telemetry"
)

// Key names one value flowing between stages. Keys must be valid telemetry
// names ([a-z][a-z0-9_]*) because they become checkpoint file names and
// metric-adjacent log tokens.
type Key string

// Port declares one typed stage output: the key it is published under and
// the codec that round-trips it through a checkpoint artifact. Encode must
// be deterministic — the same value must always serialize to the same
// bytes — or resume verification and the byte-identical-release guarantee
// break.
type Port struct {
	Key Key
	// Encode serializes v for checkpointing.
	Encode func(w io.Writer, v any) error
	// Decode reconstructs the value from a checkpoint artifact.
	Decode func(r io.Reader) (any, error)
}

// Stage is one unit of the offline pipeline. Implementations must be
// deterministic functions of their declared inputs and fingerprint, and
// Run must honor ctx — return promptly on cancellation — so per-stage
// timeouts and operator interrupts work (sociolint's ctxstage analyzer
// enforces the latter).
type Stage interface {
	// Name identifies the stage; it must be a valid telemetry name and
	// unique within a pipeline. The stage tracer records spans under it
	// and the checkpoint receipt is stored as "<name>.stage".
	Name() string
	// Version is the code-level stage version. Bumping it invalidates
	// every existing checkpoint of this stage (and, through fingerprint
	// chaining, of all downstream stages).
	Version() int
	// Fingerprint folds stage-external inputs — a source file's content
	// hash, a generator preset's parameters — into the stage's cache key.
	// Stages whose behavior is fully determined by their declared inputs
	// and the run's config fingerprint return 0.
	Fingerprint() uint64
	// Inputs lists the keys this stage reads. Each must be produced by an
	// earlier stage in the pipeline.
	Inputs() []Key
	// Outputs lists the typed values this stage publishes.
	Outputs() []Port
	// Run computes the outputs from the inputs in st. It must honor ctx.
	Run(ctx context.Context, st *State) error
}

// State is the value bag a pipeline threads through its stages. It is safe
// for concurrent use (a stage may fan work out internally).
type State struct {
	mu     sync.Mutex
	vals   map[Key]any
	spends []telemetry.ReleaseEvent
}

// NewState returns an empty state.
func NewState() *State {
	return &State{vals: make(map[Key]any)}
}

// Put publishes a value under key.
func (st *State) Put(k Key, v any) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.vals[k] = v
}

// Value returns the raw value under key.
func (st *State) Value(k Key) (any, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	v, ok := st.vals[k]
	return v, ok
}

// Get returns the value under key asserted to type T.
func Get[T any](st *State, k Key) (T, error) {
	var zero T
	v, ok := st.Value(k)
	if !ok {
		return zero, fmt.Errorf("pipeline: no value for key %q", k)
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("pipeline: value for key %q is %T, want %T", k, v, zero)
	}
	return t, nil
}

// RecordSpend notes that the currently running stage consumed privacy
// budget. The runner folds recorded spends into the stage's checkpoint
// receipt, making the spend durable exactly when (and only when) the
// stage's outputs are — the persistence that lets Store.Ledger report each
// ε-spend exactly once across crash/resume sequences. Stages call this in
// addition to (not instead of) the process-wide telemetry ledger their
// mechanism constructors already feed.
func (st *State) RecordSpend(ev telemetry.ReleaseEvent) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.spends = append(st.spends, ev)
}

// RecordSpendCtx is RecordSpend stamping the context's active trace id into
// the event (when the event doesn't already carry one), so a checkpointed
// receipt names the traced run that spent the ε.
func (st *State) RecordSpendCtx(ctx context.Context, ev telemetry.ReleaseEvent) {
	if ev.TraceID == "" {
		ev.TraceID = telemetry.TraceIDFrom(ctx)
	}
	st.RecordSpend(ev)
}

// drainSpends removes and returns the spends accumulated since the last
// drain; the runner calls it after each stage.
func (st *State) drainSpends() []telemetry.ReleaseEvent {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.spends
	st.spends = nil
	return out
}

// Pipeline is a validated, ordered sequence of stages.
type Pipeline struct {
	stages []Stage
}

// New validates the stage sequence: names and keys must be well formed,
// stage names and output keys unique, and every input produced by an
// earlier stage. (The graph is given in execution order; the validation
// makes it a DAG by construction.)
func New(stages ...Stage) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: no stages")
	}
	seenStage := make(map[string]bool, len(stages))
	produced := make(map[Key]string)
	for _, s := range stages {
		name := s.Name()
		if !validName(name) {
			return nil, fmt.Errorf("pipeline: invalid stage name %q (want [a-z][a-z0-9_]*)", name)
		}
		if seenStage[name] {
			return nil, fmt.Errorf("pipeline: duplicate stage name %q", name)
		}
		seenStage[name] = true
		if s.Version() < 0 {
			return nil, fmt.Errorf("pipeline: stage %q has negative version", name)
		}
		for _, in := range s.Inputs() {
			if _, ok := produced[in]; !ok {
				return nil, fmt.Errorf("pipeline: stage %q input %q is not produced by any earlier stage", name, in)
			}
		}
		for _, out := range s.Outputs() {
			if !validName(string(out.Key)) {
				return nil, fmt.Errorf("pipeline: stage %q output key %q is not a valid name", name, out.Key)
			}
			if prev, dup := produced[out.Key]; dup {
				return nil, fmt.Errorf("pipeline: output key %q produced by both %q and %q", out.Key, prev, name)
			}
			if out.Encode == nil || out.Decode == nil {
				return nil, fmt.Errorf("pipeline: stage %q output %q is missing its codec", name, out.Key)
			}
			produced[out.Key] = name
		}
	}
	return &Pipeline{stages: stages}, nil
}

// Stages returns the pipeline's stages in execution order.
func (p *Pipeline) Stages() []Stage { return p.stages }

// validName mirrors telemetry's name rule: [a-z][a-z0-9_]*. Stage names
// become tracer stage names and checkpoint file names, so the same
// no-sensitive-tokens shape applies.
func validName(s string) bool {
	if len(s) == 0 {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r == '_' && i > 0:
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
