package pipeline

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"log/slog"
	"time"

	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// Options configures one pipeline run.
type Options struct {
	// CheckpointDir is where stage outputs are checkpointed; "" disables
	// checkpointing entirely (the pipeline still runs, nothing persists).
	CheckpointDir string
	// Fresh discards any existing checkpoints before running, forcing
	// every stage to re-run.
	Fresh bool
	// Resume permits reusing matching checkpoints. With Resume false and
	// Fresh false, existing checkpoints are left in place but ignored and
	// overwritten as stages complete.
	Resume bool
	// Config fingerprints the run configuration (flags, seed, ε, dataset
	// identity as the caller defines it). It is folded into every stage's
	// fingerprint, so any config change invalidates all checkpoints.
	Config uint64
	// FS is the filesystem checkpoints are written through; nil selects
	// faults.OS. Tests inject a faults.NewFS wrapper to simulate crashes
	// mid-checkpoint.
	FS faults.FS
	// StageTimeout bounds each stage attempt via context; 0 means no
	// timeout.
	StageTimeout time.Duration
	// Retries is how many times a failed stage attempt is retried (so a
	// stage runs at most Retries+1 times). Context cancellation is never
	// retried.
	Retries int
	// Backoff is the sleep before the first retry, doubling per retry and
	// capped at 8×Backoff. 0 retries immediately.
	Backoff time.Duration
	// HeartbeatEvery logs (and counts) a progress heartbeat for a stage
	// that has been running this long without completing; 0 disables.
	HeartbeatEvery time.Duration
	// Logger receives progress records; nil discards them. The supplied
	// handler is wrapped with trace.NewSlogHandler, so every record carries
	// the run's trace_id for correlation with /debug/traces.
	Logger *slog.Logger
	// Metrics receives the pipeline counters/gauges; nil selects
	// telemetry.Default().
	Metrics *telemetry.Registry
	// Tracer records per-stage spans; nil selects telemetry.Stages().
	Tracer *telemetry.Tracer
	// Sleep replaces time.Sleep for backoff waits (tests); nil selects
	// time.Sleep.
	Sleep func(time.Duration)
}

// StageReport describes how one stage completed.
type StageReport struct {
	Stage       string
	Fingerprint uint64
	// Resumed is true when the stage was skipped because its checkpoint
	// matched; its outputs were loaded from disk.
	Resumed bool
	// Attempts is how many times Run was invoked (0 when resumed).
	Attempts int
	Duration time.Duration
	// Spends are the ε-spends the stage recorded (from its receipt when
	// resumed).
	Spends []telemetry.ReleaseEvent
}

// Result is the outcome of a pipeline run.
type Result struct {
	// State holds every stage output, resumed or computed.
	State *State
	// Stages reports per-stage outcomes in execution order.
	Stages []StageReport
	// Swept lists temp debris removed when the checkpoint dir was opened.
	Swept []string
}

// Resumed counts the stages that were served from checkpoints.
func (r *Result) Resumed() int {
	n := 0
	for _, s := range r.Stages {
		if s.Resumed {
			n++
		}
	}
	return n
}

// pipelineMetrics are the runner's instruments, registered once per
// registry (telemetry registration is idempotent).
type pipelineMetrics struct {
	run        *telemetry.Counter
	resumed    *telemetry.Counter
	retries    *telemetry.Counter
	failures   *telemetry.Counter
	ckptWrites *telemetry.Counter
	ckptBad    *telemetry.Counter
	heartbeats *telemetry.Counter
	inflight   *telemetry.Gauge
}

func newPipelineMetrics(reg *telemetry.Registry) *pipelineMetrics {
	return &pipelineMetrics{
		run: reg.NewCounter("pipeline_stages_run_total",
			"pipeline stages executed (not resumed from checkpoint)"),
		resumed: reg.NewCounter("pipeline_stages_resumed_total",
			"pipeline stages skipped because a matching checkpoint existed"),
		retries: reg.NewCounter("pipeline_stage_retries_total",
			"pipeline stage attempts retried after a failure"),
		failures: reg.NewCounter("pipeline_stage_failures_total",
			"pipeline stages that failed permanently"),
		ckptWrites: reg.NewCounter("pipeline_checkpoint_writes_total",
			"checkpoint artifacts and receipts written durably"),
		ckptBad: reg.NewCounter("pipeline_checkpoint_invalid_total",
			"checkpoints ignored because they were corrupt, truncated or fingerprint-stale"),
		heartbeats: reg.NewCounter("pipeline_heartbeats_total",
			"heartbeat progress ticks emitted by long-running stages"),
		inflight: reg.NewGauge("pipeline_stages_inflight",
			"pipeline stages currently executing"),
	}
}

// fingerprint chains a stage's cache key from everything that determines
// its output: stage identity and code version, the stage's external-input
// hash, the run config, and the fingerprints of its inputs (which chain
// back to their producers, so an upstream change cascades downstream).
func fingerprint(s Stage, config uint64, inputFPs []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(s.Name()))
	put(uint64(s.Version()))
	put(s.Fingerprint())
	put(config)
	for _, fp := range inputFPs {
		put(fp)
	}
	return h.Sum64()
}

// artifactFingerprint derives an output artifact's fingerprint from its
// producing stage's fingerprint and its key.
func artifactFingerprint(stageFP uint64, key Key) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], stageFP)
	h.Write(buf[:])
	h.Write([]byte(key))
	return h.Sum64()
}

// Run executes the pipeline. With a checkpoint directory it resumes from
// the first stage whose checkpoint is absent, corrupt or fingerprint-stale
// and checkpoints every stage it runs; without one it simply executes the
// stages in order. Run returns the first permanent stage error; state
// already checkpointed remains durable, so a subsequent Run with Resume
// picks up where this one stopped.
func (p *Pipeline) Run(ctx context.Context, opts Options) (res *Result, err error) {
	// The whole run is one trace: stage attempts become child spans, and a
	// caller that passes an already-traced context (an admin request) gets
	// the run folded into its own trace instead.
	ctx, rootSpan := trace.Start(ctx, "pipeline_run")
	defer func() {
		if err != nil {
			rootSpan.SetStatus(trace.StatusError)
		}
		rootSpan.End()
	}()
	logf := func(string, ...any) {}
	if opts.Logger != nil {
		logger := slog.New(trace.NewSlogHandler(opts.Logger.Handler()))
		logf = func(format string, args ...any) {
			logger.InfoContext(ctx, fmt.Sprintf(format, args...))
		}
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.Default()
	}
	tracer := opts.Tracer
	if tracer == nil {
		tracer = telemetry.Stages()
	}
	met := newPipelineMetrics(reg)

	res = &Result{State: NewState()}
	var store *Store
	if opts.CheckpointDir != "" {
		var err error
		store, res.Swept, err = OpenStore(opts.CheckpointDir, opts.FS)
		if err != nil {
			return res, err
		}
		for _, name := range res.Swept {
			logf("pipeline: swept crashed-write debris %s", name)
		}
		if opts.Fresh {
			if err := store.Clear(); err != nil {
				return res, err
			}
			logf("pipeline: cleared checkpoints in %s (fresh run)", store.Dir())
		}
	}

	fps := make(map[Key]uint64)
	for _, stage := range p.stages {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("pipeline: canceled before stage %s: %w", stage.Name(), err)
		}
		inputFPs := make([]uint64, 0, len(stage.Inputs()))
		for _, in := range stage.Inputs() {
			inputFPs = append(inputFPs, fps[in])
		}
		fp := fingerprint(stage, opts.Config, inputFPs)
		for _, out := range stage.Outputs() {
			fps[out.Key] = artifactFingerprint(fp, out.Key)
		}

		if store != nil && opts.Resume && !opts.Fresh {
			if spends, ok := p.tryResume(store, stage, fp, res.State, met, logf); ok {
				met.resumed.Inc()
				res.Stages = append(res.Stages, StageReport{
					Stage: stage.Name(), Fingerprint: fp, Resumed: true, Spends: spends,
				})
				logf("pipeline: stage %s resumed from checkpoint (fingerprint %016x)", stage.Name(), fp)
				continue
			}
		}

		report, err := p.runStage(ctx, stage, fp, res.State, store, opts, met, tracer, logf, sleep)
		res.Stages = append(res.Stages, report)
		if err != nil {
			met.failures.Inc()
			return res, err
		}
	}
	return res, nil
}

// tryResume loads a stage's checkpoint if its receipt and every output
// artifact validate against the expected fingerprint. On any mismatch it
// reports false and the stage re-runs.
func (p *Pipeline) tryResume(store *Store, stage Stage, fp uint64, st *State, met *pipelineMetrics, logf func(string, ...any)) ([]telemetry.ReleaseEvent, bool) {
	rc, err := store.LoadReceipt(stage.Name())
	if err != nil {
		if !isNotExist(err) {
			met.ckptBad.Inc()
			logf("pipeline: stage %s checkpoint unusable: %v", stage.Name(), err)
		}
		return nil, false
	}
	if rc.Fingerprint != fp || rc.Version != stage.Version() {
		met.ckptBad.Inc()
		logf("pipeline: stage %s checkpoint stale (have fingerprint %016x v%d, want %016x v%d)",
			stage.Name(), rc.Fingerprint, rc.Version, fp, stage.Version())
		return nil, false
	}
	// Decode into a scratch map first so a corrupt later artifact cannot
	// leave a half-loaded state.
	loaded := make(map[Key]any, len(stage.Outputs()))
	for _, out := range stage.Outputs() {
		a, err := store.LoadArtifact(out.Key)
		if err != nil {
			met.ckptBad.Inc()
			logf("pipeline: stage %s artifact %s unusable: %v", stage.Name(), out.Key, err)
			return nil, false
		}
		want := artifactFingerprint(fp, out.Key)
		if a.Fingerprint != want || a.Stage != stage.Name() {
			met.ckptBad.Inc()
			logf("pipeline: stage %s artifact %s stale (fingerprint %016x, want %016x)",
				stage.Name(), out.Key, a.Fingerprint, want)
			return nil, false
		}
		v, err := out.Decode(bytes.NewReader(a.Payload))
		if err != nil {
			met.ckptBad.Inc()
			logf("pipeline: stage %s artifact %s undecodable: %v", stage.Name(), out.Key, err)
			return nil, false
		}
		loaded[out.Key] = v
	}
	for k, v := range loaded {
		st.Put(k, v)
	}
	return rc.Spends, true
}

// runStage executes one stage with retries, timeout, heartbeat and
// checkpointing.
func (p *Pipeline) runStage(ctx context.Context, stage Stage, fp uint64, st *State, store *Store, opts Options, met *pipelineMetrics, tracer *telemetry.Tracer, logf func(string, ...any), sleep func(time.Duration)) (StageReport, error) {
	report := StageReport{Stage: stage.Name(), Fingerprint: fp}
	if store != nil {
		// Invalidate any stale commit point before mutating artifacts, so
		// a crash mid-rewrite can never pair an old receipt with new
		// artifacts of a different fingerprint.
		if err := store.RemoveReceipt(stage.Name()); err != nil {
			return report, err
		}
	}

	start := time.Now()
	defer func() { report.Duration = time.Since(start) }()

	var lastErr error
	for attempt := 0; attempt <= opts.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return report, fmt.Errorf("pipeline: stage %s canceled: %w", stage.Name(), err)
		}
		if attempt > 0 {
			met.retries.Inc()
			backoff := opts.Backoff << (attempt - 1)
			if max := 8 * opts.Backoff; backoff > max {
				backoff = max
			}
			if backoff > 0 {
				sleep(backoff)
			}
			logf("pipeline: stage %s retrying (attempt %d of %d): %v",
				stage.Name(), attempt+1, opts.Retries+1, lastErr)
		}
		report.Attempts++
		lastErr = p.attemptStage(ctx, stage, st, opts, met, tracer, logf)
		if lastErr == nil {
			break
		}
		if ctx.Err() != nil {
			// The parent context died (operator interrupt, global
			// deadline): do not burn retries against it.
			return report, fmt.Errorf("pipeline: stage %s: %w", stage.Name(), lastErr)
		}
	}
	if lastErr != nil {
		return report, fmt.Errorf("pipeline: stage %s failed after %d attempt(s): %w",
			stage.Name(), report.Attempts, lastErr)
	}
	report.Spends = st.drainSpends()
	met.run.Inc()

	if store != nil {
		outputs := stage.Outputs()
		keys := make([]Key, 0, len(outputs))
		for _, out := range outputs {
			v, ok := st.Value(out.Key)
			if !ok {
				return report, fmt.Errorf("pipeline: stage %s did not publish declared output %q", stage.Name(), out.Key)
			}
			payload, err := encodeValue(out, v)
			if err != nil {
				return report, fmt.Errorf("pipeline: stage %s encoding %q: %w", stage.Name(), out.Key, err)
			}
			if err := store.SaveArtifact(Artifact{
				Stage:       stage.Name(),
				Key:         out.Key,
				Version:     stage.Version(),
				Fingerprint: artifactFingerprint(fp, out.Key),
				Payload:     payload,
			}); err != nil {
				return report, fmt.Errorf("pipeline: stage %s checkpointing %q: %w", stage.Name(), out.Key, err)
			}
			met.ckptWrites.Inc()
			keys = append(keys, out.Key)
		}
		if err := store.SaveReceipt(Receipt{
			Stage:       stage.Name(),
			Version:     stage.Version(),
			Fingerprint: fp,
			Outputs:     keys,
			Spends:      report.Spends,
		}); err != nil {
			return report, fmt.Errorf("pipeline: stage %s committing receipt: %w", stage.Name(), err)
		}
		met.ckptWrites.Inc()
	} else {
		// Without a checkpoint dir, still verify the stage kept its
		// declared-output contract.
		for _, out := range stage.Outputs() {
			if _, ok := st.Value(out.Key); !ok {
				return report, fmt.Errorf("pipeline: stage %s did not publish declared output %q", stage.Name(), out.Key)
			}
		}
	}
	logf("pipeline: stage %s completed in %s (%d attempt(s))",
		stage.Name(), time.Since(start).Round(time.Millisecond), report.Attempts)
	return report, nil
}

// attemptStage runs one attempt under the per-stage timeout with panic
// containment and heartbeat progress.
func (p *Pipeline) attemptStage(ctx context.Context, stage Stage, st *State, opts Options, met *pipelineMetrics, tracer *telemetry.Tracer, logf func(string, ...any)) (err error) {
	runCtx := ctx
	if opts.StageTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, opts.StageTimeout)
		defer cancel()
	}

	stop := make(chan struct{})
	if opts.HeartbeatEvery > 0 {
		started := time.Now()
		go func() {
			tick := time.NewTicker(opts.HeartbeatEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					met.heartbeats.Inc()
					logf("pipeline: stage %s still running (%s elapsed)",
						stage.Name(), time.Since(started).Round(time.Second))
				}
			}
		}()
	}
	defer close(stop)

	met.inflight.Add(1)
	defer met.inflight.Add(-1)
	// Two spans, same stage name: the telemetry span feeds the aggregate
	// stage table, the trace span joins the run's causal tree. A failed or
	// panicked attempt marks the trace span errored, which forces the whole
	// run trace through tail retention.
	span := tracer.Start(stage.Name())
	defer span.End()
	runCtx, tsp := trace.StartChild(runCtx, stage.Name())
	defer func() {
		if err != nil {
			tsp.SetStatus(trace.StatusError)
		}
		tsp.End()
	}()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline: stage %s panicked: %v", stage.Name(), r)
		}
	}()
	if err := stage.Run(runCtx, st); err != nil {
		return err
	}
	// A stage that swallowed its context's cancellation must still not
	// commit: a timed-out attempt is a failed attempt.
	return runCtx.Err()
}

func encodeValue(out Port, v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := out.Encode(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
