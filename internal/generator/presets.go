package generator

import "socialrec/internal/graph"

// Preset bundles a calibrated social + preference configuration mimicking
// one of the paper's datasets (Table 1).
type Preset struct {
	Name   string
	Social SocialConfig
	Prefs  PreferenceConfig
}

// LastFMLike mirrors the HetRec Last.fm dataset of Table 1 at full scale:
// 1,892 users, ~12.7K social edges (avg degree ≈ 13.4), 17,632 items and
// ~92K preference edges, with the moderate community count (≈35 clusters,
// largest ≈28% of users) reported in §6.2.
func LastFMLike(seed int64) Preset {
	return Preset{
		Name: "lastfm-like",
		Social: SocialConfig{
			NumUsers:       1892,
			NumCommunities: 24,
			AvgDegree:      13.4,
			IntraFraction:  0.7,
			CommunitySkew:  0.85,
			// DegreeSkew 1.1 reproduces Table 1's degree std of 17.3
			// with ~60% of users at degree ≤ 10, the population whose
			// approximation error drives Fig. 3.
			DegreeSkew: 1.1,
			Seed:       seed,
		},
		Prefs: PreferenceConfig{
			NumItems:          17632,
			NumEdges:          92198,
			CommunityAffinity: 0.75,
			PopularitySkew:    1.05,
			TasteBreadth:      1200,
			// Table 1 reports 48.7 preference edges per user with std
			// 6.9 — nearly uniform activity.
			ActivitySkew:    6,
			NicheFraction:   0.25,
			SocialContagion: 0.5,
			Seed:            seed + 1,
		},
	}
}

// FlixsterLike mirrors the Flixster dataset of Table 1 scaled down ~1:3.4
// in users (137,372 → 40,000) so experiments run on a single machine,
// keeping the properties the paper attributes Flixster's robustness to:
// higher average user degree (≈18.5), much larger communities (mean cluster
// size near 900 here vs the paper's 2,986 — the scale-down necessarily
// shrinks clusters, which slightly weakens robustness at the most extreme
// privacy settings; see EXPERIMENTS.md), heavy activity skew (preference
// std ≈ 4× mean, Table 1: 54.8 ± 218.2) and strong popularity skew. The
// paper itself evaluated NDCG on a 10,000-user sample for the same
// tractability reason.
func FlixsterLike(seed int64) Preset {
	return Preset{
		Name: "flixster-like",
		Social: SocialConfig{
			NumUsers:       40000,
			NumCommunities: 30,
			AvgDegree:      18.5,
			IntraFraction:  0.75,
			CommunitySkew:  0.75,
			DegreeSkew:     1.2,
			Seed:           seed,
		},
		Prefs: PreferenceConfig{
			NumItems:          10000,
			NumEdges:          2200000,
			CommunityAffinity: 0.7,
			PopularitySkew:    1.15,
			TasteBreadth:      900,
			ActivitySkew:      1.3,
			NicheFraction:     0.2,
			SocialContagion:   0.5,
			Seed:              seed + 1,
		},
	}
}

// TinyTest is a small, fast preset for tests and the quickstart example.
func TinyTest(seed int64) Preset {
	return Preset{
		Name: "tiny-test",
		Social: SocialConfig{
			NumUsers:       300,
			NumCommunities: 6,
			AvgDegree:      10,
			IntraFraction:  0.85,
			CommunitySkew:  0.7,
			DegreeSkew:     2.2,
			Seed:           seed,
		},
		Prefs: PreferenceConfig{
			NumItems:          800,
			NumEdges:          6000,
			CommunityAffinity: 0.75,
			PopularitySkew:    1.0,
			TasteBreadth:      120,
			ActivitySkew:      2.0,
			Seed:              seed + 1,
		},
	}
}

// Generate materializes the preset into concrete graphs, returning the
// social graph, the planted community ground truth, and the preference
// graph.
func (p Preset) Generate() (*graph.Social, []int32, *graph.Preference, error) {
	social, community, err := Social(p.Social)
	if err != nil {
		return nil, nil, nil, err
	}
	prefs, err := Preferences(social, community, p.Prefs)
	if err != nil {
		return nil, nil, nil, err
	}
	return social, community, prefs, nil
}
