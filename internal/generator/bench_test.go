package generator

import "testing"

func BenchmarkSocialGeneration(b *testing.B) {
	cfg := LastFMLike(1).Social
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, _, err := Social(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreferenceGeneration(b *testing.B) {
	p := LastFMLike(1)
	social, comm, err := Social(p.Social)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := p.Prefs
		cfg.Seed = int64(i)
		if _, err := Preferences(social, comm, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
