package generator

import (
	"math"
	"math/rand"
	"testing"

	"socialrec/internal/community"
)

func TestSocialConfigValidate(t *testing.T) {
	good := SocialConfig{NumUsers: 10, NumCommunities: 2, AvgDegree: 3, IntraFraction: 0.8}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []SocialConfig{
		{NumUsers: 0, NumCommunities: 1, AvgDegree: 1},
		{NumUsers: 10, NumCommunities: 0, AvgDegree: 1},
		{NumUsers: 10, NumCommunities: 11, AvgDegree: 1},
		{NumUsers: 10, NumCommunities: 2, AvgDegree: 0},
		{NumUsers: 10, NumCommunities: 2, AvgDegree: 1, IntraFraction: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSocialGeneratorShape(t *testing.T) {
	cfg := SocialConfig{
		NumUsers: 1000, NumCommunities: 8, AvgDegree: 12,
		IntraFraction: 0.85, Seed: 3,
	}
	g, comm, err := Social(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumUsers() != 1000 {
		t.Fatalf("NumUsers = %d", g.NumUsers())
	}
	if len(comm) != 1000 {
		t.Fatalf("community labels = %d", len(comm))
	}
	mean, _ := g.AvgDegree()
	if mean < 9 || mean > 13 {
		t.Errorf("avg degree = %v, want ≈ 12 (some shortfall from rejection is fine)", mean)
	}
	for _, c := range comm {
		if c < 0 || int(c) >= 8 {
			t.Fatalf("community label %d out of range", c)
		}
	}
}

func TestSocialGeneratorDeterministic(t *testing.T) {
	cfg := SocialConfig{NumUsers: 200, NumCommunities: 4, AvgDegree: 8, IntraFraction: 0.8, Seed: 11}
	g1, c1, err := Social(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, c2, err := Social(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed, different edge counts")
	}
	for u := 0; u < 200; u++ {
		if c1[u] != c2[u] {
			t.Fatal("same seed, different communities")
		}
		n1, n2 := g1.Neighbors(u), g2.Neighbors(u)
		if len(n1) != len(n2) {
			t.Fatal("same seed, different adjacency")
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatal("same seed, different adjacency")
			}
		}
	}
}

// TestPlantedCommunitiesDetectable is the generator's core fitness-for-
// purpose test: Louvain on the generated graph must recover a partition
// close to the planted one (high modularity, comparable cluster count).
func TestPlantedCommunitiesDetectable(t *testing.T) {
	cfg := SocialConfig{
		NumUsers: 1200, NumCommunities: 10, AvgDegree: 14,
		IntraFraction: 0.85, Seed: 5,
	}
	g, _, err := Social(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := community.Louvain(g, community.Options{Seed: 1})
	q := community.Modularity(g, c)
	if q < 0.5 {
		t.Errorf("modularity of Louvain on generated graph = %v, want > 0.5", q)
	}
	if c.NumClusters() < 5 || c.NumClusters() > 40 {
		t.Errorf("clusters = %d, want near the planted 10", c.NumClusters())
	}
}

func TestPreferencesShape(t *testing.T) {
	comm := make([]int32, 500)
	rng := rand.New(rand.NewSource(1))
	for i := range comm {
		comm[i] = int32(rng.Intn(5))
	}
	cfg := PreferenceConfig{
		NumItems: 2000, NumEdges: 10000, CommunityAffinity: 0.7,
		PopularitySkew: 1.0, Seed: 2,
	}
	p, err := Preferences(nil, comm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumUsers() != 500 || p.NumItems() != 2000 {
		t.Fatalf("shape = (%d, %d)", p.NumUsers(), p.NumItems())
	}
	// Every user has at least one preference; total near the target.
	for u := 0; u < 500; u++ {
		if p.UserDegree(u) == 0 {
			t.Fatalf("user %d has no preferences", u)
		}
	}
	if p.NumEdges() < 7000 || p.NumEdges() > 13000 {
		t.Errorf("|E_p| = %d, want ≈ 10000", p.NumEdges())
	}
}

// TestCommunityCorrelation verifies the property the recommender feeds on:
// same-community user pairs share more items than cross-community pairs.
func TestCommunityCorrelation(t *testing.T) {
	comm := make([]int32, 400)
	for i := range comm {
		comm[i] = int32(i % 4)
	}
	p, err := Preferences(nil, comm, PreferenceConfig{
		NumItems: 3000, NumEdges: 12000, CommunityAffinity: 0.8,
		PopularitySkew: 1.0, TasteBreadth: 200, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	overlap := func(u, v int) int {
		a, b := p.Items(u), p.Items(v)
		i, j, n := 0, 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				n++
				i++
				j++
			}
		}
		return n
	}
	rng := rand.New(rand.NewSource(4))
	var same, cross float64
	const pairs = 4000
	for k := 0; k < pairs; k++ {
		u, v := rng.Intn(400), rng.Intn(400)
		if u == v {
			continue
		}
		o := float64(overlap(u, v))
		if comm[u] == comm[v] {
			same += o
		} else {
			cross += o
		}
	}
	if same <= cross {
		t.Errorf("same-community overlap (%v) should exceed cross-community (%v)", same, cross)
	}
}

func TestPreferencesValidation(t *testing.T) {
	comm := []int32{0, 1}
	if _, err := Preferences(nil, comm, PreferenceConfig{NumItems: 0, NumEdges: 5}); err == nil {
		t.Error("NumItems = 0 should fail")
	}
	if _, err := Preferences(nil, comm, PreferenceConfig{NumItems: 5, NumEdges: -1}); err == nil {
		t.Error("negative NumEdges should fail")
	}
	if _, err := Preferences(nil, comm, PreferenceConfig{NumItems: 5, NumEdges: 5, CommunityAffinity: 2}); err == nil {
		t.Error("affinity > 1 should fail")
	}
}

func TestPresetsGenerate(t *testing.T) {
	p := TinyTest(1)
	social, comm, prefs, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if social.NumUsers() != p.Social.NumUsers || prefs.NumItems() != p.Prefs.NumItems {
		t.Error("preset dimensions not honored")
	}
	if len(comm) != social.NumUsers() {
		t.Error("community labels missing")
	}
}

// TestLastFMLikeMatchesTable1 checks the calibrated preset against the
// paper's Table-1 statistics within generation tolerance.
func TestLastFMLikeMatchesTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("generation of the full-scale preset")
	}
	social, _, prefs, err := LastFMLike(7).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if social.NumUsers() != 1892 {
		t.Errorf("|U| = %d, want 1892", social.NumUsers())
	}
	mean, _ := social.AvgDegree()
	if math.Abs(mean-13.4) > 2.5 {
		t.Errorf("avg degree = %v, want ≈ 13.4", mean)
	}
	if prefs.NumItems() != 17632 {
		t.Errorf("|I| = %d, want 17632", prefs.NumItems())
	}
	if e := prefs.NumEdges(); e < 70000 || e > 110000 {
		t.Errorf("|E_p| = %d, want ≈ 92198", e)
	}
	if s := prefs.Sparsity(); s < 0.99 {
		t.Errorf("sparsity = %v, want > 0.99", s)
	}
}

func TestAliasMethodDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := newAlias([]float64{1, 2, 3, 0}, rng)
	counts := make([]int, 4)
	const n = 120000
	for i := 0; i < n; i++ {
		counts[a.draw()]++
	}
	if counts[3] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[3])
	}
	for i, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency = %v, want %v", i, got, want)
		}
	}
}

func TestAliasDegenerateUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := newAlias([]float64{0, 0, 0}, rng)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[a.draw()] = true
	}
	if len(seen) != 3 {
		t.Errorf("degenerate alias should fall back to uniform; saw %v", seen)
	}
}
