// Package generator synthesizes social and preference graphs with the two
// structural properties the paper's framework depends on, calibrated to the
// Table-1 statistics of the real datasets the paper evaluates on (which are
// web downloads unavailable offline; see DESIGN.md for the substitution
// argument):
//
//   - The social graph has pronounced community structure with heavy-tailed
//     community sizes and degrees (a degree-corrected planted-partition
//     model). Communities are what Louvain must find and what makes cluster
//     averages good proxies for similarity sets.
//   - The preference graph is community-correlated with Zipf item
//     popularity: users in the same community prefer overlapping item sets,
//     so structurally similar users genuinely predict each other's
//     preferences — the signal a social recommender (private or not)
//     exploits.
package generator

import (
	"fmt"
	"math"
	"math/rand"

	"socialrec/internal/graph"
)

// SocialConfig parameterizes the social-graph generator.
type SocialConfig struct {
	// NumUsers is |U|.
	NumUsers int
	// NumCommunities is the number of planted communities.
	NumCommunities int
	// AvgDegree is the target mean user degree (Table 1: 13.4 for
	// Last.fm, 18.5 for Flixster).
	AvgDegree float64
	// IntraFraction is the fraction of edges planted inside a community;
	// the remainder connect users across communities. Values around
	// 0.8–0.9 give modularity comparable to real social graphs.
	IntraFraction float64
	// CommunitySkew is the Zipf exponent of community sizes; larger means
	// a more dominant largest community. Values near 0.9 reproduce the
	// paper's observation that the largest cluster holds 18–28% of users.
	CommunitySkew float64
	// DegreeSkew is the Pareto tail exponent of per-user degree
	// propensities; smaller means heavier tails (larger degree std).
	DegreeSkew float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports the first invalid field.
func (c SocialConfig) Validate() error {
	switch {
	case c.NumUsers < 1:
		return fmt.Errorf("generator: NumUsers must be >= 1, got %d", c.NumUsers)
	case c.NumCommunities < 1 || c.NumCommunities > c.NumUsers:
		return fmt.Errorf("generator: NumCommunities must be in [1, %d], got %d", c.NumUsers, c.NumCommunities)
	case c.AvgDegree <= 0:
		return fmt.Errorf("generator: AvgDegree must be positive, got %v", c.AvgDegree)
	case c.IntraFraction < 0 || c.IntraFraction > 1:
		return fmt.Errorf("generator: IntraFraction must be in [0, 1], got %v", c.IntraFraction)
	}
	return nil
}

// Social generates a social graph together with the planted community of
// every user (ground truth useful in clustering tests). The generator is a
// degree-corrected planted-partition model: users receive Zipf-skewed
// community assignments and Pareto-skewed degree propensities; edges are
// then drawn Chung-Lu style, biased IntraFraction of the time to stay within
// a community.
func Social(cfg SocialConfig) (*graph.Social, []int32, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Community assignment with Zipf-skewed sizes.
	skew := cfg.CommunitySkew
	if skew <= 0 {
		skew = 0.9
	}
	commWeights := make([]float64, cfg.NumCommunities)
	for c := range commWeights {
		commWeights[c] = math.Pow(float64(c+1), -skew)
	}
	commPick := newAlias(commWeights, rng)
	community := make([]int32, cfg.NumUsers)
	members := make([][]int32, cfg.NumCommunities)
	for u := range community {
		c := commPick.draw()
		community[u] = int32(c)
		members[c] = append(members[c], int32(u))
	}

	// Degree propensities: bounded Pareto for a heavy but not absurd tail.
	tail := cfg.DegreeSkew
	if tail <= 0 {
		tail = 2.2
	}
	theta := make([]float64, cfg.NumUsers)
	for u := range theta {
		x := math.Pow(1-rng.Float64(), -1/tail) // Pareto(1, tail)
		if x > 40 {
			x = 40
		}
		theta[u] = x
	}
	globalPick := newAlias(theta, rng)
	commPicks := make([]*alias, cfg.NumCommunities)
	for c, ms := range members {
		if len(ms) == 0 {
			continue
		}
		w := make([]float64, len(ms))
		for i, u := range ms {
			w[i] = theta[u]
		}
		commPicks[c] = newAlias(w, rng)
	}

	// Edge placement.
	targetEdges := int(float64(cfg.NumUsers) * cfg.AvgDegree / 2)
	b := graph.NewSocialBuilder(cfg.NumUsers)
	maxAttempts := 50 * targetEdges
	for attempts := 0; b.NumEdges() < targetEdges && attempts < maxAttempts; attempts++ {
		u := globalPick.draw()
		var v int
		if rng.Float64() < cfg.IntraFraction {
			c := community[u]
			ms := members[c]
			if len(ms) < 2 {
				continue
			}
			v = int(ms[commPicks[c].draw()])
		} else {
			v = globalPick.draw()
		}
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v); err != nil {
			return nil, nil, err
		}
	}
	return b.Build(), community, nil
}

// PreferenceConfig parameterizes the preference-graph generator.
type PreferenceConfig struct {
	// NumItems is |I|.
	NumItems int
	// NumEdges is the target |E_p|.
	NumEdges int
	// CommunityAffinity is the probability that a preference edge is drawn
	// from the user's community taste distribution rather than global
	// popularity. Higher values make similar users more predictive of one
	// another.
	CommunityAffinity float64
	// PopularitySkew is the Zipf exponent of global item popularity
	// (Table 1's item-degree std ≫ mean comes from this tail).
	PopularitySkew float64
	// TasteBreadth is the number of items in each community's taste pool;
	// 0 selects NumItems/4.
	TasteBreadth int
	// ActivitySkew is the Pareto tail of per-user preference counts; 0
	// selects 1.8.
	ActivitySkew float64
	// NicheFraction is the probability that a preference is drawn
	// uniformly from the whole catalog instead of the popularity-skewed
	// distributions — the long tail of personal, obscure items every real
	// interaction dataset carries. Combined with SocialContagion these
	// niche items circulate inside small friend circles, giving each
	// user's ideal ranking an idiosyncratic component that cluster-level
	// averages cannot reproduce (the paper's approximation error), while
	// the popular head remains noise-robust.
	NicheFraction float64
	// SocialContagion is the fraction of each user's preferences copied
	// from the existing preferences of immediate social neighbors. This
	// creates preference correlation at friendship granularity — finer
	// than the community level — which is what gives similarity-set-based
	// utility rankings their idiosyncratic, personalized component (and
	// what cluster averages inevitably smooth away, producing the paper's
	// approximation error). Requires a social graph; see Preferences.
	SocialContagion float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports the first invalid field.
func (c PreferenceConfig) Validate() error {
	switch {
	case c.NumItems < 1:
		return fmt.Errorf("generator: NumItems must be >= 1, got %d", c.NumItems)
	case c.NumEdges < 0:
		return fmt.Errorf("generator: NumEdges must be >= 0, got %d", c.NumEdges)
	case c.CommunityAffinity < 0 || c.CommunityAffinity > 1:
		return fmt.Errorf("generator: CommunityAffinity must be in [0, 1], got %v", c.CommunityAffinity)
	case c.SocialContagion < 0 || c.SocialContagion > 1:
		return fmt.Errorf("generator: SocialContagion must be in [0, 1], got %v", c.SocialContagion)
	case c.NicheFraction < 0 || c.NicheFraction > 1:
		return fmt.Errorf("generator: NicheFraction must be in [0, 1], got %v", c.NicheFraction)
	}
	return nil
}

// Preferences generates a community- and neighborhood-correlated preference
// graph for users whose community assignment is given (usually the ground
// truth returned by Social). Each community owns a Zipf-weighted taste pool
// over a random subset of items; each user draws a Pareto-skewed number of
// preferences, each coming from the community pool with probability
// CommunityAffinity and from global Zipf popularity otherwise. If
// SocialContagion > 0, that fraction of each user's preferences is instead
// copied from the current preferences of a uniformly chosen social
// neighbor, producing the friendship-level taste correlation that makes
// similarity-set recommendations genuinely personal. social may be nil only
// when SocialContagion is 0.
func Preferences(social *graph.Social, community []int32, cfg PreferenceConfig) (*graph.Preference, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SocialContagion > 0 && social == nil {
		return nil, fmt.Errorf("generator: SocialContagion requires a social graph")
	}
	numUsers := len(community)
	numComms := 0
	for _, c := range community {
		if int(c) >= numComms {
			numComms = int(c) + 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Global popularity: Zipf over a random permutation of items, so item
	// id does not encode popularity.
	skew := cfg.PopularitySkew
	if skew <= 0 {
		skew = 1.0
	}
	perm := rng.Perm(cfg.NumItems)
	popW := make([]float64, cfg.NumItems)
	for rank, item := range perm {
		popW[item] = math.Pow(float64(rank+1), -skew)
	}
	globalPick := newAlias(popW, rng)

	// Community taste pools.
	breadth := cfg.TasteBreadth
	if breadth <= 0 {
		breadth = cfg.NumItems / 4
	}
	if breadth < 1 {
		breadth = 1
	}
	if breadth > cfg.NumItems {
		breadth = cfg.NumItems
	}
	tastePools := make([][]int32, numComms)
	tastePicks := make([]*alias, numComms)
	for c := 0; c < numComms; c++ {
		pool := make([]int32, breadth)
		seen := rng.Perm(cfg.NumItems)[:breadth]
		w := make([]float64, breadth)
		for i, item := range seen {
			pool[i] = int32(item)
			w[i] = math.Pow(float64(i+1), -skew)
		}
		tastePools[c] = pool
		tastePicks[c] = newAlias(w, rng)
	}

	// Per-user activity: allocate NumEdges proportionally to Pareto
	// propensities.
	act := cfg.ActivitySkew
	if act <= 0 {
		act = 1.8
	}
	prop := make([]float64, numUsers)
	var propSum float64
	for u := range prop {
		x := math.Pow(1-rng.Float64(), -1/act)
		if x > 60 {
			x = 60
		}
		prop[u] = x
		propSum += x
	}

	// Per-user working sets: a membership map for dedup plus an indexable
	// list for contagion sampling.
	have := make([]map[int32]struct{}, numUsers)
	lists := make([][]int32, numUsers)
	quotas := make([]int, numUsers)
	for u := 0; u < numUsers; u++ {
		q := int(math.Round(float64(cfg.NumEdges) * prop[u] / propSum))
		if q < 1 {
			q = 1
		}
		if q > cfg.NumItems {
			q = cfg.NumItems
		}
		quotas[u] = q
		have[u] = make(map[int32]struct{}, q)
	}
	add := func(u int, item int32) bool {
		if _, dup := have[u][item]; dup {
			return false
		}
		have[u][item] = struct{}{}
		lists[u] = append(lists[u], item)
		return true
	}
	sampleTaste := func(u int) int32 {
		if rng.Float64() < cfg.NicheFraction {
			return int32(rng.Intn(cfg.NumItems))
		}
		c := int(community[u])
		if rng.Float64() < cfg.CommunityAffinity && tastePicks[c] != nil {
			return tastePools[c][tastePicks[c].draw()]
		}
		return int32(globalPick.draw())
	}

	// Phase 1: seed each user with their non-contagion share from the
	// taste distributions.
	for u := 0; u < numUsers; u++ {
		seed := int(math.Round(float64(quotas[u]) * (1 - cfg.SocialContagion)))
		if seed < 1 {
			seed = 1
		}
		for tries, added := 0, 0; added < seed && tries < 20*seed; tries++ {
			if add(u, sampleTaste(u)) {
				added++
			}
		}
	}

	// Phase 2: social contagion sweeps — each user copies items from close
	// friends until their quota is met. Copying is restricted to a small
	// fixed subset of each user's neighbors ("strong ties"): real taste
	// diffusion concentrates in tight friend circles, which is what makes
	// the resulting items score high under structural similarity (close
	// friends share many common neighbors) while staying invisible in
	// cluster-level averages. Sweeping repeatedly in random order lets
	// items propagate along chains of strong ties.
	if cfg.SocialContagion > 0 {
		const strongTies = 3
		close := make([][]int32, numUsers)
		for u := 0; u < numUsers; u++ {
			neigh := social.Neighbors(u)
			if len(neigh) <= strongTies {
				close[u] = neigh
				continue
			}
			picked := rng.Perm(len(neigh))[:strongTies]
			for _, i := range picked {
				close[u] = append(close[u], neigh[i])
			}
		}
		for sweep := 0; sweep < 6; sweep++ {
			done := true
			for _, u := range rng.Perm(numUsers) {
				missing := quotas[u] - len(lists[u])
				if missing <= 0 {
					continue
				}
				neigh := close[u]
				for tries, added := 0, 0; added < missing && tries < 10*missing; tries++ {
					var item int32
					if len(neigh) > 0 {
						v := neigh[rng.Intn(len(neigh))]
						if len(lists[v]) == 0 {
							continue
						}
						item = lists[v][rng.Intn(len(lists[v]))]
					} else {
						item = sampleTaste(u)
					}
					if add(u, item) {
						added++
					}
				}
				if len(lists[u]) < quotas[u] {
					done = false
				}
			}
			if done {
				break
			}
		}
		// Top up any residue (isolated users, saturated neighborhoods)
		// from the taste distributions.
		for u := 0; u < numUsers; u++ {
			missing := quotas[u] - len(lists[u])
			for tries, added := 0, 0; added < missing && tries < 20*missing; tries++ {
				if add(u, sampleTaste(u)) {
					added++
				}
			}
		}
	}

	b := graph.NewPreferenceBuilder(numUsers, cfg.NumItems)
	for u := 0; u < numUsers; u++ {
		for _, item := range lists[u] {
			if err := b.AddEdge(u, int(item)); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// alias implements Vose's alias method for O(1) sampling from a fixed
// discrete distribution.
type alias struct {
	prob  []float64
	al    []int32
	rng   *rand.Rand
	count int
}

func newAlias(weights []float64, rng *rand.Rand) *alias {
	n := len(weights)
	a := &alias{prob: make([]float64, n), al: make([]int32, n), rng: rng, count: n}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("generator: negative weight")
		}
		sum += w
	}
	if sum == 0 {
		// Degenerate: uniform.
		for i := range a.prob {
			a.prob[i] = 1
			a.al[i] = int32(i)
		}
		return a
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.al[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.al[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.al[i] = i
	}
	return a
}

func (a *alias) draw() int {
	i := a.rng.Intn(a.count)
	if a.rng.Float64() < a.prob[i] {
		return i
	}
	return int(a.al[i])
}
