package generator

import (
	"math"
	"math/rand"

	"socialrec/internal/graph"
)

// AssignRatings lifts an unweighted preference graph into a rating graph on
// a 1..scale star scale, for exercising the framework's weighted extension
// (§7 of the paper). Ratings are generated from a simple crossed-effects
// model — per-item quality, per-user generosity, plus noise — so that items
// genuinely differ in value and a weighted recommender has signal an
// unweighted one throws away.
func AssignRatings(p *graph.Preference, scale int, seed int64) (*graph.WeightedPreference, error) {
	if scale < 2 {
		scale = 5
	}
	rng := rand.New(rand.NewSource(seed))
	itemQuality := make([]float64, p.NumItems())
	for i := range itemQuality {
		itemQuality[i] = rng.NormFloat64()
	}
	mid := float64(scale+1) / 2
	b := graph.NewWeightedPreferenceBuilder(p.NumUsers(), p.NumItems())
	for u := 0; u < p.NumUsers(); u++ {
		generosity := rng.NormFloat64() * 0.5
		for _, item := range p.Items(u) {
			r := mid + itemQuality[item] + generosity + rng.NormFloat64()*0.5
			rating := math.Round(r)
			if rating < 1 {
				rating = 1
			}
			if rating > float64(scale) {
				rating = float64(scale)
			}
			if err := b.AddEdge(u, int(item), rating); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}
