package generator

import (
	"testing"

	"socialrec/internal/graph"
)

func ratingFixture(t *testing.T) *graph.Preference {
	t.Helper()
	b := graph.NewPreferenceBuilder(30, 20)
	for u := 0; u < 30; u++ {
		for i := 0; i < 5; i++ {
			if err := b.AddEdge(u, (u+i*3)%20); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Build()
}

func TestAssignRatingsBoundsAndShape(t *testing.T) {
	p := ratingFixture(t)
	rated, err := AssignRatings(p, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rated.NumEdges() != p.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", rated.NumEdges(), p.NumEdges())
	}
	for u := 0; u < p.NumUsers(); u++ {
		items, ws := rated.Edges(u)
		if len(items) != p.UserDegree(u) {
			t.Fatalf("user %d lost edges", u)
		}
		for k, w := range ws {
			if w < 1 || w > 5 {
				t.Fatalf("rating out of [1, 5]: %v", w)
			}
			if w != float64(int(w)) {
				t.Fatalf("rating not integral: %v", w)
			}
			if p.Weight(u, int(items[k])) != 1 {
				t.Fatalf("rated edge (%d, %d) absent from source", u, items[k])
			}
		}
	}
}

func TestAssignRatingsDeterministic(t *testing.T) {
	p := ratingFixture(t)
	a, err := AssignRatings(p, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssignRatings(p, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < p.NumUsers(); u++ {
		_, wa := a.Edges(u)
		_, wb := b.Edges(u)
		for k := range wa {
			if wa[k] != wb[k] {
				t.Fatal("same seed, different ratings")
			}
		}
	}
	c, err := AssignRatings(p, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for u := 0; u < p.NumUsers() && same; u++ {
		_, wa := a.Edges(u)
		_, wc := c.Edges(u)
		for k := range wa {
			if wa[k] != wc[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical ratings")
	}
}

func TestAssignRatingsItemQualitySignal(t *testing.T) {
	// Items must differ systematically: the variance of per-item mean
	// ratings should clearly exceed zero (the crossed-effects model puts
	// a N(0,1) quality on every item).
	p := ratingFixture(t)
	rated, err := AssignRatings(p, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]float64, p.NumItems())
	cnt := make([]float64, p.NumItems())
	for u := 0; u < p.NumUsers(); u++ {
		items, ws := rated.Edges(u)
		for k, item := range items {
			sum[item] += ws[k]
			cnt[item]++
		}
	}
	var lo, hi float64 = 6, 0
	for i := range sum {
		if cnt[i] == 0 {
			continue
		}
		m := sum[i] / cnt[i]
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi-lo < 1 {
		t.Errorf("item mean ratings span only %v, want clear item-quality separation", hi-lo)
	}
}

func TestAssignRatingsDefaultScale(t *testing.T) {
	p := ratingFixture(t)
	rated, err := AssignRatings(p, 0, 1) // scale < 2 selects 5
	if err != nil {
		t.Fatal(err)
	}
	if rated.MaxWeight() > 5 {
		t.Errorf("max rating %v exceeds default scale 5", rated.MaxWeight())
	}
}
