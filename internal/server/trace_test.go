package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"socialrec/internal/core"
	"socialrec/internal/dataset"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// tracedServer builds a test server over its own tracer so span assertions
// are isolated from other tests.
func tracedServer(t *testing.T, tracer *trace.Tracer, engine Engine) *httptest.Server {
	t.Helper()
	if engine == nil {
		engine = &fakeEngine{users: 5, failOn: 4}
	}
	s, err := New(Config{
		Engine:     engine,
		UserIDs:    map[string]int{"alice": 0, "bob": 1, "carol": 2, "dave": 3, "evil": 4},
		ItemTokens: []string{"i0", "i1", "i2", "i3", "i4", "i5"},
		Stats:      dataset.Stats{Users: 5, Items: 6},
		MaxN:       10,
		Logger:     testLogger(t),
		Metrics:    telemetry.NewRegistry(),
		Tracer:     tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func doGet(t *testing.T, url, traceparent string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if traceparent != "" {
		req.Header.Set(trace.TraceparentHeader, traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	return resp
}

// TestTraceparentMatrix is the middleware behaviour matrix: a valid inbound
// traceparent is continued (same trace ID echoed back), a malformed one and
// an absent one each start a fresh root whose traceparent is still emitted.
func TestTraceparentMatrix(t *testing.T) {
	tracer := trace.New(trace.Config{Seed: 7})
	ts := tracedServer(t, tracer, nil)

	const inbound = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	resp := doGet(t, ts.URL+"/recommend?user=alice&n=2", inbound)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	tp, err := trace.ParseTraceparent(resp.Header.Get(trace.TraceparentHeader))
	if err != nil {
		t.Fatalf("response traceparent unparsable: %v", err)
	}
	if got := tp.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("valid inbound: response trace id = %s, want the inbound one", got)
	}
	if tp.ParentID.String() == "00f067aa0ba902b7" {
		t.Error("response parent id should be the server's own span, not the caller's")
	}

	// The continued trace is retained (head rate 1) with the inbound trace
	// id, a root named after the endpoint, and the engine's phase children.
	var td *trace.TraceData
	for _, cand := range tracer.Snapshot() {
		if cand.TraceID == "4bf92f3577b34da6a3ce929d0e0e4736" {
			td = cand
			break
		}
	}
	if td == nil {
		t.Fatal("continued trace not retained")
	}
	if td.Root.Name != "http_recommend" {
		t.Errorf("root span = %q, want http_recommend", td.Root.Name)
	}
	if td.Root.ParentID != "00f067aa0ba902b7" {
		t.Errorf("root parent = %q, want the remote caller's span", td.Root.ParentID)
	}
	if len(td.Spans) < 3 {
		t.Fatalf("retained trace has %d child spans, want >= 3: %+v", len(td.Spans), td.Spans)
	}
	names := map[string]bool{}
	for _, sp := range td.Spans {
		names[sp.Name] = true
		if sp.ParentID != td.Root.SpanID {
			t.Errorf("child %s parent = %q, want root %q", sp.Name, sp.ParentID, td.Root.SpanID)
		}
	}
	for _, want := range []string{"similarity_batch", "cluster_average", "top_n"} {
		if !names[want] {
			t.Errorf("missing child span %q (have %v)", want, names)
		}
	}

	for _, tc := range []struct {
		name, header string
	}{
		{"malformed", "00-zzzz-bad-01"},
		{"wrong_length", "00-4bf92f35-00f067aa0ba902b7-01"},
		{"absent", ""},
	} {
		resp := doGet(t, ts.URL+"/recommend?user=bob&n=1", tc.header)
		tp, err := trace.ParseTraceparent(resp.Header.Get(trace.TraceparentHeader))
		if err != nil {
			t.Fatalf("%s: response traceparent unparsable: %v", tc.name, err)
		}
		if tp.TraceID.String() == "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("%s: server must mint a fresh root, not continue the stale id", tc.name)
		}
		if tp.TraceID.IsZero() || tp.ParentID.IsZero() {
			t.Errorf("%s: zero ids in response traceparent", tc.name)
		}
	}
}

// moodyEngine is a fakeEngine that is slow for one user — the tool for
// tail-retention tests.
type moodyEngine struct {
	fakeEngine
	slowUser int
	delay    time.Duration
}

func (m *moodyEngine) RecommendContext(ctx context.Context, user, n int) ([]core.Recommendation, error) {
	if user == m.slowUser {
		time.Sleep(m.delay)
	}
	return m.fakeEngine.RecommendContext(ctx, user, n)
}

// TestTailRetentionAtZeroHeadRate is the acceptance scenario: with head
// sampling fully off, an injected error request and an injected slow
// request are still retained, attributable at /debug/traces.
func TestTailRetentionAtZeroHeadRate(t *testing.T) {
	tracer := trace.New(trace.Config{Seed: 11, HeadRateZero: true, SlowQuantile: 0.95})
	engine := &moodyEngine{
		fakeEngine: fakeEngine{users: 5, failOn: 4},
		slowUser:   3, // "dave"
		delay:      40 * time.Millisecond,
	}
	ts := tracedServer(t, tracer, engine)

	// Warm the latency quantile with ordinary fast traffic.
	for i := 0; i < 100; i++ {
		if resp := doGet(t, ts.URL+"/recommend?user=alice&n=2", ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup request failed: %d", resp.StatusCode)
		}
	}
	// One engine failure (500) and one slow outlier.
	if resp := doGet(t, ts.URL+"/recommend?user=evil&n=2", ""); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("error request status = %d, want 500", resp.StatusCode)
	}
	if resp := doGet(t, ts.URL+"/recommend?user=dave&n=2", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("slow request status = %d", resp.StatusCode)
	}

	var gotError, gotSlow bool
	for _, td := range tracer.Snapshot() {
		switch td.Retained {
		case "error":
			gotError = true
			if td.Root.Status != "error" {
				t.Errorf("error-retained root status = %q", td.Root.Status)
			}
		case "slow":
			if td.Root.Duration >= 40*time.Millisecond {
				gotSlow = true
			}
		case "head":
			t.Errorf("head-retained trace at zero head rate: %+v", td.Root)
		}
	}
	if !gotError {
		t.Error("error trace not retained at zero head rate")
	}
	if !gotSlow {
		t.Errorf("slow trace not retained at zero head rate (stats %+v)", tracer.Stats())
	}
}

// TestHeadRateZeroDropsOrdinaryTraffic complements the retention test: the
// fast, successful warmup requests themselves must be overwhelmingly
// discarded, or "sampling" isn't.
func TestHeadRateZeroDropsOrdinaryTraffic(t *testing.T) {
	tracer := trace.New(trace.Config{Seed: 13, HeadRateZero: true})
	ts := tracedServer(t, tracer, nil)
	for i := 0; i < 50; i++ {
		doGet(t, ts.URL+"/healthz", "")
	}
	st := tracer.Stats()
	if st.KeptHead != 0 {
		t.Errorf("kept_head = %d at zero head rate", st.KeptHead)
	}
	if st.Roots != 50 {
		t.Errorf("roots = %d, want 50", st.Roots)
	}
}

// TestExemplarLinksLatencyToTrace verifies the latency histogram carries
// the request's trace id as an exemplar.
func TestExemplarLinksLatencyToTrace(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracer := trace.New(trace.Config{Seed: 17})
	s, err := New(Config{
		Engine:  &fakeEngine{users: 5, failOn: -1},
		UserIDs: map[string]int{"alice": 0},
		Stats:   dataset.Stats{Users: 5},
		MaxN:    10,
		Logger:  testLogger(t),
		Metrics: reg,
		Tracer:  tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp := doGet(t, ts.URL+"/recommend?user=alice&n=2", "")
	tp, err := trace.ParseTraceparent(resp.Header.Get(trace.TraceparentHeader))
	if err != nil {
		t.Fatal(err)
	}

	var found bool
	for _, h := range reg.Snapshot().Histograms {
		if h.Name != "http_request_seconds" || h.LabelValue != "recommend" {
			continue
		}
		for _, b := range h.Buckets {
			if b.Exemplar != nil && b.Exemplar.TraceID == tp.TraceID.String() {
				found = true
			}
		}
		if h.InfExemplar != nil && h.InfExemplar.TraceID == tp.TraceID.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("no latency exemplar carries trace id %s", tp.TraceID)
	}
}
