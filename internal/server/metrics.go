package server

import (
	"net/http"
	"time"

	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// Endpoint label values, one per route. These are the only strings the
// server ever feeds telemetry as label values — request paths, user tokens
// and payloads never reach the registry (and the registry would reject
// them; see internal/telemetry's no-sensitive-labels invariant).
const (
	epHealthz   = "healthz"
	epReadyz    = "readyz"
	epStats     = "stats"
	epUsers     = "users"
	epRecommend = "recommend"
	epBatch     = "batch"
	epReload    = "reload"
)

var endpoints = []string{epHealthz, epReadyz, epStats, epUsers, epRecommend, epBatch, epReload}

// Status classes for response accounting.
var statusClasses = []string{"status_2xx", "status_3xx", "status_4xx", "status_5xx"}

// metrics holds the server's pre-resolved instruments. Everything is wired
// at New time with static label values, so request handling never performs
// a label lookup that could fail.
type metrics struct {
	inFlight       *telemetry.Gauge
	requests       map[string]*telemetry.Counter   // by endpoint
	errors         map[string]*telemetry.Counter   // 4xx+5xx responses, by endpoint
	latency        map[string]*telemetry.Histogram // by endpoint
	responses      map[string]*telemetry.Counter   // by status class
	encodeFailures *telemetry.Counter
	panics         *telemetry.Counter
	shed           *telemetry.Counter
	timeouts       *telemetry.Counter
	chaosInjected  *telemetry.Counter
	reloadSuccess  *telemetry.Counter
	reloadFailure  *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry) *metrics {
	if reg == nil {
		reg = telemetry.Default()
	}
	m := &metrics{
		inFlight: reg.NewGauge("http_in_flight",
			"requests currently being handled"),
		requests:  map[string]*telemetry.Counter{},
		errors:    map[string]*telemetry.Counter{},
		latency:   map[string]*telemetry.Histogram{},
		responses: map[string]*telemetry.Counter{},
		encodeFailures: reg.NewCounter("http_encode_failures_total",
			"responses whose JSON encoding failed before any bytes were written"),
		panics: reg.NewCounter("http_panics_recovered_total",
			"handler panics converted to 500s by the recovery middleware"),
		shed: reg.NewCounter("http_shed_total",
			"requests rejected with 503 by the concurrency limiter"),
		timeouts: reg.NewCounter("http_request_timeouts_total",
			"requests whose per-request deadline expired"),
		chaosInjected: reg.NewCounter("http_chaos_injected_total",
			"requests failed deliberately by -chaos fault injection"),
		reloadSuccess: reg.NewCounter("reload_success_total",
			"hot reloads that swapped in a new release"),
		reloadFailure: reg.NewCounter("reload_failure_total",
			"hot reloads that failed, leaving the last-good release serving"),
	}
	reqVec := reg.NewCounterVec("http_requests_total",
		"requests handled, by endpoint", "endpoint", endpoints...)
	errVec := reg.NewCounterVec("http_errors_total",
		"4xx/5xx responses, by endpoint", "endpoint", endpoints...)
	latVec := reg.NewHistogramVec("http_request_seconds",
		"request latency, by endpoint", "endpoint", nil, endpoints...)
	for _, ep := range endpoints {
		m.requests[ep] = reqVec.MustWith(ep)
		m.errors[ep] = errVec.MustWith(ep)
		m.latency[ep] = latVec.MustWith(ep)
	}
	respVec := reg.NewCounterVec("http_responses_total",
		"responses sent, by status class", "class", statusClasses...)
	for _, cl := range statusClasses {
		m.responses[cl] = respVec.MustWith(cl)
	}
	return m
}

// statusWriter captures the status code a handler writes and whether a
// response has been committed (so the recovery middleware knows if a 500
// can still be sent).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.wrote = true
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func statusClass(status int) string {
	switch {
	case status < 300:
		return "status_2xx"
	case status < 400:
		return "status_3xx"
	case status < 500:
		return "status_4xx"
	default:
		return "status_5xx"
	}
}

// instrument wraps a handler with the serving middleware: request and
// status-class counters, the in-flight gauge and the per-endpoint latency
// histogram. endpoint must be one of the static endpoint constants. Each
// latency observation carries the request's trace id as an exemplar, so a
// latency-bucket spike on a dashboard links to a concrete retained trace.
// The traced middleware outside already wraps the ResponseWriter; reuse its
// statusWriter so both layers observe the same committed status.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.metrics.requests[endpoint]
	errors := s.metrics.errors[endpoint]
	latency := s.metrics.latency[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.inFlight.Add(1)
		start := time.Now()
		sw, ok := w.(*statusWriter)
		if !ok {
			sw = &statusWriter{ResponseWriter: w, status: http.StatusOK}
		}
		h(sw, r)
		tid, _ := trace.FromContext(r.Context()).IDs()
		elapsed := time.Since(start)
		latency.ObserveExemplar(elapsed.Seconds(), tid)
		s.observeLatency(elapsed)
		s.metrics.inFlight.Add(-1)
		requests.Inc()
		s.metrics.responses[statusClass(sw.status)].Inc()
		if sw.status >= 400 {
			errors.Inc()
		}
	}
}
