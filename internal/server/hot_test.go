package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"socialrec/internal/dataset"
	"socialrec/internal/telemetry"
)

func TestHotSwapAndStatus(t *testing.T) {
	e1 := &fakeEngine{users: 5, failOn: -1}
	h := NewHot(e1, 1)
	if h.Engine() != Engine(e1) {
		t.Fatal("Engine() is not the installed engine")
	}
	st := h.Status()
	if st.Version != 1 || st.Degraded || st.LoadedAt.IsZero() {
		t.Errorf("fresh status = %+v", st)
	}

	e2 := &fakeEngine{users: 9, failOn: -1}
	h.Swap(e2, 2)
	if h.Engine() != Engine(e2) || h.Status().Version != 2 {
		t.Error("swap did not install the new engine")
	}

	h.Fail("release store unreadable")
	st = h.Status()
	if !st.Degraded || st.Reason != "release store unreadable" || st.Version != 2 {
		t.Errorf("degraded status = %+v", st)
	}
	if h.Engine() != Engine(e2) {
		t.Error("Fail replaced the serving engine")
	}

	// A later successful swap clears degradation.
	h.Swap(e1, 3)
	if st := h.Status(); st.Degraded || st.Version != 3 {
		t.Errorf("post-recovery status = %+v", st)
	}
}

func TestHotApplyDeltaAndRollback(t *testing.T) {
	full := &fakeEngine{users: 5, failOn: -1}
	h := NewHot(full, 3)

	// Base mismatch refuses: the chain was resolved against a version this
	// slot is not serving.
	d1 := &fakeEngine{users: 6, failOn: -1}
	if err := h.ApplyDelta(d1, 2, []uint64{4}); err == nil {
		t.Fatal("base-mismatched delta applied")
	}
	if err := h.ApplyDelta(d1, 3, nil); err == nil {
		t.Fatal("empty delta chain applied")
	}
	if err := h.ApplyDelta(d1, 3, []uint64{3}); err == nil {
		t.Fatal("delta chain not past the full generation applied")
	}

	if err := h.ApplyDelta(d1, 3, []uint64{4}); err != nil {
		t.Fatalf("valid delta refused: %v", err)
	}
	st := h.Status()
	if st.Version != 4 || st.FullVersion != 3 || len(st.Deltas) != 1 || st.Deltas[0] != 4 {
		t.Fatalf("post-delta status = %+v", st)
	}
	if h.Engine() != Engine(d1) {
		t.Fatal("delta engine not serving")
	}

	// Extending the chain requires the applied lineage as a prefix.
	d2 := &fakeEngine{users: 7, failOn: -1}
	if err := h.ApplyDelta(d2, 4, []uint64{5}); err == nil {
		t.Fatal("divergent chain applied")
	}
	if err := h.ApplyDelta(d2, 4, []uint64{4, 5}); err != nil {
		t.Fatalf("chain extension refused: %v", err)
	}
	st = h.Status()
	if st.Version != 5 || st.FullVersion != 3 || len(st.Deltas) != 2 {
		t.Fatalf("post-extension status = %+v", st)
	}

	// Rollback restores the retained full generation from memory and marks
	// the slot degraded — stale but serving.
	v := h.Rollback("delta 6 corrupt on disk")
	if v != 3 {
		t.Fatalf("rollback landed at %d, want 3", v)
	}
	st = h.Status()
	if st.Version != 3 || st.FullVersion != 3 || len(st.Deltas) != 0 || !st.Degraded {
		t.Fatalf("post-rollback status = %+v", st)
	}
	if h.Engine() != Engine(full) {
		t.Fatal("rollback did not restore the full generation's engine")
	}

	// A fresh full swap clears degradation and re-anchors rollback.
	f2 := &fakeEngine{users: 8, failOn: -1}
	h.Swap(f2, 6)
	st = h.Status()
	if st.Degraded || st.Version != 6 || st.FullVersion != 6 {
		t.Fatalf("post-swap status = %+v", st)
	}
}

// TestReadyzReportsDeltaLineage: /readyz exposes the full generation and
// the applied delta chain so operators see exactly what composition is
// serving.
func TestReadyzReportsDeltaLineage(t *testing.T) {
	hot := NewHot(&fakeEngine{users: 5, failOn: -1}, 3)
	ts := reloadServer(t, hot, nil)
	if err := hot.ApplyDelta(&fakeEngine{users: 5, failOn: -1}, 3, []uint64{4, 5}); err != nil {
		t.Fatal(err)
	}
	body := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if body["release_version"].(float64) != 5 || body["full_version"].(float64) != 3 {
		t.Fatalf("readyz lineage = %v", body)
	}
	deltas, ok := body["deltas_applied"].([]any)
	if !ok || len(deltas) != 2 || deltas[0].(float64) != 4 || deltas[1].(float64) != 5 {
		t.Fatalf("deltas_applied = %v", body["deltas_applied"])
	}
	hot.Rollback("injected")
	body = getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if body["release_version"].(float64) != 3 || !body["degraded"].(bool) || len(body["deltas_applied"].([]any)) != 0 {
		t.Fatalf("post-rollback readyz = %v", body)
	}
}

func TestHotDelegatesEngine(t *testing.T) {
	h := NewHot(&fakeEngine{users: 5, failOn: -1}, 1)
	recs, err := h.Recommend(0, 3)
	if err != nil || len(recs) != 3 {
		t.Fatalf("Recommend = %v, %v", recs, err)
	}
	if h.Epsilon() != 0.5 || h.NumClusters() != 3 || h.ClusterOf(1) != 1 || h.Modularity() != 0.42 {
		t.Error("delegated accessors disagree with the underlying engine")
	}
}

func TestHotConcurrentSwapAndServe(t *testing.T) {
	h := NewHot(&fakeEngine{users: 5, failOn: -1}, 1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch {
				case g == 0 && i%10 == 0:
					h.Swap(&fakeEngine{users: 5, failOn: -1}, uint64(i))
				case g == 1 && i%25 == 0:
					h.Fail("injected")
				default:
					if _, err := h.Recommend(i%5, 2); err != nil {
						t.Errorf("recommend during swap: %v", err)
						return
					}
					_ = h.Status()
				}
			}
		}(g)
	}
	wg.Wait()
}

// reloadServer builds a server over a Hot engine whose reload closure
// behaves like cmd/recserve's: success swaps, failure marks degraded.
func reloadServer(t *testing.T, hot *Hot, reload func(context.Context) error) *httptest.Server {
	t.Helper()
	s, err := New(Config{
		Engine:  hot,
		UserIDs: map[string]int{"alice": 0, "bob": 1},
		Stats:   dataset.Stats{Users: 5},
		MaxN:    10,
		Logger:  testLogger(t),
		Metrics: telemetry.NewRegistry(),
		Reload:  reload,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	return decodeBody(t, resp)
}

// TestFailedReloadKeepsServingDegraded is acceptance criterion (b): a
// failed hot-reload keeps the old engine serving and readiness reports
// degraded; a subsequent successful reload recovers.
func TestFailedReloadKeepsServingDegraded(t *testing.T) {
	hot := NewHot(&fakeEngine{users: 5, failOn: -1}, 1)
	fail := true
	reload := func(context.Context) error {
		if fail {
			hot.Fail("store corrupt")
			return fmt.Errorf("store corrupt")
		}
		hot.Swap(&fakeEngine{users: 5, failOn: -1}, 2)
		return nil
	}
	ts := reloadServer(t, hot, reload)

	// Fresh server: ready, version 1, not degraded.
	body := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if body["release_version"].(float64) != 1 || body["degraded"].(bool) {
		t.Fatalf("fresh readyz = %v", body)
	}
	if _, ok := body["loaded_at"].(string); !ok {
		t.Fatalf("readyz missing loaded_at: %v", body)
	}

	// Reload fails: 500, still serving version 1, readiness degraded.
	postJSON(t, ts.URL+"/admin/reload", http.StatusInternalServerError)
	body = getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if body["release_version"].(float64) != 1 || !body["degraded"].(bool) {
		t.Fatalf("post-failure readyz = %v", body)
	}
	if body["degraded_reason"] != "store corrupt" {
		t.Errorf("degraded_reason = %v", body["degraded_reason"])
	}
	if got := getJSON(t, ts.URL+"/recommend?user=alice&n=2", http.StatusOK); got["user"] != "alice" {
		t.Fatalf("degraded server stopped serving: %v", got)
	}

	// Recovery: reload succeeds, degradation clears, version advances.
	fail = false
	body = postJSON(t, ts.URL+"/admin/reload", http.StatusOK)
	if body["release_version"].(float64) != 2 {
		t.Errorf("reload response = %v", body)
	}
	body = getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if body["release_version"].(float64) != 2 || body["degraded"].(bool) {
		t.Errorf("post-recovery readyz = %v", body)
	}
}

func TestReloadCounters(t *testing.T) {
	hot := NewHot(&fakeEngine{users: 5, failOn: -1}, 1)
	fail := true
	reg := telemetry.NewRegistry()
	s, err := New(Config{
		Engine:  hot,
		UserIDs: map[string]int{"alice": 0},
		MaxN:    10,
		Logger:  testLogger(t),
		Metrics: reg,
		Reload: func(context.Context) error {
			if fail {
				return fmt.Errorf("nope")
			}
			hot.Swap(&fakeEngine{users: 5, failOn: -1}, 2)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	postJSON(t, ts.URL+"/admin/reload", http.StatusInternalServerError)
	fail = false
	postJSON(t, ts.URL+"/admin/reload", http.StatusOK)
	if got := s.metrics.reloadFailure.Value(); got != 1 {
		t.Errorf("reload_failure_total = %d, want 1", got)
	}
	if got := s.metrics.reloadSuccess.Value(); got != 1 {
		t.Errorf("reload_success_total = %d, want 1", got)
	}
}

func TestReloadWithoutSourceIs501(t *testing.T) {
	ts := newTestServer(t)
	postJSON(t, ts.URL+"/admin/reload", http.StatusNotImplemented)
}

func TestReadyzWithoutHotEngine(t *testing.T) {
	// A plain (non-Hot) engine still reports ready; provenance fields are
	// simply absent.
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if body["ready"] != true {
		t.Errorf("readyz = %v", body)
	}
	if _, present := body["release_version"]; present {
		t.Errorf("non-hot engine reported a release version: %v", body)
	}
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}
