package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"socialrec/internal/core"
)

// Hot is an atomically swappable Engine for hot-reload serving. Requests
// read the current engine through one atomic pointer load; Swap installs a
// new release without blocking in-flight requests, which finish against
// the engine they started with. A failed reload calls Fail instead, which
// keeps the last-good engine serving and marks the slot degraded — the
// readiness endpoint surfaces that state so operators see "stale but
// serving" rather than an outage.
//
// Hot itself implements Engine by delegation, so it can be wired into
// Config.Engine unchanged.
type Hot struct {
	slot atomic.Pointer[hotSlot]
}

// hotSlot is the immutable state one atomic load observes. Degradation
// replaces the whole slot (copying the engine pointer) rather than
// mutating it, so a reader never sees a half-updated status.
//
// Beside the serving engine, the slot retains the engine of the last FULL
// release generation. Delta releases (internal/release deltas produced by
// the streaming updater) swap in engines derived from that generation plus
// a chain of deltas; if a later delta proves invalid — base mismatch, a
// corrupt artifact discovered on reload — Rollback restores the retained
// full engine from memory without touching disk, so serving degrades to
// the last full generation instead of going dark.
type hotSlot struct {
	engine      Engine
	version     uint64
	loadedAt    time.Time
	degraded    bool
	reason      string
	fullEngine  Engine
	fullVersion uint64
	deltas      []uint64
}

// HotStatus is a point-in-time view of the serving slot.
type HotStatus struct {
	// Version identifies the release generation being served (the release
	// store's version number, or a load counter for file-based serving).
	Version uint64
	// LoadedAt is when the serving engine was installed.
	LoadedAt time.Time
	// Degraded reports that a reload failed after this engine was
	// installed: serving continues from the last-good (stale) release.
	Degraded bool
	// Reason is the failure description for a degraded slot.
	Reason string
	// FullVersion is the last full generation behind the serving engine;
	// equal to Version when no deltas are applied.
	FullVersion uint64
	// Deltas lists the delta versions applied on top of FullVersion, in
	// application order — the serving lineage.
	Deltas []uint64
}

// NewHot returns a Hot serving engine at the given release version.
func NewHot(engine Engine, version uint64) *Hot {
	h := &Hot{}
	h.slot.Store(&hotSlot{
		engine: engine, version: version, loadedAt: time.Now(),
		fullEngine: engine, fullVersion: version,
	})
	return h
}

// Engine returns the currently serving engine.
func (h *Hot) Engine() Engine { return h.slot.Load().engine }

// Swap atomically installs a new engine as a full release generation,
// clearing any degraded state and any delta lineage. In-flight requests
// keep the engine they already loaded.
func (h *Hot) Swap(engine Engine, version uint64) {
	h.slot.Store(&hotSlot{
		engine: engine, version: version, loadedAt: time.Now(),
		fullEngine: engine, fullVersion: version,
	})
}

// ApplyDelta installs an engine embodying the current full generation plus
// the delta chain. base must equal the version currently served and chain
// must extend the lineage already applied — a mismatch means the caller
// resolved a chain this slot is not serving, and nothing is installed. The
// full generation's engine stays retained for Rollback.
func (h *Hot) ApplyDelta(engine Engine, base uint64, chain []uint64) error {
	cur := h.slot.Load()
	if base != cur.version {
		return fmt.Errorf("server: delta chain expects base version %d but %d is serving", base, cur.version)
	}
	if len(chain) <= len(cur.deltas) {
		return fmt.Errorf("server: delta chain of %d adds nothing to the %d applied", len(chain), len(cur.deltas))
	}
	prev := cur.fullVersion
	for i, v := range chain {
		if i < len(cur.deltas) && cur.deltas[i] != v {
			return fmt.Errorf("server: delta chain diverges from applied lineage at version %d", v)
		}
		if v <= prev {
			return fmt.Errorf("server: delta chain version %d out of order", v)
		}
		prev = v
	}
	h.slot.Store(&hotSlot{
		engine: engine, version: chain[len(chain)-1], loadedAt: time.Now(),
		fullEngine: cur.fullEngine, fullVersion: cur.fullVersion,
		deltas: append([]uint64(nil), chain...),
	})
	return nil
}

// Rollback discards the applied delta chain and restores the retained full
// generation's engine, marking the slot degraded with the given reason —
// "stale but serving" after a delta proved invalid. It reports the version
// now serving. A slot with no deltas applied only becomes degraded (the
// full engine is already serving).
func (h *Hot) Rollback(reason string) uint64 {
	cur := h.slot.Load()
	h.slot.Store(&hotSlot{
		engine: cur.fullEngine, version: cur.fullVersion, loadedAt: time.Now(),
		degraded: true, reason: reason,
		fullEngine: cur.fullEngine, fullVersion: cur.fullVersion,
	})
	return cur.fullVersion
}

// Fail records a failed reload: the current engine keeps serving, the slot
// becomes degraded with the given reason.
func (h *Hot) Fail(reason string) {
	cur := h.slot.Load()
	h.slot.Store(&hotSlot{
		engine:   cur.engine,
		version:  cur.version,
		loadedAt: cur.loadedAt,
		degraded: true,
		reason:   reason,

		fullEngine:  cur.fullEngine,
		fullVersion: cur.fullVersion,
		deltas:      cur.deltas,
	})
}

// Status reports the serving slot's provenance and degradation state.
func (h *Hot) Status() HotStatus {
	s := h.slot.Load()
	return HotStatus{
		Version: s.version, LoadedAt: s.loadedAt, Degraded: s.degraded, Reason: s.reason,
		FullVersion: s.fullVersion, Deltas: append([]uint64(nil), s.deltas...),
	}
}

// RecommendContext implements Engine. The in-flight request keeps the
// engine it loaded even if a reload swaps the slot mid-call.
//
//sociolint:hotpath
func (h *Hot) RecommendContext(ctx context.Context, user, n int) ([]core.Recommendation, error) {
	return h.slot.Load().engine.RecommendContext(ctx, user, n)
}

// Recommend is RecommendContext on a background context, kept for callers
// outside a request (warmup loops, tests).
func (h *Hot) Recommend(user, n int) ([]core.Recommendation, error) {
	return h.slot.Load().engine.RecommendContext(context.Background(), user, n)
}

// ClusterOf implements Engine.
func (h *Hot) ClusterOf(user int) int { return h.slot.Load().engine.ClusterOf(user) }

// Epsilon implements Engine.
func (h *Hot) Epsilon() float64 { return h.slot.Load().engine.Epsilon() }

// NumClusters implements Engine.
func (h *Hot) NumClusters() int { return h.slot.Load().engine.NumClusters() }

// Modularity implements Engine.
func (h *Hot) Modularity() float64 { return h.slot.Load().engine.Modularity() }

// Owns forwards the ownership check to the serving engine: a hot slot
// holding a shard engine keeps refusing misrouted users across reloads,
// while a whole-population engine owns everyone.
func (h *Hot) Owns(user int) bool {
	if o, ok := h.slot.Load().engine.(owner); ok {
		return o.Owns(user)
	}
	return true
}

// statuser is the optional interface the readiness endpoint uses to report
// release provenance; *Hot implements it.
type statuser interface{ Status() HotStatus }

var _ Engine = (*Hot)(nil)
var _ statuser = (*Hot)(nil)
