package server

import (
	"context"
	"sync/atomic"
	"time"

	"socialrec/internal/core"
)

// Hot is an atomically swappable Engine for hot-reload serving. Requests
// read the current engine through one atomic pointer load; Swap installs a
// new release without blocking in-flight requests, which finish against
// the engine they started with. A failed reload calls Fail instead, which
// keeps the last-good engine serving and marks the slot degraded — the
// readiness endpoint surfaces that state so operators see "stale but
// serving" rather than an outage.
//
// Hot itself implements Engine by delegation, so it can be wired into
// Config.Engine unchanged.
type Hot struct {
	slot atomic.Pointer[hotSlot]
}

// hotSlot is the immutable state one atomic load observes. Degradation
// replaces the whole slot (copying the engine pointer) rather than
// mutating it, so a reader never sees a half-updated status.
type hotSlot struct {
	engine   Engine
	version  uint64
	loadedAt time.Time
	degraded bool
	reason   string
}

// HotStatus is a point-in-time view of the serving slot.
type HotStatus struct {
	// Version identifies the release generation being served (the release
	// store's version number, or a load counter for file-based serving).
	Version uint64
	// LoadedAt is when the serving engine was installed.
	LoadedAt time.Time
	// Degraded reports that a reload failed after this engine was
	// installed: serving continues from the last-good (stale) release.
	Degraded bool
	// Reason is the failure description for a degraded slot.
	Reason string
}

// NewHot returns a Hot serving engine at the given release version.
func NewHot(engine Engine, version uint64) *Hot {
	h := &Hot{}
	h.slot.Store(&hotSlot{engine: engine, version: version, loadedAt: time.Now()})
	return h
}

// Engine returns the currently serving engine.
func (h *Hot) Engine() Engine { return h.slot.Load().engine }

// Swap atomically installs a new engine and version, clearing any degraded
// state. In-flight requests keep the engine they already loaded.
func (h *Hot) Swap(engine Engine, version uint64) {
	h.slot.Store(&hotSlot{engine: engine, version: version, loadedAt: time.Now()})
}

// Fail records a failed reload: the current engine keeps serving, the slot
// becomes degraded with the given reason.
func (h *Hot) Fail(reason string) {
	cur := h.slot.Load()
	h.slot.Store(&hotSlot{
		engine:   cur.engine,
		version:  cur.version,
		loadedAt: cur.loadedAt,
		degraded: true,
		reason:   reason,
	})
}

// Status reports the serving slot's provenance and degradation state.
func (h *Hot) Status() HotStatus {
	s := h.slot.Load()
	return HotStatus{Version: s.version, LoadedAt: s.loadedAt, Degraded: s.degraded, Reason: s.reason}
}

// RecommendContext implements Engine. The in-flight request keeps the
// engine it loaded even if a reload swaps the slot mid-call.
//
//sociolint:hotpath
func (h *Hot) RecommendContext(ctx context.Context, user, n int) ([]core.Recommendation, error) {
	return h.slot.Load().engine.RecommendContext(ctx, user, n)
}

// Recommend is RecommendContext on a background context, kept for callers
// outside a request (warmup loops, tests).
func (h *Hot) Recommend(user, n int) ([]core.Recommendation, error) {
	return h.slot.Load().engine.RecommendContext(context.Background(), user, n)
}

// ClusterOf implements Engine.
func (h *Hot) ClusterOf(user int) int { return h.slot.Load().engine.ClusterOf(user) }

// Epsilon implements Engine.
func (h *Hot) Epsilon() float64 { return h.slot.Load().engine.Epsilon() }

// NumClusters implements Engine.
func (h *Hot) NumClusters() int { return h.slot.Load().engine.NumClusters() }

// Modularity implements Engine.
func (h *Hot) Modularity() float64 { return h.slot.Load().engine.Modularity() }

// Owns forwards the ownership check to the serving engine: a hot slot
// holding a shard engine keeps refusing misrouted users across reloads,
// while a whole-population engine owns everyone.
func (h *Hot) Owns(user int) bool {
	if o, ok := h.slot.Load().engine.(owner); ok {
		return o.Owns(user)
	}
	return true
}

// statuser is the optional interface the readiness endpoint uses to report
// release provenance; *Hot implements it.
type statuser interface{ Status() HotStatus }

var _ Engine = (*Hot)(nil)
var _ statuser = (*Hot)(nil)
