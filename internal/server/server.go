// Package server implements the HTTP API served by cmd/recserve: JSON
// endpoints for recommendations, dataset statistics, liveness/readiness
// and hot reload over a private recommendation engine.
//
// The engine performs its differentially private release once at
// construction; every request handled here is post-processing over that
// sanitized state, so request volume never erodes the privacy guarantee.
//
// The request path is hardened for production faults (see middleware.go):
// panics become 500s without killing the process, a concurrency limiter
// sheds overload with 503 + Retry-After, every request carries a deadline,
// and an optional fault-injection registry (Config.Faults) drives chaos
// testing. Hot reload swaps releases through an atomic pointer (Hot) so a
// failed reload degrades to "stale but serving" instead of an outage.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"socialrec/internal/core"
	"socialrec/internal/dataset"
	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
	"socialrec/internal/trace"
)

// maxPooledBuf caps the buffer capacity a jsonEnc may carry back into the
// pool. A one-off giant response (a 1000-user batch) would otherwise pin
// its megabytes in the pool forever; oversized buffers are dropped to GC
// and the pool refills with fresh small ones.
const maxPooledBuf = 1 << 20

// jsonEnc is a pooled response-encoding buffer with a json.Encoder bound to
// it once at construction, so the steady-state serving path allocates
// neither the buffer nor the encoder. The encoder never latches an error
// state across uses: encoding/json only remembers writer errors, and
// bytes.Buffer writes cannot fail — marshal errors (the only kind our
// closed response types could ever produce) are returned, not stored.
type jsonEnc struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var (
	encPool = sync.Pool{New: func() any {
		encPoolNews.Add(1)
		e := new(jsonEnc)
		e.enc = json.NewEncoder(&e.buf)
		return e
	}}
	encPoolGets atomic.Uint64
	encPoolNews atomic.Uint64

	respPool = sync.Pool{New: func() any {
		respPoolNews.Add(1)
		return new(recResponse)
	}}
	respPoolGets atomic.Uint64
	respPoolNews atomic.Uint64
)

func init() {
	telemetry.RegisterPoolStats("server_buffer", func() telemetry.PoolStats {
		return telemetry.PoolStats{Gets: encPoolGets.Load(), Misses: encPoolNews.Load()}
	})
	telemetry.RegisterPoolStats("server_response", func() telemetry.PoolStats {
		return telemetry.PoolStats{Gets: respPoolGets.Load(), Misses: respPoolNews.Load()}
	})
}

//sociolint:hotpath
func getEnc() *jsonEnc {
	encPoolGets.Add(1)
	e := encPool.Get().(*jsonEnc)
	e.buf.Reset()
	return e
}

//sociolint:hotpath
func putEnc(e *jsonEnc) {
	if e.buf.Cap() > maxPooledBuf {
		return
	}
	encPool.Put(e)
}

//sociolint:hotpath
func getRecResponse() *recResponse {
	respPoolGets.Add(1)
	return respPool.Get().(*recResponse)
}

//sociolint:hotpath
func putRecResponse(rr *recResponse) {
	// Keep the Recommendations capacity (that is the point of pooling);
	// item tokens referenced by stale entries are long-lived config
	// strings, so nothing transient is pinned.
	respPool.Put(rr)
}

// owner is the optional ownership check a sharded engine implements
// (socialrec.ShardEngine, forwarded through *Hot): a server fronting one
// shard answers only for the users that shard owns and refuses the rest
// with 421 Misdirected Request. Whole-population engines simply don't
// implement it.
type owner interface{ Owns(user int) bool }

// Engine is the slice of the recommendation engine the server needs;
// *socialrec.Engine satisfies it.
type Engine interface {
	// RecommendContext returns the top-n list for one user. The context is
	// the request's: it carries the deadline and the active trace span, so
	// engine phases can open child spans on it.
	RecommendContext(ctx context.Context, user, n int) ([]core.Recommendation, error)
	// ClusterOf reports the user's (public) community, or -1 if the
	// engine is not cluster-based.
	ClusterOf(user int) int
	// Epsilon reports the privacy budget of the engine's release.
	Epsilon() float64
	// NumClusters reports the community count.
	NumClusters() int
	// Modularity reports the clustering's modularity.
	Modularity() float64
}

// Config assembles a Server.
type Config struct {
	Engine Engine
	// UserIDs maps external user tokens to internal ids (as produced by
	// dataset.ReadSocialTSV).
	UserIDs map[string]int
	// ItemTokens maps internal item ids back to external tokens; nil
	// serves numeric ids.
	ItemTokens []string
	// Stats is the dataset summary served at /stats.
	Stats dataset.Stats
	// MaxN caps the list length a request may ask for; 0 selects 100.
	MaxN int
	// Logger receives request-handling errors; nil selects a text logger to
	// stderr. Whatever handler is supplied is wrapped with
	// trace.NewSlogHandler, so every record emitted with a request context
	// carries trace_id and span_id.
	Logger *slog.Logger
	// Metrics receives the server's instruments; nil selects
	// telemetry.Default(). Registration is idempotent, so several servers
	// (e.g. tests) may share one registry.
	Metrics *telemetry.Registry
	// RequestTimeout bounds each serving request's context; 0 selects
	// 10 s, negative disables the deadline middleware.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently handled serving requests; excess
	// requests are shed with 503 + Retry-After. 0 selects 1024, negative
	// disables shedding. Health endpoints are never shed.
	MaxInFlight int
	// RetryAfter is the Retry-After hint on shed responses, rounded to
	// whole seconds; 0 selects 1 s.
	RetryAfter time.Duration
	// Reload, when non-nil, enables POST /admin/reload: it must attempt to
	// swap in a fresh release (typically via a *Hot engine) and return nil
	// on success. On failure the server answers 500 and keeps serving the
	// current engine. nil answers 501 Not Implemented. The context is the
	// triggering request's, so a store-backed reload's spans and budget
	// events attach to the request's trace.
	Reload func(ctx context.Context) error
	// Faults, when non-nil, arms the chaos middleware: every hardened
	// request consults faults.PointHandler. Production servers leave it
	// nil; cmd/recserve -chaos and fault-injection tests set it.
	Faults *faults.Registry
	// Tracer retains request traces (see internal/trace); nil selects
	// trace.Default(). Every route opens a root span on it, continuing an
	// inbound W3C traceparent when the request carries one.
	Tracer *trace.Tracer
}

// Server routes HTTP requests to a private recommendation engine.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *metrics
	logger  *slog.Logger
	tracer  *trace.Tracer
	sem     chan struct{} // concurrency limiter; nil disables shedding

	// ewmaNanos is the recent-latency EWMA feeding the adaptive
	// Retry-After hint (see retryafter.go).
	ewmaNanos atomic.Int64
}

// New validates the configuration and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: Engine is required")
	}
	if cfg.UserIDs == nil {
		return nil, fmt.Errorf("server: UserIDs is required")
	}
	if cfg.MaxN <= 0 {
		cfg.MaxN = 100
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 1024
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	// Re-wrapping an already-wrapped handler is harmless (the inner wrapper
	// sees a record that merely lacks the ids the outer one adds), so wrap
	// unconditionally: correlation must not depend on the caller remembering.
	logger = slog.New(trace.NewSlogHandler(logger.Handler()))
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = trace.Default()
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), metrics: newMetrics(cfg.Metrics),
		logger: logger, tracer: tracer}
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	// Health and admin endpoints bypass the limiter and deadline: probes
	// must answer while the serving path is saturated, and a reload is
	// exactly what an operator reaches for under duress. Every route is
	// traced — root spans are cheap, and a reload trace is the one an
	// operator most wants to find afterwards.
	s.mux.HandleFunc("GET /healthz", s.traced(epHealthz, s.instrument(epHealthz, s.recovery(s.handleHealthz))))
	s.mux.HandleFunc("GET /readyz", s.traced(epReadyz, s.instrument(epReadyz, s.recovery(s.handleReadyz))))
	s.mux.HandleFunc("POST /admin/reload", s.traced(epReload, s.instrument(epReload, s.recovery(s.handleReload))))
	s.mux.HandleFunc("GET /stats", s.traced(epStats, s.harden(epStats, s.handleStats)))
	s.mux.HandleFunc("GET /recommend", s.traced(epRecommend, s.harden(epRecommend, s.handleRecommend)))
	s.mux.HandleFunc("POST /recommend/batch", s.traced(epBatch, s.harden(epBatch, s.handleBatch)))
	s.mux.HandleFunc("GET /users", s.traced(epUsers, s.harden(epUsers, s.handleUsers)))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handleHealthz is the liveness probe: the process is up and the router
// answers. It deliberately checks nothing else — a degraded or reloading
// server is still alive, and restarting it would only lose the last-good
// release it is serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// Best-effort: a failed health-check write means the client is gone.
	_, _ = fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: which release is being served, when
// it was loaded, and whether the server is degraded (a reload failed and
// the last-good, now stale, release is still serving). Degraded is 200 —
// the server IS serving — with degraded: true for dashboards and rollout
// gates to act on.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"ready":   true,
		"epsilon": fmt.Sprintf("%g", s.cfg.Engine.Epsilon()),
	}
	if st, ok := s.cfg.Engine.(statuser); ok {
		status := st.Status()
		body["release_version"] = status.Version
		body["loaded_at"] = status.LoadedAt.UTC().Format(time.RFC3339)
		body["degraded"] = status.Degraded
		if status.Degraded {
			body["degraded_reason"] = status.Reason
		}
		// Delta lineage: the full generation behind the serving engine and
		// the delta versions applied on top (empty when serving a full
		// release directly).
		body["full_version"] = status.FullVersion
		deltas := status.Deltas
		if deltas == nil {
			deltas = []uint64{}
		}
		body["deltas_applied"] = deltas
	}
	s.writeJSON(r.Context(), w, http.StatusOK, body)
}

// handleReload triggers the configured reload hook. Success answers 200
// with the new release version; failure answers 500 while the last-good
// engine keeps serving (visible as degraded on /readyz when the engine is
// a *Hot).
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if s.cfg.Reload == nil {
		s.writeError(ctx, w, http.StatusNotImplemented, "no reload source configured")
		return
	}
	if err := s.cfg.Reload(ctx); err != nil {
		s.metrics.reloadFailure.Inc()
		s.logger.ErrorContext(ctx, "server: reload failed", "err", err)
		s.writeError(ctx, w, http.StatusInternalServerError, "reload failed: "+err.Error())
		return
	}
	s.metrics.reloadSuccess.Inc()
	body := map[string]any{"status": "reloaded"}
	if st, ok := s.cfg.Engine.(statuser); ok {
		body["release_version"] = st.Status().Version
	}
	s.writeJSON(ctx, w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(r.Context(), w, http.StatusOK, map[string]any{
		"users":            s.cfg.Stats.Users,
		"social_edges":     s.cfg.Stats.SocialEdges,
		"items":            s.cfg.Stats.Items,
		"preference_edges": s.cfg.Stats.PrefEdges,
		"sparsity":         s.cfg.Stats.PrefSparsity,
		"clusters":         s.cfg.Engine.NumClusters(),
		"modularity":       s.cfg.Engine.Modularity(),
		"epsilon":          fmt.Sprintf("%g", s.cfg.Engine.Epsilon()),
	})
}

// handleUsers lists known user tokens (paginated), primarily for
// exploration and debugging. User identity and the social graph are public
// in the paper's model, so this endpoint leaks nothing protected.
func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if l := r.URL.Query().Get("limit"); l != "" {
		v, err := strconv.Atoi(l)
		if err != nil || v < 1 {
			s.writeError(r.Context(), w, http.StatusBadRequest, "bad limit parameter")
			return
		}
		limit = v
	}
	tokens := make([]string, 0, len(s.cfg.UserIDs))
	for tok := range s.cfg.UserIDs {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	if len(tokens) > limit {
		tokens = tokens[:limit]
	}
	s.writeJSON(r.Context(), w, http.StatusOK, map[string]any{
		"users": tokens,
		"total": len(s.cfg.UserIDs),
	})
}

// recItem is one entry of a served recommendation list.
type recItem struct {
	Item    string  `json:"item"`
	Utility float64 `json:"utility"`
}

// recResponse is the GET /recommend body and one successful batch row. It
// is a typed struct (not an ad-hoc map) so the response surface is a
// closed, reviewable world and per-request map allocation stays off the
// hot path.
type recResponse struct {
	User            string    `json:"user"`
	Cluster         int       `json:"cluster"`
	Recommendations []recItem `json:"recommendations"`
}

// batchUserError is one failed batch row: the token the client sent plus a
// fixed error string, never engine internals.
type batchUserError struct {
	User  string `json:"user"`
	Error string `json:"error"`
}

// batchResponse documents the POST /recommend/batch body shape. The handler
// does not build one: rows (recResponse or batchUserError) are streamed
// into a pooled buffer one at a time, so a large batch never materializes a
// []any of boxed rows. The type remains the closed-world record of the
// response surface and the shape tests decode into.
type batchResponse struct {
	Results []any `json:"results"`
}

// recommendFor computes one user's recommendation list into the pooled
// *rr (reusing its Recommendations capacity) and returns the HTTP status.
// On error rr is unspecified and must not be encoded.
//
//sociolint:hotpath
func (s *Server) recommendFor(ctx context.Context, userTok string, n int, rr *recResponse) (int, error) {
	if err := ctx.Err(); err != nil {
		// The deadline expired (or the client left) before this user's
		// work started; don't spend engine time on an answer nobody reads.
		//sociolint:ignore hotalloc deadline-expiry path, the request already failed
		return http.StatusGatewayTimeout, fmt.Errorf("request deadline exceeded")
	}
	user, ok := s.cfg.UserIDs[userTok]
	if !ok {
		//sociolint:ignore hotalloc rejection path, not the per-request steady state
		return http.StatusNotFound, fmt.Errorf("unknown user %q", userTok)
	}
	if o, isOwner := s.cfg.Engine.(owner); isOwner && !o.Owns(user) {
		// A shard server refuses users another shard owns: its halo and
		// foreign rows would make an answer silently wrong, not
		// approximate. 421 tells a misrouting caller (a router with a
		// stale manifest) to fix its map, loudly.
		//sociolint:ignore hotalloc misdirected-request path, not the per-request steady state
		return http.StatusMisdirectedRequest, fmt.Errorf("user %q is not owned by this shard", userTok)
	}
	if n > s.cfg.MaxN {
		return http.StatusBadRequest,
			//sociolint:ignore hotalloc rejection path, not the per-request steady state
			fmt.Errorf("n %d exceeds maximum %d", n, s.cfg.MaxN)
	}
	if n < 1 {
		n = 10
		if n > s.cfg.MaxN {
			n = s.cfg.MaxN
		}
	}
	recs, err := s.cfg.Engine.RecommendContext(ctx, user, n)
	if err != nil {
		return http.StatusInternalServerError, err
	}
	out := rr.Recommendations[:0]
	if cap(out) < len(recs) {
		out = make([]recItem, 0, len(recs))
	}
	for _, rec := range recs {
		tok := strconv.Itoa(int(rec.Item))
		if s.cfg.ItemTokens != nil && int(rec.Item) < len(s.cfg.ItemTokens) {
			tok = s.cfg.ItemTokens[rec.Item]
		}
		out = append(out, recItem{Item: tok, Utility: rec.Utility})
	}
	rr.User = userTok
	rr.Cluster = s.cfg.Engine.ClusterOf(user)
	rr.Recommendations = out
	return http.StatusOK, nil
}

//sociolint:hotpath
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	userTok := r.URL.Query().Get("user")
	if userTok == "" {
		s.writeError(ctx, w, http.StatusBadRequest, "missing user parameter")
		return
	}
	n := 0
	if nArg := r.URL.Query().Get("n"); nArg != "" {
		v, err := strconv.Atoi(nArg)
		if err != nil || v < 1 {
			s.writeError(ctx, w, http.StatusBadRequest, "bad n parameter")
			return
		}
		n = v
	}
	rr := getRecResponse()
	defer putRecResponse(rr)
	status, err := s.recommendFor(ctx, userTok, n, rr)
	if err != nil {
		s.writeError(ctx, w, status, err.Error())
		return
	}
	s.writeJSON(ctx, w, status, rr)
}

// batchRequest is the POST /recommend/batch payload.
type batchRequest struct {
	Users []string `json:"users"`
	N     int      `json:"n"`
}

//sociolint:hotpath
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		//sociolint:ignore hotalloc malformed-request path, the request already failed
		s.writeError(ctx, w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if len(req.Users) == 0 {
		s.writeError(ctx, w, http.StatusBadRequest, "users must be non-empty")
		return
	}
	const maxBatch = 1000
	if len(req.Users) > maxBatch {
		//sociolint:ignore hotalloc rejection path, not the per-request steady state
		s.writeError(ctx, w, http.StatusBadRequest, fmt.Sprintf("batch too large (max %d)", maxBatch))
		return
	}
	// Stream rows into one pooled buffer, reusing a single pooled
	// recResponse for every successful row (each is encoded before the
	// next overwrites it). Nothing touches the ResponseWriter until the
	// buffer holds the complete body, so the PR 2 semantics survive: an
	// encode failure or a mid-batch deadline expiry still becomes a clean
	// error status with Content-Length intact, never a truncated 200.
	e := getEnc()
	defer putEnc(e)
	rr := getRecResponse()
	defer putRecResponse(rr)
	e.buf.WriteString(`{"results":[`)
	for i, tok := range req.Users {
		var row any = rr
		status, err := s.recommendFor(ctx, tok, req.N, rr)
		if err != nil {
			switch status {
			case http.StatusNotFound:
				//sociolint:ignore hotalloc unknown-user row, not the per-request steady state
				row = batchUserError{User: tok, Error: "unknown user"}
			case http.StatusMisdirectedRequest:
				// A misrouted user costs their row, not the batch: the
				// correctly routed rows are still exact.
				//sociolint:ignore hotalloc misdirected row, not the per-request steady state
				row = batchUserError{User: tok, Error: "not owned by this shard"}
			default:
				// Deadline expiry mid-batch aborts the whole request: a batch
				// is one response, and a silently truncated one would be
				// indistinguishable from a complete one.
				s.writeError(ctx, w, status, err.Error())
				return
			}
		}
		if i > 0 {
			e.buf.WriteByte(',')
		}
		if err := e.enc.Encode(row); err != nil {
			s.encodeFailure(ctx, w, err)
			return
		}
		// Encode appends a newline after each value; drop it so the rows
		// read as one compact JSON array.
		e.buf.Truncate(e.buf.Len() - 1)
	}
	e.buf.WriteString("]}\n")
	writeBuf(w, http.StatusOK, &e.buf)
}

// writeJSON encodes v into a pooled buffer before touching the
// ResponseWriter, so an encoding failure can still become a clean 500
// instead of a truncated body behind an already-committed 200 header. ctx
// is the request's, for trace-correlated error logs.
//
//sociolint:hotpath
func (s *Server) writeJSON(ctx context.Context, w http.ResponseWriter, status int, v any) {
	e := getEnc()
	defer putEnc(e)
	if err := e.enc.Encode(v); err != nil {
		s.encodeFailure(ctx, w, err)
		return
	}
	writeBuf(w, status, &e.buf)
}

// writeBuf commits a fully-assembled body: headers (including the exact
// Content-Length) first, then the bytes.
//
//sociolint:hotpath
func writeBuf(w http.ResponseWriter, status int, buf *bytes.Buffer) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	// Best-effort: a failed write means the client is gone.
	_, _ = w.Write(buf.Bytes())
}

// encodeFailure answers a response whose JSON encoding failed. Nothing has
// been committed to w yet (encoding targets the pooled buffer), so the 500
// is clean.
func (s *Server) encodeFailure(ctx context.Context, w http.ResponseWriter, err error) {
	s.metrics.encodeFailures.Inc()
	s.logger.ErrorContext(ctx, "server: encoding response", "err", err)
	http.Error(w, `{"error":"internal encoding failure"}`, http.StatusInternalServerError)
}

func (s *Server) writeError(ctx context.Context, w http.ResponseWriter, status int, msg string) {
	s.writeJSON(ctx, w, status, map[string]string{"error": msg})
}
