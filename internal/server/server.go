// Package server implements the HTTP API served by cmd/recserve: JSON
// endpoints for recommendations, dataset statistics and liveness over a
// private recommendation engine.
//
// The engine performs its differentially private release once at
// construction; every request handled here is post-processing over that
// sanitized state, so request volume never erodes the privacy guarantee.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"

	"socialrec/internal/core"
	"socialrec/internal/dataset"
	"socialrec/internal/telemetry"
)

// Engine is the slice of the recommendation engine the server needs;
// *socialrec.Engine satisfies it.
type Engine interface {
	// Recommend returns the top-n list for one user.
	Recommend(user, n int) ([]core.Recommendation, error)
	// ClusterOf reports the user's (public) community, or -1 if the
	// engine is not cluster-based.
	ClusterOf(user int) int
	// Epsilon reports the privacy budget of the engine's release.
	Epsilon() float64
	// NumClusters reports the community count.
	NumClusters() int
	// Modularity reports the clustering's modularity.
	Modularity() float64
}

// Config assembles a Server.
type Config struct {
	Engine Engine
	// UserIDs maps external user tokens to internal ids (as produced by
	// dataset.ReadSocialTSV).
	UserIDs map[string]int
	// ItemTokens maps internal item ids back to external tokens; nil
	// serves numeric ids.
	ItemTokens []string
	// Stats is the dataset summary served at /stats.
	Stats dataset.Stats
	// MaxN caps the list length a request may ask for; 0 selects 100.
	MaxN int
	// Logf receives request-handling errors; nil selects log.Printf.
	Logf func(format string, args ...any)
	// Metrics receives the server's instruments; nil selects
	// telemetry.Default(). Registration is idempotent, so several servers
	// (e.g. tests) may share one registry.
	Metrics *telemetry.Registry
}

// Server routes HTTP requests to a private recommendation engine.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *metrics
}

// New validates the configuration and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: Engine is required")
	}
	if cfg.UserIDs == nil {
		return nil, fmt.Errorf("server: UserIDs is required")
	}
	if cfg.MaxN <= 0 {
		cfg.MaxN = 100
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), metrics: newMetrics(cfg.Metrics)}
	s.mux.HandleFunc("GET /healthz", s.instrument(epHealthz, s.handleHealthz))
	s.mux.HandleFunc("GET /stats", s.instrument(epStats, s.handleStats))
	s.mux.HandleFunc("GET /recommend", s.instrument(epRecommend, s.handleRecommend))
	s.mux.HandleFunc("POST /recommend/batch", s.instrument(epBatch, s.handleBatch))
	s.mux.HandleFunc("GET /users", s.instrument(epUsers, s.handleUsers))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// Best-effort: a failed health-check write means the client is gone.
	_, _ = fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"users":            s.cfg.Stats.Users,
		"social_edges":     s.cfg.Stats.SocialEdges,
		"items":            s.cfg.Stats.Items,
		"preference_edges": s.cfg.Stats.PrefEdges,
		"sparsity":         s.cfg.Stats.PrefSparsity,
		"clusters":         s.cfg.Engine.NumClusters(),
		"modularity":       s.cfg.Engine.Modularity(),
		"epsilon":          fmt.Sprintf("%g", s.cfg.Engine.Epsilon()),
	})
}

// handleUsers lists known user tokens (paginated), primarily for
// exploration and debugging. User identity and the social graph are public
// in the paper's model, so this endpoint leaks nothing protected.
func (s *Server) handleUsers(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if l := r.URL.Query().Get("limit"); l != "" {
		v, err := strconv.Atoi(l)
		if err != nil || v < 1 {
			s.writeError(w, http.StatusBadRequest, "bad limit parameter")
			return
		}
		limit = v
	}
	tokens := make([]string, 0, len(s.cfg.UserIDs))
	for tok := range s.cfg.UserIDs {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	if len(tokens) > limit {
		tokens = tokens[:limit]
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"users": tokens,
		"total": len(s.cfg.UserIDs),
	})
}

// recItem is one entry of a served recommendation list.
type recItem struct {
	Item    string  `json:"item"`
	Utility float64 `json:"utility"`
}

func (s *Server) recommendFor(userTok string, n int) (map[string]any, int, error) {
	user, ok := s.cfg.UserIDs[userTok]
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown user %q", userTok)
	}
	if n > s.cfg.MaxN {
		return nil, http.StatusBadRequest,
			fmt.Errorf("n %d exceeds maximum %d", n, s.cfg.MaxN)
	}
	if n < 1 {
		n = 10
		if n > s.cfg.MaxN {
			n = s.cfg.MaxN
		}
	}
	recs, err := s.cfg.Engine.Recommend(user, n)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	out := make([]recItem, len(recs))
	for i, rec := range recs {
		tok := strconv.Itoa(int(rec.Item))
		if s.cfg.ItemTokens != nil && int(rec.Item) < len(s.cfg.ItemTokens) {
			tok = s.cfg.ItemTokens[rec.Item]
		}
		out[i] = recItem{Item: tok, Utility: rec.Utility}
	}
	return map[string]any{
		"user":            userTok,
		"cluster":         s.cfg.Engine.ClusterOf(user),
		"recommendations": out,
	}, http.StatusOK, nil
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	userTok := r.URL.Query().Get("user")
	if userTok == "" {
		s.writeError(w, http.StatusBadRequest, "missing user parameter")
		return
	}
	n := 0
	if nArg := r.URL.Query().Get("n"); nArg != "" {
		v, err := strconv.Atoi(nArg)
		if err != nil || v < 1 {
			s.writeError(w, http.StatusBadRequest, "bad n parameter")
			return
		}
		n = v
	}
	body, status, err := s.recommendFor(userTok, n)
	if err != nil {
		s.writeError(w, status, err.Error())
		return
	}
	s.writeJSON(w, status, body)
}

// batchRequest is the POST /recommend/batch payload.
type batchRequest struct {
	Users []string `json:"users"`
	N     int      `json:"n"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad JSON body: "+err.Error())
		return
	}
	if len(req.Users) == 0 {
		s.writeError(w, http.StatusBadRequest, "users must be non-empty")
		return
	}
	const maxBatch = 1000
	if len(req.Users) > maxBatch {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("batch too large (max %d)", maxBatch))
		return
	}
	results := make([]map[string]any, 0, len(req.Users))
	for _, tok := range req.Users {
		body, status, err := s.recommendFor(tok, req.N)
		if err != nil {
			if status == http.StatusNotFound {
				results = append(results, map[string]any{"user": tok, "error": "unknown user"})
				continue
			}
			s.writeError(w, status, err.Error())
			return
		}
		results = append(results, body)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// writeJSON encodes v into a buffer before touching the ResponseWriter, so
// an encoding failure can still become a clean 500 instead of a truncated
// body behind an already-committed 200 header.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		s.metrics.encodeFailures.Inc()
		s.cfg.Logf("server: encoding response: %v", err)
		http.Error(w, `{"error":"internal encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	// Best-effort: a failed write means the client is gone.
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, map[string]string{"error": msg})
}
