package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"socialrec/internal/dataset"
	"socialrec/internal/telemetry"
)

// newMeteredServer builds a server over a private registry so counter
// assertions are not perturbed by other tests sharing telemetry.Default().
func newMeteredServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Engine:  &fakeEngine{users: 5, failOn: 4},
		UserIDs: map[string]int{"alice": 0, "bob": 1, "evil": 4},
		Stats:   dataset.Stats{Users: 5},
		MaxN:    4,
		Logger:  testLogger(t),
		Metrics: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string, wantStatus int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
}

func TestErrorPathsIncrementCounters(t *testing.T) {
	s, ts := newMeteredServer(t)

	// Unknown user: 404, one recommend error.
	get(t, ts.URL+"/recommend?user=nobody", http.StatusNotFound)
	if got := s.metrics.errors[epRecommend].Value(); got != 1 {
		t.Errorf("after unknown user: recommend errors = %d, want 1", got)
	}

	// n > MaxN: 400, second recommend error.
	get(t, ts.URL+"/recommend?user=alice&n=50", http.StatusBadRequest)
	if got := s.metrics.errors[epRecommend].Value(); got != 2 {
		t.Errorf("after n > MaxN: recommend errors = %d, want 2", got)
	}

	// Malformed batch JSON: 400, one batch error.
	resp, err := http.Post(ts.URL+"/recommend/batch", "application/json",
		strings.NewReader(`{"users": [`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d, want 400", resp.StatusCode)
	}
	if got := s.metrics.errors[epBatch].Value(); got != 1 {
		t.Errorf("after malformed batch: batch errors = %d, want 1", got)
	}

	// Engine failure: 500, third recommend error and a 5xx response.
	get(t, ts.URL+"/recommend?user=evil", http.StatusInternalServerError)
	if got := s.metrics.errors[epRecommend].Value(); got != 3 {
		t.Errorf("after engine failure: recommend errors = %d, want 3", got)
	}

	// Status classes: three 4xx (404 + two 400s) and one 5xx.
	if got := s.metrics.responses["status_4xx"].Value(); got != 3 {
		t.Errorf("status_4xx = %d, want 3", got)
	}
	if got := s.metrics.responses["status_5xx"].Value(); got != 1 {
		t.Errorf("status_5xx = %d, want 1", got)
	}

	// A success increments requests and the 2xx class but not errors.
	get(t, ts.URL+"/recommend?user=alice&n=2", http.StatusOK)
	if got := s.metrics.errors[epRecommend].Value(); got != 3 {
		t.Errorf("success incremented errors: %d", got)
	}
	if got := s.metrics.responses["status_2xx"].Value(); got != 1 {
		t.Errorf("status_2xx = %d, want 1", got)
	}
	if got := s.metrics.requests[epRecommend].Value(); got != 4 {
		t.Errorf("recommend requests = %d, want 4", got)
	}
}

func TestLatencyHistogramObserved(t *testing.T) {
	s, ts := newMeteredServer(t)
	get(t, ts.URL+"/healthz", http.StatusOK)
	get(t, ts.URL+"/healthz", http.StatusOK)
	h := s.metrics.latency[epHealthz]
	if h.Count() != 2 {
		t.Errorf("healthz latency count = %d, want 2", h.Count())
	}
	if h.Sum() <= 0 {
		t.Errorf("healthz latency sum = %v, want > 0", h.Sum())
	}
}

func TestInFlightGaugeReturnsToZero(t *testing.T) {
	s, ts := newMeteredServer(t)
	get(t, ts.URL+"/stats", http.StatusOK)
	if got := s.metrics.inFlight.Value(); got != 0 {
		t.Errorf("in-flight after request = %d, want 0", got)
	}
}

// TestEncodeFailureCounted exercises satellite 6: an unencodable body must
// yield a 500 (not a committed 200 with a truncated body) and bump the
// encode-failure counter.
func TestEncodeFailureCounted(t *testing.T) {
	s, _ := newMeteredServer(t)
	rec := httptest.NewRecorder()
	s.writeJSON(context.Background(), rec, http.StatusOK, map[string]any{"bad": func() {}})
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("encode failure status = %d, want 500", rec.Code)
	}
	if got := s.metrics.encodeFailures.Value(); got != 1 {
		t.Errorf("encode failures = %d, want 1", got)
	}
}

// TestContentLengthSet verifies the buffered writer declares the body size
// up front.
func TestContentLengthSet(t *testing.T) {
	s, _ := newMeteredServer(t)
	rec := httptest.NewRecorder()
	s.writeJSON(context.Background(), rec, http.StatusOK, map[string]string{"k": "v"})
	if cl := rec.Header().Get("Content-Length"); cl == "" || cl == "0" {
		t.Errorf("Content-Length = %q, want body size", cl)
	}
	if rec.Body.Len() == 0 {
		t.Error("empty body")
	}
}
