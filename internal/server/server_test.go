package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"socialrec/internal/core"
	"socialrec/internal/dataset"
	"socialrec/internal/trace"
)

// testLogger routes slog records to the test log.
func testLogger(tb testing.TB) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{tb}, nil))
}

type testWriter struct{ tb testing.TB }

func (w testWriter) Write(p []byte) (int, error) {
	w.tb.Logf("%s", p)
	return len(p), nil
}

// discardLogger drops every record (benchmarks where panic stacks would
// swamp the output).
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// fakeEngine serves deterministic lists: item k has utility 10-k. Like the
// real engine, it opens the recommend-phase child spans on the request
// context, so handler tests can assert trace propagation end to end.
type fakeEngine struct {
	users  int
	failOn int // user id that triggers an internal error; -1 disables
}

func (f *fakeEngine) RecommendContext(ctx context.Context, user, n int) ([]core.Recommendation, error) {
	// Mirror the real engine's phase spans (internal/core uses StartLeaf).
	for _, phase := range [...]string{"similarity_batch", "cluster_average", "top_n"} {
		sp := trace.StartLeaf(ctx, phase)
		sp.End()
	}
	if user == f.failOn {
		return nil, fmt.Errorf("boom")
	}
	out := make([]core.Recommendation, n)
	for i := range out {
		out[i] = core.Recommendation{Item: int32(i), Utility: float64(10 - i)}
	}
	return out, nil
}

func (f *fakeEngine) ClusterOf(user int) int { return user % 3 }
func (f *fakeEngine) Epsilon() float64       { return 0.5 }
func (f *fakeEngine) NumClusters() int       { return 3 }
func (f *fakeEngine) Modularity() float64    { return 0.42 }

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := New(Config{
		Engine:     &fakeEngine{users: 5, failOn: 4},
		UserIDs:    map[string]int{"alice": 0, "bob": 1, "carol": 2, "dave": 3, "evil": 4},
		ItemTokens: []string{"i0", "i1", "i2", "i3", "i4", "i5"},
		Stats:      dataset.Stats{Users: 5, Items: 6, PrefEdges: 9},
		MaxN:       4,
		Logger:     testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return body
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing engine should fail")
	}
	if _, err := New(Config{Engine: &fakeEngine{}}); err == nil {
		t.Error("missing user ids should fail")
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if body["users"].(float64) != 5 || body["clusters"].(float64) != 3 {
		t.Errorf("stats = %v", body)
	}
	if body["epsilon"] != "0.5" {
		t.Errorf("epsilon = %v", body["epsilon"])
	}
}

func TestRecommend(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/recommend?user=alice&n=2", http.StatusOK)
	if body["user"] != "alice" {
		t.Errorf("user = %v", body["user"])
	}
	recs := body["recommendations"].([]any)
	if len(recs) != 2 {
		t.Fatalf("recs = %v", recs)
	}
	first := recs[0].(map[string]any)
	if first["item"] != "i0" || first["utility"].(float64) != 10 {
		t.Errorf("first rec = %v", first)
	}
	if body["cluster"].(float64) != 0 {
		t.Errorf("cluster = %v", body["cluster"])
	}
}

func TestRecommendCapsN(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/recommend?user=bob&n=50", http.StatusBadRequest)
	if msg, _ := body["error"].(string); !strings.Contains(msg, "exceeds maximum") {
		t.Errorf("n > MaxN error = %v, want explicit rejection", body["error"])
	}
	// The maximum itself is still served.
	body = getJSON(t, ts.URL+"/recommend?user=bob&n=4", http.StatusOK)
	if recs := body["recommendations"].([]any); len(recs) != 4 {
		t.Errorf("n = MaxN served %d recs, want 4", len(recs))
	}
}

func TestRecommendDefaultN(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/recommend?user=bob", http.StatusOK)
	recs := body["recommendations"].([]any)
	if len(recs) != 4 { // default 10 capped to MaxN 4
		t.Errorf("default n recs = %d, want 4", len(recs))
	}
}

func TestRecommendErrors(t *testing.T) {
	ts := newTestServer(t)
	getJSON(t, ts.URL+"/recommend", http.StatusBadRequest)
	getJSON(t, ts.URL+"/recommend?user=nobody", http.StatusNotFound)
	getJSON(t, ts.URL+"/recommend?user=alice&n=zero", http.StatusBadRequest)
	getJSON(t, ts.URL+"/recommend?user=evil", http.StatusInternalServerError)
}

func TestUsers(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/users?limit=2", http.StatusOK)
	if body["total"].(float64) != 5 {
		t.Errorf("total = %v", body["total"])
	}
	users := body["users"].([]any)
	if len(users) != 2 || users[0] != "alice" {
		t.Errorf("users = %v", users)
	}
}

func TestBatch(t *testing.T) {
	ts := newTestServer(t)
	payload := `{"users": ["alice", "nobody", "bob"], "n": 1}`
	resp, err := http.Post(ts.URL+"/recommend/batch", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	if results[1].(map[string]any)["error"] != "unknown user" {
		t.Errorf("unknown user not reported per-row: %v", results[1])
	}
	if results[0].(map[string]any)["user"] != "alice" {
		t.Errorf("row 0 = %v", results[0])
	}
}

func TestBatchValidation(t *testing.T) {
	ts := newTestServer(t)
	for _, payload := range []string{`not json`, `{"users": []}`} {
		resp, err := http.Post(ts.URL+"/recommend/batch", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %q: status = %d, want 400", payload, resp.StatusCode)
		}
	}
}

func TestMethodRouting(t *testing.T) {
	ts := newTestServer(t)
	// POST to a GET-only route must 405.
	resp, err := http.Post(ts.URL+"/recommend?user=alice", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", resp.StatusCode)
	}
}
