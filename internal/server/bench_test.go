package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"socialrec/internal/dataset"
	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
)

func benchServer(b *testing.B) *httptest.Server {
	b.Helper()
	s, err := New(Config{
		Engine:  &fakeEngine{users: 100, failOn: -1},
		UserIDs: map[string]int{"alice": 0, "bob": 1},
		Stats:   dataset.Stats{Users: 100},
		MaxN:    50,
		Logger:  testLogger(b),
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	b.Cleanup(ts.Close)
	return ts
}

func BenchmarkRecommendHandler(b *testing.B) {
	ts := benchServer(b)
	url := ts.URL + "/recommend?user=alice&n=10"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// BenchmarkServerChaos drives the hardened request path with a mixed fault
// plan — probabilistic errors, panics on a schedule, and latency jitter —
// and fails if any request produces an unexpected status or the process
// stops answering. `make chaos` runs it under -race to prove the stack
// survives sustained injected failure without panics or deadlocks.
func BenchmarkServerChaos(b *testing.B) {
	reg := faults.New(42)
	// Baseline plan: 10% of requests fail with an injected 500 plus a
	// little latency; every 50th iteration swaps in a one-shot panic so the
	// run also exercises the recovery middleware.
	reg.Arm(faults.PointHandler, faults.Plan{Prob: 0.1, Delay: 50 * time.Microsecond})
	s, err := New(Config{
		Engine:         NewHot(&fakeEngine{users: 100, failOn: -1}, 1),
		UserIDs:        map[string]int{"alice": 0, "bob": 1},
		Stats:          dataset.Stats{Users: 100},
		MaxN:           50,
		Logger:         discardLogger(), // panic stacks would swamp -v output
		Metrics:        telemetry.NewRegistry(),
		Faults:         reg,
		MaxInFlight:    8,
		RequestTimeout: time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	b.Cleanup(ts.Close)
	url := ts.URL + "/recommend?user=alice&n=10"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%50 == 0 {
			// Periodically switch the plan to a panicking one and back, so
			// the run exercises both containment paths.
			reg.Arm(faults.PointHandler, faults.Plan{Times: 1, Panic: true})
		}
		resp, err := http.Get(url)
		if err != nil {
			b.Fatalf("request %d: server stopped answering: %v", i, err)
		}
		if resp.StatusCode != http.StatusOK &&
			resp.StatusCode != http.StatusInternalServerError &&
			resp.StatusCode != http.StatusServiceUnavailable {
			b.Fatalf("request %d: unexpected status %d", i, resp.StatusCode)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if i%50 == 0 {
			reg.Arm(faults.PointHandler, faults.Plan{Prob: 0.1, Delay: 50 * time.Microsecond})
		}
	}
	// The process must still be fully healthy after sustained chaos.
	b.StopTimer()
	reg.DisarmAll()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		b.Fatalf("post-chaos healthz: %v / %v", resp, err)
	}
	resp.Body.Close()
}

func BenchmarkBatchHandler(b *testing.B) {
	ts := benchServer(b)
	payload := `{"users": ["alice", "bob"], "n": 10}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/recommend/batch", "application/json", strings.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}
