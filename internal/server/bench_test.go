package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"socialrec/internal/dataset"
)

func benchServer(b *testing.B) *httptest.Server {
	b.Helper()
	s, err := New(Config{
		Engine:  &fakeEngine{users: 100, failOn: -1},
		UserIDs: map[string]int{"alice": 0, "bob": 1},
		Stats:   dataset.Stats{Users: 100},
		MaxN:    50,
		Logf:    b.Logf,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	b.Cleanup(ts.Close)
	return ts
}

func BenchmarkRecommendHandler(b *testing.B) {
	ts := benchServer(b)
	url := ts.URL + "/recommend?user=alice&n=10"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

func BenchmarkBatchHandler(b *testing.B) {
	ts := benchServer(b)
	payload := `{"users": ["alice", "bob"], "n": 10}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/recommend/batch", "application/json", strings.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}
