package server

import "time"

// Bounds on the adaptive Retry-After hint: never below a second (the
// header's resolution), never beyond 30 s — past that, the honest answer
// is "check readiness", not "wait longer".
const (
	minRetryAfter = 1
	maxRetryAfter = 30
)

// retryAfterSeconds computes the shed response's Retry-After hint from the
// limiter's state: with depth requests in flight over capacity slots and
// requests recently taking recent each, a freshly shed client can expect
// a slot after roughly ceil(depth/capacity) generations of recent. The
// result is clamped to [minRetryAfter, maxRetryAfter] whole seconds.
//
// With no latency signal yet (cold start), the configured static fallback
// applies, rounded up to a whole second.
func retryAfterSeconds(depth, capacity int, recent, fallback time.Duration) int {
	if recent <= 0 {
		return clampRetryAfter(ceilSeconds(fallback))
	}
	if capacity < 1 {
		capacity = 1
	}
	if depth < capacity {
		// Shed raced a slot freeing; the wait is one request's worth.
		depth = capacity
	}
	generations := (depth + capacity - 1) / capacity
	return clampRetryAfter(ceilSeconds(time.Duration(generations) * recent))
}

func ceilSeconds(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return int((d + time.Second - 1) / time.Second)
}

func clampRetryAfter(secs int) int {
	if secs < minRetryAfter {
		return minRetryAfter
	}
	if secs > maxRetryAfter {
		return maxRetryAfter
	}
	return secs
}

// observeLatency folds one request's latency into the server's EWMA
// (alpha 1/8): recent enough to track load shifts, smooth enough that one
// slow request does not swing the shed hint.
func (s *Server) observeLatency(d time.Duration) {
	for {
		old := s.ewmaNanos.Load()
		updated := int64(d)
		if old != 0 {
			updated = old + (int64(d)-old)/8
		}
		if s.ewmaNanos.CompareAndSwap(old, updated) {
			return
		}
	}
}

// recentLatency reports the latency EWMA, or 0 before any observation.
func (s *Server) recentLatency() time.Duration {
	return time.Duration(s.ewmaNanos.Load())
}
