package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"socialrec/internal/faults"
	"socialrec/internal/trace"
)

// Hardening middleware for the request path. The serving endpoints run the
// full stack, assembled outermost-first by traced(harden()):
//
//	traced → instrument → limit → recover → deadline → chaos → handler
//
// traced is outermost so the root span covers the entire request (shed and
// panicked requests still produce spans) and every inner layer sees the
// span through the request context; instrument counts per endpoint; limit
// sheds before any work is spent; recover contains everything below it,
// including injected chaos panics; deadline bounds the handler's context;
// chaos (active only when Config.Faults is armed) injects deterministic
// faults at the innermost point so every injected failure exercises the
// entire recovery stack above it.
//
// The health endpoints deliberately run only traced+instrument+recover:
// liveness and readiness probes must keep answering while the serving path
// is saturated, or an overloaded-but-healthy process gets restarted into a
// thundering herd.

// harden wraps a serving handler with the full middleware stack.
func (s *Server) harden(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	h = s.chaos(h)
	h = s.deadline(h)
	h = s.recovery(h)
	h = s.limit(h)
	return s.instrument(endpoint, h)
}

// attrHTTPStatus carries the response status on the root span. Statuses are
// small static integers; no request content rides along.
var attrHTTPStatus = trace.NewKey("http_status")

// traced opens the request's root span: an inbound W3C traceparent header
// is continued (same trace ID, so the deterministic head-sampling decision
// matches the caller's; remote span as parent), anything else — absent or
// malformed — starts a fresh root. The response always carries the
// traceparent of the span that handled it, so clients can quote the id
// back when reporting a slow or failed request. A 5xx marks the span
// errored, which forces the whole trace through tail retention.
func (s *Server) traced(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	name := "http_" + endpoint
	return func(w http.ResponseWriter, r *http.Request) {
		var (
			ctx context.Context
			sp  trace.Span
		)
		if tp, err := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader)); err == nil {
			ctx, sp = s.tracer.StartRemote(r.Context(), name, tp)
		} else {
			ctx, sp = s.tracer.StartRoot(r.Context(), name)
		}
		defer sp.End()
		w.Header().Set(trace.TraceparentHeader, trace.Traceparent{
			TraceID:  sp.TraceID(),
			ParentID: sp.SpanID(),
			Sampled:  sp.HeadSampled(),
		}.String())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(ctx))
		sp.Set(attrHTTPStatus.Int(int64(sw.status)))
		if sw.status >= http.StatusInternalServerError {
			sp.SetStatus(trace.StatusError)
		}
	}
}

// recovery converts a handler panic into a 500 response and a counter
// increment, keeping the process serving. The panic value and stack are
// logged; neither reaches the response body (stacks can name internal
// state; clients get a generic error).
func (s *Server) recovery(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			s.metrics.panics.Inc()
			s.logger.ErrorContext(r.Context(), "server: panic recovered",
				"panic", fmt.Sprint(v), "stack", string(debug.Stack()))
			if sw, ok := w.(*statusWriter); ok && sw.wrote {
				// The handler already committed a response; nothing more
				// can be sent, but the connection and process survive.
				return
			}
			s.writeError(r.Context(), w, http.StatusInternalServerError, "internal error")
		}()
		h(w, r)
	}
}

// limit sheds load once maxInFlight requests are already in the serving
// path: excess requests get an immediate 503 with Retry-After instead of
// queueing into memory exhaustion or timeout cascades. The hint is
// adaptive — derived from the current in-flight depth and the recent
// latency EWMA (see retryafter.go) — so a lightly loaded spike says
// "retry in 1s" while a deep stall under slow requests pushes clients
// further out instead of inviting a synchronized retry storm.
func (s *Server) limit(h http.HandlerFunc) http.HandlerFunc {
	if s.sem == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			h(w, r)
		default:
			s.metrics.shed.Inc()
			hint := retryAfterSeconds(len(s.sem), cap(s.sem), s.recentLatency(), s.cfg.RetryAfter)
			w.Header().Set("Retry-After", strconv.Itoa(hint))
			s.writeError(r.Context(), w, http.StatusServiceUnavailable, "server saturated, retry later")
		}
	}
}

// BudgetHeader carries a caller's remaining deadline budget in whole
// milliseconds across a proxy hop. internal/router sets it to strictly
// less than its own remaining budget on every proxied attempt; the
// deadline middleware below caps the local timeout to it, so a shard's
// deadline always fires before the router's and a timeout is attributed
// at the layer that owns it.
const BudgetHeader = "Request-Budget-Ms"

// deadline attaches a per-request deadline to the request context, so
// handler work (batch loops, future engine calls) has a bound to observe.
// An inbound Request-Budget-Ms header tightens (never extends) the
// configured timeout. A handler that returns with the deadline expired is
// counted.
func (s *Server) deadline(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.RequestTimeout <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		timeout := s.cfg.RequestTimeout
		if v := r.Header.Get(BudgetHeader); v != "" {
			if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
				if budget := time.Duration(ms) * time.Millisecond; budget < timeout {
					timeout = budget
				}
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		h(w, r.WithContext(ctx))
		if ctx.Err() != nil {
			s.metrics.timeouts.Inc()
		}
	}
}

// chaos consults the fault-injection registry once per request. Unarmed
// (the production default, Config.Faults nil) it is free; under -chaos the
// armed plan injects deterministic delays, errors, or panics — the panics
// deliberately crash into the recovery middleware to prove containment.
func (s *Server) chaos(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.Faults == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if err := s.cfg.Faults.Check(faults.PointHandler); err != nil {
			s.metrics.chaosInjected.Inc()
			s.writeError(r.Context(), w, http.StatusInternalServerError, "injected fault")
			return
		}
		h(w, r)
	}
}
