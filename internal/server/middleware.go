package server

import (
	"context"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"socialrec/internal/faults"
)

// Hardening middleware for the request path. The serving endpoints run the
// full stack, assembled outermost-first by harden():
//
//	instrument → limit → recover → deadline → chaos → handler
//
// instrument stays outermost so shed and panicked requests are still
// counted per endpoint; limit sheds before any work is spent; recover
// contains everything below it, including injected chaos panics; deadline
// bounds the handler's context; chaos (active only when Config.Faults is
// armed) injects deterministic faults at the innermost point so every
// injected failure exercises the entire recovery stack above it.
//
// The health endpoints deliberately run only instrument+recover: liveness
// and readiness probes must keep answering while the serving path is
// saturated, or an overloaded-but-healthy process gets restarted into a
// thundering herd.

// harden wraps a serving handler with the full middleware stack.
func (s *Server) harden(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	h = s.chaos(h)
	h = s.deadline(h)
	h = s.recovery(h)
	h = s.limit(h)
	return s.instrument(endpoint, h)
}

// recovery converts a handler panic into a 500 response and a counter
// increment, keeping the process serving. The panic value and stack are
// logged; neither reaches the response body (stacks can name internal
// state; clients get a generic error).
func (s *Server) recovery(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			s.metrics.panics.Inc()
			s.cfg.Logf("server: panic recovered: %v\n%s", v, debug.Stack())
			if sw, ok := w.(*statusWriter); ok && sw.wrote {
				// The handler already committed a response; nothing more
				// can be sent, but the connection and process survive.
				return
			}
			s.writeError(w, http.StatusInternalServerError, "internal error")
		}()
		h(w, r)
	}
}

// limit sheds load once maxInFlight requests are already in the serving
// path: excess requests get an immediate 503 with Retry-After instead of
// queueing into memory exhaustion or timeout cascades.
func (s *Server) limit(h http.HandlerFunc) http.HandlerFunc {
	if s.sem == nil {
		return h
	}
	retryAfter := strconv.Itoa(int(s.cfg.RetryAfter / time.Second))
	if s.cfg.RetryAfter%time.Second != 0 || s.cfg.RetryAfter == 0 {
		retryAfter = "1"
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			h(w, r)
		default:
			s.metrics.shed.Inc()
			w.Header().Set("Retry-After", retryAfter)
			s.writeError(w, http.StatusServiceUnavailable, "server saturated, retry later")
		}
	}
}

// deadline attaches a per-request deadline to the request context, so
// handler work (batch loops, future engine calls) has a bound to observe.
// A handler that returns with the deadline expired is counted.
func (s *Server) deadline(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.RequestTimeout <= 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
		if ctx.Err() != nil {
			s.metrics.timeouts.Inc()
		}
	}
}

// chaos consults the fault-injection registry once per request. Unarmed
// (the production default, Config.Faults nil) it is free; under -chaos the
// armed plan injects deterministic delays, errors, or panics — the panics
// deliberately crash into the recovery middleware to prove containment.
func (s *Server) chaos(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.Faults == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if err := s.cfg.Faults.Check(faults.PointHandler); err != nil {
			s.metrics.chaosInjected.Inc()
			s.writeError(w, http.StatusInternalServerError, "injected fault")
			return
		}
		h(w, r)
	}
}
