package server

import (
	"testing"
	"time"
)

func TestRetryAfterSeconds(t *testing.T) {
	tests := []struct {
		name     string
		depth    int
		capacity int
		recent   time.Duration
		fallback time.Duration
		want     int
	}{
		{"cold start uses fallback", 10, 10, 0, 3 * time.Second, 3},
		{"cold start fallback rounds up", 10, 10, 0, 1500 * time.Millisecond, 2},
		{"cold start fallback clamped low", 10, 10, 0, 0, 1},
		{"cold start fallback clamped high", 10, 10, 0, 5 * time.Minute, 30},
		{"one generation of fast requests", 10, 10, 200 * time.Millisecond, time.Second, 1},
		{"one generation of slow requests", 10, 10, 4 * time.Second, time.Second, 4},
		{"deep queue multiplies generations", 30, 10, 2 * time.Second, time.Second, 6},
		{"partial generation rounds up", 25, 10, 2 * time.Second, time.Second, 6},
		{"depth below capacity still waits one generation", 3, 10, 5 * time.Second, time.Second, 5},
		{"clamped to the ceiling", 100, 1, 10 * time.Second, time.Second, 30},
		{"never below one second", 10, 10, time.Millisecond, time.Second, 1},
		{"zero capacity treated as one", 5, 0, 2 * time.Second, time.Second, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := retryAfterSeconds(tt.depth, tt.capacity, tt.recent, tt.fallback); got != tt.want {
				t.Errorf("retryAfterSeconds(%d, %d, %v, %v) = %d, want %d",
					tt.depth, tt.capacity, tt.recent, tt.fallback, got, tt.want)
			}
		})
	}
}

func TestObserveLatencyEWMA(t *testing.T) {
	s := &Server{}
	if got := s.recentLatency(); got != 0 {
		t.Fatalf("recentLatency before any observation = %v, want 0", got)
	}
	// The first observation seeds the EWMA directly.
	s.observeLatency(800 * time.Millisecond)
	if got := s.recentLatency(); got != 800*time.Millisecond {
		t.Fatalf("after first observation = %v, want 800ms", got)
	}
	// Subsequent observations move 1/8 of the gap: one fast request
	// cannot collapse the hint.
	s.observeLatency(0)
	if got := s.recentLatency(); got != 700*time.Millisecond {
		t.Fatalf("after one zero observation = %v, want 700ms", got)
	}
	// Sustained slow requests converge upward.
	for i := 0; i < 100; i++ {
		s.observeLatency(2 * time.Second)
	}
	if got := s.recentLatency(); got < 1900*time.Millisecond || got > 2*time.Second {
		t.Fatalf("after sustained 2s observations = %v, want near 2s", got)
	}
}

// TestShedUsesAdaptiveHint wires the pieces: a saturated server whose
// recent requests were slow must push shed clients further out than the
// static fallback would.
func TestShedUsesAdaptiveHint(t *testing.T) {
	s := &Server{}
	s.observeLatency(4 * time.Second)
	got := retryAfterSeconds(1, 1, s.recentLatency(), time.Second)
	if got != 4 {
		t.Fatalf("adaptive hint = %d, want 4 (one 4s generation)", got)
	}
}
