package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"socialrec/internal/core"
	"socialrec/internal/dataset"
	"socialrec/internal/faults"
	"socialrec/internal/telemetry"
)

// blockingEngine parks every recommend call until release is closed,
// signalling entered first — the tool for saturating the limiter.
type blockingEngine struct {
	fakeEngine
	entered chan struct{}
	release chan struct{}
}

func (b *blockingEngine) RecommendContext(ctx context.Context, user, n int) ([]core.Recommendation, error) {
	b.entered <- struct{}{}
	<-b.release
	return b.fakeEngine.RecommendContext(ctx, user, n)
}

// slowEngine delays every recommend call, for deadline tests.
type slowEngine struct {
	fakeEngine
	delay time.Duration
}

func (s *slowEngine) RecommendContext(ctx context.Context, user, n int) ([]core.Recommendation, error) {
	time.Sleep(s.delay)
	return s.fakeEngine.RecommendContext(ctx, user, n)
}

// hardenedServer builds a test server with an isolated telemetry registry
// so counter assertions don't see other tests' traffic.
func hardenedServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Engine:  &fakeEngine{users: 5, failOn: -1},
		UserIDs: map[string]int{"alice": 0, "bob": 1},
		Stats:   dataset.Stats{Users: 5},
		MaxN:    10,
		Logger:  testLogger(t),
		Metrics: telemetry.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// TestPanicRecovery is acceptance criterion (c): an injected handler panic
// yields a 500 and an incremented counter, and the process keeps serving.
func TestPanicRecovery(t *testing.T) {
	reg := faults.New(1)
	reg.Arm(faults.PointHandler, faults.Plan{Times: 1, Panic: true})
	s, ts := hardenedServer(t, func(cfg *Config) { cfg.Faults = reg })

	body := getJSON(t, ts.URL+"/recommend?user=alice&n=2", http.StatusInternalServerError)
	if body["error"] != "internal error" {
		t.Errorf("panic response = %v", body)
	}
	if got := s.metrics.panics.Value(); got != 1 {
		t.Errorf("http_panics_recovered_total = %d, want 1", got)
	}
	// The process survived: the very next request serves normally.
	body = getJSON(t, ts.URL+"/recommend?user=alice&n=2", http.StatusOK)
	if body["user"] != "alice" {
		t.Errorf("post-panic request = %v", body)
	}
	if got := s.metrics.panics.Value(); got != 1 {
		t.Errorf("panics counter moved without a panic: %d", got)
	}
}

func TestChaosInjectedError(t *testing.T) {
	reg := faults.New(1)
	reg.Arm(faults.PointHandler, faults.Plan{Times: 1})
	s, ts := hardenedServer(t, func(cfg *Config) { cfg.Faults = reg })

	body := getJSON(t, ts.URL+"/recommend?user=alice&n=2", http.StatusInternalServerError)
	if body["error"] != "injected fault" {
		t.Errorf("chaos response = %v", body)
	}
	if got := s.metrics.chaosInjected.Value(); got != 1 {
		t.Errorf("http_chaos_injected_total = %d, want 1", got)
	}
	getJSON(t, ts.URL+"/recommend?user=alice&n=2", http.StatusOK)
}

// TestLimiterSheds is acceptance criterion (d): saturating the concurrency
// limiter yields 503 + Retry-After, counted in telemetry.
func TestLimiterSheds(t *testing.T) {
	eng := &blockingEngine{
		fakeEngine: fakeEngine{users: 5, failOn: -1},
		entered:    make(chan struct{}, 1),
		release:    make(chan struct{}),
	}
	s, ts := hardenedServer(t, func(cfg *Config) {
		cfg.Engine = eng
		cfg.MaxInFlight = 1
		cfg.RetryAfter = 3 * time.Second
	})

	// Request 1 occupies the single serving slot inside the engine.
	done := make(chan map[string]any, 1)
	go func() {
		done <- getJSON(t, ts.URL+"/recommend?user=alice&n=2", http.StatusOK)
	}()
	<-eng.entered

	// Request 2 finds the limiter full and is shed immediately.
	resp, err := http.Get(ts.URL + "/recommend?user=bob&n=2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want %q", got, "3")
	}
	shedBody := decodeBody(t, resp)
	if msg, _ := shedBody["error"].(string); !strings.Contains(msg, "saturated") {
		t.Errorf("shed body = %v", shedBody)
	}
	if got := s.metrics.shed.Value(); got != 1 {
		t.Errorf("http_shed_total = %d, want 1", got)
	}

	// Health and readiness probes are never shed, even while saturated.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz under saturation = %d, want 200", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/readyz", http.StatusOK)

	// Releasing the first request frees the slot for new traffic.
	close(eng.release)
	if body := <-done; body["user"] != "alice" {
		t.Errorf("occupying request = %v", body)
	}
	getJSON(t, ts.URL+"/recommend?user=bob&n=2", http.StatusOK)
	if got := s.metrics.shed.Value(); got != 1 {
		t.Errorf("shed counter moved after slot freed: %d", got)
	}
}

func TestDeadlineExpiryMidBatch(t *testing.T) {
	s, ts := hardenedServer(t, func(cfg *Config) {
		cfg.Engine = &slowEngine{
			fakeEngine: fakeEngine{users: 5, failOn: -1},
			delay:      60 * time.Millisecond,
		}
		cfg.RequestTimeout = 30 * time.Millisecond
	})

	// The first user's slow Recommend outlives the request deadline; the
	// second iteration sees the expired context and aborts the whole batch
	// rather than returning a silently truncated response.
	payload := `{"users": ["alice", "bob"], "n": 1}`
	resp, err := http.Post(ts.URL+"/recommend/batch", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired batch status = %d, want 504", resp.StatusCode)
	}
	body := decodeBody(t, resp)
	if msg, _ := body["error"].(string); !strings.Contains(msg, "deadline") {
		t.Errorf("expired batch body = %v", body)
	}
	if got := s.metrics.timeouts.Value(); got != 1 {
		t.Errorf("http_request_timeouts_total = %d, want 1", got)
	}
}

func TestDeadlineDisabled(t *testing.T) {
	_, ts := hardenedServer(t, func(cfg *Config) {
		cfg.Engine = &slowEngine{
			fakeEngine: fakeEngine{users: 5, failOn: -1},
			delay:      5 * time.Millisecond,
		}
		cfg.RequestTimeout = -1
	})
	getJSON(t, ts.URL+"/recommend?user=alice&n=2", http.StatusOK)
}

func TestChaosDelayOnly(t *testing.T) {
	// DelayOnly plans slow the handler without failing it — latency chaos
	// must not corrupt responses.
	reg := faults.New(7)
	reg.Arm(faults.PointHandler, faults.Plan{DelayOnly: true, Delay: time.Millisecond})
	_, ts := hardenedServer(t, func(cfg *Config) { cfg.Faults = reg })
	for i := 0; i < 3; i++ {
		body := getJSON(t, ts.URL+"/recommend?user=alice&n=2", http.StatusOK)
		if body["user"] != "alice" {
			t.Fatalf("delayed response = %v", body)
		}
	}
}
