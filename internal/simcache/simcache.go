// Package simcache provides a bounded, concurrency-safe LRU cache for
// per-user similarity vectors. Similarity computation is the dominant
// per-request cost when serving recommendations (the sanitized release is a
// table lookup); since the social graph is static for the lifetime of an
// engine (§2.3's snapshot assumption), similarity vectors are perfectly
// cacheable. Caching affects performance only — similarity is computed from
// public data, so no privacy accounting is involved.
package simcache

import (
	"container/list"
	"sync"

	"socialrec/internal/graph"
	"socialrec/internal/similarity"
)

// Cache memoizes Measure.Similar results for one (graph, measure) pair.
type Cache struct {
	g        *graph.Social
	m        similarity.Measure
	capacity int

	mu      sync.Mutex
	order   *list.List // front = most recent; values are *entry
	entries map[int32]*list.Element

	hits, misses, evictions uint64
}

type entry struct {
	user   int32
	scores similarity.Scores
}

// New returns a cache over g and m holding at most capacity vectors;
// capacity < 1 selects 4096.
func New(g *graph.Social, m similarity.Measure, capacity int) *Cache {
	if capacity < 1 {
		capacity = 4096
	}
	return &Cache{
		g:        g,
		m:        m,
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[int32]*list.Element, capacity),
	}
}

// Similar returns sim(u, ·), computing and caching it on first use. The
// returned Scores must be treated as immutable (it is shared between
// callers).
func (c *Cache) Similar(u int32) similarity.Scores {
	c.mu.Lock()
	if el, ok := c.entries[u]; ok {
		c.order.MoveToFront(el)
		c.hits++
		s := el.Value.(*entry).scores
		c.mu.Unlock()
		return s
	}
	c.misses++
	c.mu.Unlock()

	// Compute outside the lock: similarity can be expensive and other
	// users' lookups should not stall behind it. A racing duplicate
	// computation is possible and harmless (both produce the same value).
	s := c.m.Similar(c.g, int(u), nil)

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[u]; ok {
		// Lost the race; keep the incumbent.
		c.order.MoveToFront(el)
		return el.Value.(*entry).scores
	}
	el := c.order.PushFront(&entry{user: u, scores: s})
	c.entries[u] = el
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).user)
		c.evictions++
	}
	return s
}

// Stats is a point-in-time snapshot of the cache's counters and shape. All
// fields describe cache behaviour only — which public similarity vectors
// are resident — so exporting them (e.g. via telemetry gauges) is safe.
type Stats struct {
	// Hits and Misses count Similar calls that found / did not find a
	// cached vector.
	Hits, Misses uint64
	// Evictions counts vectors dropped by the LRU capacity bound.
	Evictions uint64
	// Len is the number of currently cached vectors; Capacity the bound.
	Len, Capacity int
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any lookups.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats reports the cache's cumulative counters and current occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       c.order.Len(),
		Capacity:  c.capacity,
	}
}

// Len reports the number of cached vectors.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
