package simcache

import (
	"sync"
	"testing"

	"socialrec/internal/similarity"
)

// TestConcurrentComputeAndCache drives the two concurrent similarity paths
// at once — similarity.ComputeAll's parallel batch workers and a herd of
// goroutines hammering one Cache with overlapping reads, writes, evictions
// and stats queries — so `go test -race` (the CI gate's race step) has a
// real interleaving to examine rather than single-goroutine coverage.
// Correctness of the values is asserted against a single-threaded
// reference at the end.
func TestConcurrentComputeAndCache(t *testing.T) {
	const (
		users   = 120
		readers = 8
		rounds  = 40
	)
	g := testGraph(t, users)
	m := similarity.CommonNeighbors{}

	// Small capacity keeps the LRU evicting under load, exercising the
	// map/list mutation paths, not just hits.
	c := New(g, m, users/4)

	ids := make([]int32, users)
	for i := range ids {
		ids[i] = int32(i)
	}

	var wg sync.WaitGroup
	var batch []similarity.Scores
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Parallel batch compute spawns its own GOMAXPROCS workers over
		// the same graph the cache is reading.
		batch = similarity.ComputeAll(g, m, ids, 0)
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Overlapping strides so goroutines collide on users:
				// some hit, some miss, some race to insert the same
				// vector and take the lost-the-race path.
				u := int32((i*readers + r) % users)
				s := c.Similar(u)
				for j := 1; j < len(s.Users); j++ {
					if s.Users[j-1] >= s.Users[j] {
						t.Errorf("user %d: unsorted similarity set", u)
						return
					}
				}
				if i%7 == 0 {
					c.Stats()
					c.Len()
				}
			}
		}(r)
	}
	wg.Wait()

	st := c.Stats()
	if st.Hits+st.Misses != readers*rounds {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, readers*rounds)
	}
	// Eviction accounting must balance under concurrency: everything ever
	// inserted is either still resident or was evicted exactly once, and a
	// miss inserts at most once (racing duplicates keep the incumbent), so
	// misses ≥ evictions + len.
	if st.Misses < st.Evictions+uint64(st.Len) {
		t.Errorf("misses (%d) < evictions (%d) + len (%d); eviction accounting drifted under race",
			st.Misses, st.Evictions, st.Len)
	}
	if st.Capacity != users/4 || st.Len > st.Capacity {
		t.Errorf("len/capacity = %d/%d, want len ≤ capacity = %d", st.Len, st.Capacity, users/4)
	}

	// The concurrent answers must equal the single-threaded reference.
	for u := 0; u < users; u++ {
		want := m.Similar(g, u, nil)
		got := c.Similar(int32(u))
		if len(got.Users) != len(want.Users) {
			t.Fatalf("user %d: cached %d scores, want %d", u, len(got.Users), len(want.Users))
		}
		for j := range want.Users {
			if got.Users[j] != want.Users[j] || got.Vals[j] != want.Vals[j] {
				t.Fatalf("user %d: cached vector differs at %d", u, j)
			}
		}
		if len(batch[u].Users) != len(want.Users) {
			t.Fatalf("user %d: batch %d scores, want %d", u, len(batch[u].Users), len(want.Users))
		}
		for j := range want.Users {
			if batch[u].Users[j] != want.Users[j] || batch[u].Vals[j] != want.Vals[j] {
				t.Fatalf("user %d: batch vector differs at %d", u, j)
			}
		}
	}
}
