package simcache

import (
	"math/rand"
	"sync"
	"testing"

	"socialrec/internal/graph"
	"socialrec/internal/similarity"
)

func testGraph(t testing.TB, n int) *graph.Social {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	b := graph.NewSocialBuilder(n)
	for k := 0; k < 4*n; k++ {
		_ = b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

func TestCacheCorrectness(t *testing.T) {
	g := testGraph(t, 40)
	m := similarity.CommonNeighbors{}
	c := New(g, m, 100)
	for u := 0; u < 40; u++ {
		got := c.Similar(int32(u))
		want := m.Similar(g, u, nil)
		if len(got.Users) != len(want.Users) {
			t.Fatalf("user %d: cached result differs", u)
		}
		for i := range want.Users {
			if got.Users[i] != want.Users[i] || got.Vals[i] != want.Vals[i] {
				t.Fatalf("user %d: cached result differs", u)
			}
		}
	}
}

func TestCacheHitAccounting(t *testing.T) {
	g := testGraph(t, 10)
	c := New(g, similarity.CommonNeighbors{}, 100)
	c.Similar(3)
	c.Similar(3)
	c.Similar(3)
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("hits, misses = %d, %d; want 2, 1", st.Hits, st.Misses)
	}
	if got, want := st.HitRatio(), 2.0/3.0; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("HitRatio() = %v, want %v", got, want)
	}
}

func TestCacheEviction(t *testing.T) {
	g := testGraph(t, 30)
	c := New(g, similarity.CommonNeighbors{}, 5)
	for u := 0; u < 20; u++ {
		c.Similar(int32(u))
	}
	if c.Len() != 5 {
		t.Errorf("len = %d, want capacity 5", c.Len())
	}
	// Users 15..19 are the most recent; 15 must be a hit, 0 a miss.
	missesBefore := c.Stats().Misses
	c.Similar(15)
	if c.Stats().Misses != missesBefore {
		t.Error("recently used entry was evicted")
	}
	c.Similar(0)
	if c.Stats().Misses != missesBefore+1 {
		t.Error("old entry survived past capacity")
	}
}

// TestCacheStatsSnapshot covers the full Stats accessor: every insertion
// past capacity is one eviction, and Len/Capacity describe the current
// shape.
func TestCacheStatsSnapshot(t *testing.T) {
	g := testGraph(t, 30)
	c := New(g, similarity.CommonNeighbors{}, 5)
	for u := 0; u < 20; u++ {
		c.Similar(int32(u)) // 20 misses; 15 evictions once full
	}
	c.Similar(19) // one hit, no eviction
	st := c.Stats()
	want := Stats{Hits: 1, Misses: 20, Evictions: 15, Len: 5, Capacity: 5}
	if st != want {
		t.Errorf("Stats() = %+v, want %+v", st, want)
	}
	if st.Len != c.Len() {
		t.Errorf("Stats().Len = %d disagrees with Len() = %d", st.Len, c.Len())
	}
}

func TestCacheStatsEmpty(t *testing.T) {
	g := testGraph(t, 5)
	c := New(g, similarity.CommonNeighbors{}, 0) // capacity 0 selects 4096
	st := c.Stats()
	want := Stats{Capacity: 4096}
	if st != want {
		t.Errorf("Stats() = %+v, want %+v", st, want)
	}
	if st.HitRatio() != 0 {
		t.Errorf("empty HitRatio() = %v, want 0", st.HitRatio())
	}
}

func TestCacheLRUOrder(t *testing.T) {
	g := testGraph(t, 10)
	c := New(g, similarity.CommonNeighbors{}, 2)
	c.Similar(0)
	c.Similar(1)
	c.Similar(0) // refresh 0; 1 is now the LRU
	c.Similar(2) // evicts 1
	misses := c.Stats().Misses
	c.Similar(0)
	if m2 := c.Stats().Misses; m2 != misses {
		t.Error("refreshed entry was evicted instead of the LRU one")
	}
	c.Similar(1)
	if m3 := c.Stats().Misses; m3 != misses+1 {
		t.Error("LRU entry was not evicted")
	}
}

func TestCacheConcurrent(t *testing.T) {
	g := testGraph(t, 60)
	c := New(g, similarity.AdamicAdar{}, 30)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				u := int32(rng.Intn(60))
				s := c.Similar(u)
				// Touch the result to catch races on shared Scores.
				_ = s.Sum()
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 30 {
		t.Errorf("capacity exceeded: %d", c.Len())
	}
}
