// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6). Each benchmark reports the reproduced quantity (NDCG, modularity,
// correlation) via b.ReportMetric alongside the usual timing, so
//
//	go test -bench=. -benchmem
//
// prints both the performance of the implementation and the scientific
// numbers recorded in EXPERIMENTS.md. Dataset construction and clustering
// are cached across benchmarks; the timed region of each figure benchmark
// is one complete private release + evaluation.
package socialrec_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"socialrec/internal/attack"
	"socialrec/internal/community"
	"socialrec/internal/core"
	"socialrec/internal/dataset"
	"socialrec/internal/dp"
	"socialrec/internal/experiment"
	"socialrec/internal/generator"
	"socialrec/internal/mechanism"
	"socialrec/internal/metrics"
	"socialrec/internal/similarity"
)

const benchSeed = 7

// fixture bundles a dataset with its best-of-10 Louvain clustering and
// per-measure runners over a fixed evaluation sample.
type fixture struct {
	ds       *dataset.Dataset
	clusters *community.Clustering
	q        float64
	runners  map[string]*experiment.Runner
}

var (
	fixOnce  sync.Once
	fixtures map[string]*fixture
)

func getFixture(b *testing.B, name string) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		fixtures = make(map[string]*fixture)
		for _, p := range []generator.Preset{generator.LastFMLike(benchSeed), generator.FlixsterLike(benchSeed)} {
			ds, _, err := experiment.BuildDataset(p)
			if err != nil {
				panic(err)
			}
			clusters, q := experiment.ClusterSocial(ds, 10, benchSeed)
			f := &fixture{ds: ds, clusters: clusters, q: q, runners: make(map[string]*experiment.Runner)}
			fixtures[p.Name] = f
		}
	})
	f, ok := fixtures[name]
	if !ok {
		b.Fatalf("unknown fixture %q", name)
	}
	return f
}

func (f *fixture) runner(b *testing.B, m similarity.Measure) *experiment.Runner {
	b.Helper()
	if r, ok := f.runners[m.Name()]; ok {
		return r
	}
	eval := experiment.SampleUsers(f.ds.Social.NumUsers(), 200, benchSeed+1)
	r, err := experiment.NewRunner(f.ds, m, f.clusters, eval)
	if err != nil {
		b.Fatal(err)
	}
	f.runners[m.Name()] = r
	return r
}

func epsName(e dp.Epsilon) string {
	if e.IsInf() {
		return "inf"
	}
	return fmt.Sprintf("%g", float64(e))
}

// BenchmarkTable1DatasetStats regenerates Table 1: it times dataset
// synthesis + summary and reports the headline statistics as metrics.
func BenchmarkTable1DatasetStats(b *testing.B) {
	for _, preset := range []func(int64) generator.Preset{generator.LastFMLike, generator.FlixsterLike} {
		p := preset(benchSeed)
		b.Run(p.Name, func(b *testing.B) {
			var s dataset.Stats
			for i := 0; i < b.N; i++ {
				ds, _, err := experiment.BuildDataset(p)
				if err != nil {
					b.Fatal(err)
				}
				s = ds.Summarize()
			}
			b.ReportMetric(float64(s.Users), "users")
			b.ReportMetric(float64(s.SocialEdges), "social_edges")
			b.ReportMetric(s.AvgUserDegree, "avg_user_degree")
			b.ReportMetric(float64(s.PrefEdges), "pref_edges")
			b.ReportMetric(s.AvgItemDegree, "avg_item_degree")
			b.ReportMetric(s.PrefSparsity, "sparsity")
		})
	}
}

// benchmarkNDCGSweep is the engine behind the Fig. 1 and Fig. 2 benchmarks:
// one complete cluster-mechanism release + NDCG evaluation per iteration.
func benchmarkNDCGSweep(b *testing.B, fixtureName string) {
	eps := experiment.DefaultEps()
	ns := experiment.DefaultNs()
	for _, m := range similarity.All() {
		for _, e := range eps {
			b.Run(fmt.Sprintf("measure=%s/eps=%s", m.Name(), epsName(e)), func(b *testing.B) {
				f := getFixture(b, fixtureName)
				r := f.runner(b, m)
				var res *experiment.Result
				for i := 0; i < b.N; i++ {
					var err error
					res, err = r.EvaluateCluster(e, benchSeed+int64(i), ns)
					if err != nil {
						b.Fatal(err)
					}
				}
				for _, n := range ns {
					b.ReportMetric(res.Mean(n), fmt.Sprintf("ndcg@%d", n))
				}
			})
		}
	}
}

// BenchmarkFig1LastfmNDCG regenerates Fig. 1: NDCG@{10,50,100} of the
// cluster framework on the Last.fm-like dataset across the privacy sweep,
// for all four similarity measures.
func BenchmarkFig1LastfmNDCG(b *testing.B) {
	benchmarkNDCGSweep(b, "lastfm-like")
}

// BenchmarkFig2FlixsterNDCG regenerates Fig. 2 on the Flixster-like dataset.
func BenchmarkFig2FlixsterNDCG(b *testing.B) {
	benchmarkNDCGSweep(b, "flixster-like")
}

// BenchmarkFig3DegreeVsAccuracy regenerates Fig. 3: the per-user degree vs
// NDCG@50 relationship under approximation error alone (ε = ∞, CN measure),
// reporting the paper's high/low-degree split means and the rank
// correlation.
func BenchmarkFig3DegreeVsAccuracy(b *testing.B) {
	for _, name := range []string{"lastfm-like", "flixster-like"} {
		b.Run(name, func(b *testing.B) {
			f := getFixture(b, name)
			r := f.runner(b, similarity.CommonNeighbors{})
			var hi, lo, corr float64
			for i := 0; i < b.N; i++ {
				res, err := r.EvaluateCluster(dp.Inf, benchSeed, []int{50})
				if err != nil {
					b.Fatal(err)
				}
				da := experiment.DegreeAccuracy{Dataset: name}
				var hiSum, loSum float64
				var hiN, loN int
				for k, u := range r.EvalUsers {
					d := f.ds.Social.Degree(int(u))
					v := res.NDCG[50][k]
					da.Points = append(da.Points, experiment.DegreePoint{User: u, Degree: d, NDCG: v})
					if d > 10 {
						hiSum += v
						hiN++
					} else {
						loSum += v
						loN++
					}
				}
				hi, lo = hiSum/float64(hiN), loSum/float64(maxInt(loN, 1))
				corr = da.Correlation()
			}
			b.ReportMetric(hi, "ndcg_deg_gt10")
			b.ReportMetric(lo, "ndcg_deg_le10")
			b.ReportMetric(corr, "corr_logdeg_ndcg")
		})
	}
}

// BenchmarkFig4BaselineComparison regenerates Fig. 4: NDCG@50 of the
// baseline mechanisms (NOU, NOE, and the GS and LRM adaptations) against
// the paper's cluster framework, on the Last.fm-like dataset at
// ε ∈ {1.0, 0.1}.
func BenchmarkFig4BaselineComparison(b *testing.B) {
	type mech struct {
		name string
		eval func(r *experiment.Runner, e dp.Epsilon, seed int64) (*experiment.Result, error)
	}
	mechs := []mech{
		{"cluster", func(r *experiment.Runner, e dp.Epsilon, s int64) (*experiment.Result, error) {
			return r.EvaluateCluster(e, s, []int{50})
		}},
		{"noe", func(r *experiment.Runner, e dp.Epsilon, s int64) (*experiment.Result, error) {
			return r.EvaluateNOE(e, s, []int{50})
		}},
		{"gs", func(r *experiment.Runner, e dp.Epsilon, s int64) (*experiment.Result, error) {
			return r.EvaluateGS(e, s, []int{50})
		}},
		{"lrm", func(r *experiment.Runner, e dp.Epsilon, s int64) (*experiment.Result, error) {
			return r.EvaluateLRM(e, 200, s, []int{50})
		}},
		{"nou", func(r *experiment.Runner, e dp.Epsilon, s int64) (*experiment.Result, error) {
			return r.EvaluateNOU(e, s, []int{50})
		}},
	}
	for _, m := range mechs {
		for _, e := range []dp.Epsilon{1.0, 0.1} {
			b.Run(fmt.Sprintf("mech=%s/eps=%s", m.name, epsName(e)), func(b *testing.B) {
				f := getFixture(b, "lastfm-like")
				r := f.runner(b, similarity.CommonNeighbors{})
				var res *experiment.Result
				for i := 0; i < b.N; i++ {
					var err error
					res, err = m.eval(r, e, benchSeed+int64(i))
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.Mean(50), "ndcg@50")
			})
		}
	}
}

// BenchmarkClusterStats regenerates the §6.2 clustering numbers: cluster
// count, size distribution, largest-cluster share and modularity.
func BenchmarkClusterStats(b *testing.B) {
	for _, name := range []string{"lastfm-like", "flixster-like"} {
		b.Run(name, func(b *testing.B) {
			f := getFixture(b, name)
			var cl *community.Clustering
			var q float64
			for i := 0; i < b.N; i++ {
				cl, q = community.BestOf(f.ds.Social, 10, benchSeed+int64(i), community.Options{})
			}
			mean, std := cl.MeanSize()
			b.ReportMetric(float64(cl.NumClusters()), "clusters")
			b.ReportMetric(mean, "mean_size")
			b.ReportMetric(std, "std_size")
			b.ReportMetric(100*cl.LargestFraction(), "largest_pct")
			b.ReportMetric(q, "modularity")
		})
	}
}

// BenchmarkAblationClusteringStrategy isolates the paper's central design
// choice: community clustering vs a random partition of identical cluster
// count (the §5.1.2 strawman), at matched privacy cost.
func BenchmarkAblationClusteringStrategy(b *testing.B) {
	const eps = dp.Epsilon(0.1)
	f0 := generator.LastFMLike(benchSeed)
	ds, _, err := experiment.BuildDataset(f0)
	if err != nil {
		b.Fatal(err)
	}
	louvain, _ := experiment.ClusterSocial(ds, 10, benchSeed)
	random := community.Random(ds.Social.NumUsers(), louvain.NumClusters(), rand.New(rand.NewSource(benchSeed)))
	labelprop := community.LabelPropagation(ds.Social, benchSeed, 0)
	eval := experiment.SampleUsers(ds.Social.NumUsers(), 200, benchSeed+1)
	for _, c := range []struct {
		name     string
		clusters *community.Clustering
	}{{"louvain", louvain}, {"random", random}, {"labelprop", labelprop}} {
		b.Run(c.name, func(b *testing.B) {
			r, err := experiment.NewRunner(ds, similarity.CommonNeighbors{}, c.clusters, eval)
			if err != nil {
				b.Fatal(err)
			}
			var res *experiment.Result
			for i := 0; i < b.N; i++ {
				res, err = r.EvaluateCluster(eps, benchSeed+int64(i), []int{50})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Mean(50), "ndcg@50")
			b.ReportMetric(float64(c.clusters.NumClusters()), "clusters")
		})
	}
}

// BenchmarkAblationRefinement measures the contribution of the multi-level
// refinement step (§6.2 / [29]) to modularity and downstream accuracy.
func BenchmarkAblationRefinement(b *testing.B) {
	ds, _, err := experiment.BuildDataset(generator.LastFMLike(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	eval := experiment.SampleUsers(ds.Social.NumUsers(), 200, benchSeed+1)
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"refined", false}, {"unrefined", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var q float64
			var cl *community.Clustering
			for i := 0; i < b.N; i++ {
				cl, q = community.BestOf(ds.Social, 10, benchSeed, community.Options{DisableRefinement: cfg.disable})
			}
			r, err := experiment.NewRunner(ds, similarity.CommonNeighbors{}, cl, eval)
			if err != nil {
				b.Fatal(err)
			}
			res, err := r.EvaluateCluster(dp.Epsilon(0.1), benchSeed, []int{50})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(q, "modularity")
			b.ReportMetric(res.Mean(50), "ndcg@50")
		})
	}
}

// BenchmarkAblationMergeSmall measures the §7 post-processing heuristic:
// folding clusters below a size floor into their best-connected neighbor
// before the release.
func BenchmarkAblationMergeSmall(b *testing.B) {
	const eps = dp.Epsilon(0.1)
	ds, _, err := experiment.BuildDataset(generator.LastFMLike(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	louvain, _ := experiment.ClusterSocial(ds, 10, benchSeed)
	eval := experiment.SampleUsers(ds.Social.NumUsers(), 200, benchSeed+1)
	for _, minSize := range []int{1, 10, 30} {
		b.Run(fmt.Sprintf("minSize=%d", minSize), func(b *testing.B) {
			clusters, err := community.MergeSmall(ds.Social, louvain, minSize)
			if err != nil {
				b.Fatal(err)
			}
			r, err := experiment.NewRunner(ds, similarity.CommonNeighbors{}, clusters, eval)
			if err != nil {
				b.Fatal(err)
			}
			var res *experiment.Result
			for i := 0; i < b.N; i++ {
				res, err = r.EvaluateCluster(eps, benchSeed+int64(i), []int{50})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Mean(50), "ndcg@50")
			b.ReportMetric(float64(clusters.NumClusters()), "clusters")
		})
	}
}

// BenchmarkAblationKMeans measures the §5.1.2 alternative the paper
// rejects: k-means on the similarity matrix, at several guesses of k (k
// cannot be tuned privately), against Louvain's parameterless clustering.
func BenchmarkAblationKMeans(b *testing.B) {
	const eps = dp.Epsilon(0.1)
	ds, _, err := experiment.BuildDataset(generator.LastFMLike(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	eval := experiment.SampleUsers(ds.Social.NumUsers(), 200, benchSeed+1)
	for _, k := range []int{5, 25, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var res *experiment.Result
			for i := 0; i < b.N; i++ {
				clusters := community.KMeansSimilarity(ds.Social, similarity.CommonNeighbors{}, k, benchSeed, 0)
				r, err := experiment.NewRunner(ds, similarity.CommonNeighbors{}, clusters, eval)
				if err != nil {
					b.Fatal(err)
				}
				res, err = r.EvaluateCluster(eps, benchSeed+int64(i), []int{50})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Mean(50), "ndcg@50")
		})
	}
}

// BenchmarkEmpiricalPrivacy measures the §2.3 Sybil attack end to end: the
// fraction of a victim's preference edges an attacker recovers from the
// observer's recommendations, non-privately and at two privacy budgets.
func BenchmarkEmpiricalPrivacy(b *testing.B) {
	f := getFixture(b, "lastfm-like")
	m := similarity.CommonNeighbors{}
	// Pick a victim with a reasonable number of secrets.
	victim := 0
	for u := 0; u < f.ds.Social.NumUsers(); u++ {
		if f.ds.Prefs.UserDegree(u) >= 20 && f.ds.Social.Degree(u) >= 5 {
			victim = u
			break
		}
	}
	top, err := attack.Plan(f.ds.Social, victim, attack.ChainLengthFor(m))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		var hit float64
		for i := 0; i < b.N; i++ {
			hit, err = attack.RunExact(top, f.ds.Prefs, m)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(hit, "hit_rate")
	})
	for _, eps := range []dp.Epsilon{1.0, 0.1} {
		b.Run("eps="+epsName(eps), func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				hit, err = attack.RunPrivate(top, f.ds.Prefs, m, eps, 3, benchSeed+int64(i))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(hit, "hit_rate")
		})
	}
}

// BenchmarkExtensionWeighted measures the §7 weighted extension: with real
// star ratings, how much accuracy does the weighted release keep relative
// to the paper's §6.1 preprocessing (threshold then unweight), both scored
// against the weighted ground truth? The sweep exposes a crossover the
// paper's future-work section implies but never measures: weighted releases
// carry W_max× the sensitivity, so they win while noise is small (ε large)
// and lose to the thresholded unweighted release under strong privacy.
func BenchmarkExtensionWeighted(b *testing.B) {
	const n = 50
	ds, _, err := experiment.BuildDataset(generator.LastFMLike(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	rated, err := generator.AssignRatings(ds.Prefs, 5, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	clusters, _ := experiment.ClusterSocial(ds, 10, benchSeed)
	eval := experiment.SampleUsers(ds.Social.NumUsers(), 200, benchSeed+1)
	m := similarity.CommonNeighbors{}
	sims := similarity.ComputeAll(ds.Social, m, eval, 0)

	// Weighted ground truth for the evaluation users.
	truth := make([][]float64, len(eval))
	for i := range truth {
		truth[i] = make([]float64, rated.NumItems())
	}
	mechanism.NewWeightedExact(rated).Utilities(eval, sims, truth)

	score := func(est core.Estimator) float64 {
		out := make([][]float64, len(eval))
		for i := range out {
			out[i] = make([]float64, rated.NumItems())
		}
		est.Utilities(eval, sims, out)
		return metrics.MeanNDCGDense(out, truth, n)
	}

	thresholded := rated.Unweighted(2) // §6.1 preprocessing: rated >= 2 → weight 1
	for _, eps := range []dp.Epsilon{dp.Inf, 1.0, 0.1} {
		b.Run("weighted-release/eps="+epsName(eps), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				est, err := mechanism.NewWeightedCluster(clusters, rated, 5, eps, dp.SourceFor(eps, benchSeed+int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				v = score(est)
			}
			b.ReportMetric(v, "ndcg@50_vs_weighted_truth")
		})
		b.Run("thresholded-unweighted/eps="+epsName(eps), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				est, err := mechanism.NewCluster(clusters, thresholded, eps, dp.SourceFor(eps, benchSeed+int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				v = score(est)
			}
			b.ReportMetric(v, "ndcg@50_vs_weighted_truth")
		})
	}
}

// BenchmarkMetricComparison reproduces the §2.4 argument for NDCG over
// precision/recall: at moderate noise the private ranking keeps most of its
// NDCG (equal-utility substitutions are free) while set-overlap metrics
// drop much further.
func BenchmarkMetricComparison(b *testing.B) {
	f := getFixture(b, "lastfm-like")
	r := f.runner(b, similarity.CommonNeighbors{})
	for _, eps := range []dp.Epsilon{dp.Inf, 0.1} {
		b.Run("eps="+epsName(eps), func(b *testing.B) {
			var rep *experiment.MetricReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = r.EvaluateClusterAllMetrics(eps, benchSeed+int64(i), 50)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.NDCG, "ndcg@50")
			b.ReportMetric(rep.Precision, "precision@50")
			b.ReportMetric(rep.Recall, "recall@50")
		})
	}
}

// BenchmarkAblationMeasureParams sweeps the similarity-measure parameters
// the paper fixes in §6.2 (GD cutoff d, Katz damping α and cutoff k),
// quantifying how sensitive the framework is to those choices.
func BenchmarkAblationMeasureParams(b *testing.B) {
	const eps = dp.Epsilon(0.1)
	f := getFixture(b, "lastfm-like")
	eval := experiment.SampleUsers(f.ds.Social.NumUsers(), 200, benchSeed+1)
	variants := []struct {
		name string
		m    similarity.Measure
	}{
		{"GD/d=2", similarity.GraphDistance{MaxDist: 2}},
		{"GD/d=3", similarity.GraphDistance{MaxDist: 3}},
		{"KZ/k=3,a=0.05", similarity.Katz{MaxLen: 3, Alpha: 0.05}},
		{"KZ/k=3,a=0.005", similarity.Katz{MaxLen: 3, Alpha: 0.005}},
		{"KZ/k=2,a=0.05", similarity.Katz{MaxLen: 2, Alpha: 0.05}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			r, err := experiment.NewRunner(f.ds, v.m, f.clusters, eval)
			if err != nil {
				b.Fatal(err)
			}
			var res *experiment.Result
			for i := 0; i < b.N; i++ {
				res, err = r.EvaluateCluster(eps, benchSeed+int64(i), []int{50})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Mean(50), "ndcg@50")
		})
	}
}

// BenchmarkAblationBestOfRuns measures the value of the paper's best-of-10
// Louvain protocol over a single run.
func BenchmarkAblationBestOfRuns(b *testing.B) {
	ds, _, err := experiment.BuildDataset(generator.LastFMLike(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	for _, runs := range []int{1, 10} {
		b.Run(fmt.Sprintf("runs=%d", runs), func(b *testing.B) {
			var q float64
			for i := 0; i < b.N; i++ {
				_, q = community.BestOf(ds.Social, runs, benchSeed+int64(i), community.Options{})
			}
			b.ReportMetric(q, "modularity")
		})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
