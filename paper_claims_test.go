package socialrec_test

import (
	"testing"

	"socialrec/internal/dp"
	"socialrec/internal/experiment"
	"socialrec/internal/generator"
	"socialrec/internal/similarity"
)

// TestPaperClaims is the scientific regression suite: every qualitative
// claim of the paper's evaluation, asserted on the calibrated Last.fm-like
// dataset at reduced repetition. If a refactor silently breaks the
// framework's privacy/utility behaviour, this is the test that catches it.
// It takes ~15s; skipped under -short.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline regression")
	}
	ds, _, err := experiment.BuildDataset(generator.LastFMLike(7))
	if err != nil {
		t.Fatal(err)
	}
	clusters, q := experiment.ClusterSocial(ds, 5, 7)
	if q < 0.4 {
		t.Fatalf("Louvain modularity = %v, implausibly low for a community-structured graph", q)
	}
	eval := experiment.SampleUsers(ds.Social.NumUsers(), 250, 8)
	r, err := experiment.NewRunner(ds, similarity.CommonNeighbors{}, clusters, eval)
	if err != nil {
		t.Fatal(err)
	}

	score := func(res *experiment.Result, err error) float64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return res.Mean(50)
	}

	// §6.3, Fig. 1: accuracy degrades monotonically as ε shrinks, is
	// nearly unaffected at ε ≥ 0.6, and collapses at ε = 0.01.
	var byEps []float64
	for _, e := range []dp.Epsilon{dp.Inf, 1.0, 0.6, 0.1, 0.01} {
		byEps = append(byEps, score(r.EvaluateCluster(e, 9, []int{50})))
	}
	for i := 1; i < len(byEps); i++ {
		if byEps[i] > byEps[i-1]+0.03 {
			t.Errorf("NDCG must not improve as ε shrinks: %v", byEps)
		}
	}
	if byEps[0]-byEps[2] > 0.05 {
		t.Errorf("ε = 0.6 should cost little over ε = ∞: %v", byEps)
	}
	if byEps[0] < 0.9 {
		t.Errorf("approximation-only NDCG@50 = %v, want high", byEps[0])
	}
	if byEps[4] > 0.15 {
		t.Errorf("ε = 0.01 NDCG@50 = %v, want collapse on the sparse dataset", byEps[4])
	}

	// §6.3: NDCG decreases as N grows at small ε (zero-utility items
	// displace real ones deeper in the list).
	res, err := r.EvaluateCluster(dp.Epsilon(0.1), 9, []int{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean(10) <= res.Mean(100) {
		t.Errorf("NDCG@10 (%v) should exceed NDCG@100 (%v) at ε = 0.1", res.Mean(10), res.Mean(100))
	}

	// §6.4, Fig. 4: the framework beats every baseline at ε = 0.1, and
	// NOU is no better than near-random.
	const eps = dp.Epsilon(0.1)
	cluster := score(r.EvaluateCluster(eps, 9, []int{50}))
	noe := score(r.EvaluateNOE(eps, 9, []int{50}))
	nou := score(r.EvaluateNOU(eps, 9, []int{50}))
	if cluster <= noe || cluster <= nou {
		t.Errorf("cluster (%v) must beat NOE (%v) and NOU (%v) at ε = 0.1", cluster, noe, nou)
	}
	if nou > 0.1 {
		t.Errorf("NOU NDCG@50 = %v, should be near random", nou)
	}

	// Fig. 3: degree-accuracy relationship is positive under
	// approximation error alone.
	infRes, err := r.EvaluateCluster(dp.Inf, 9, []int{50})
	if err != nil {
		t.Fatal(err)
	}
	var hi, lo float64
	var hiN, loN int
	for k, u := range r.EvalUsers {
		if ds.Social.Degree(int(u)) > 10 {
			hi += infRes.NDCG[50][k]
			hiN++
		} else {
			lo += infRes.NDCG[50][k]
			loN++
		}
	}
	if hiN == 0 || loN == 0 {
		t.Fatal("degree split degenerate")
	}
	if hi/float64(hiN) <= lo/float64(loN) {
		t.Errorf("high-degree users (%v) should beat low-degree users (%v) at ε = ∞",
			hi/float64(hiN), lo/float64(loN))
	}
}
