package socialrec

import (
	"math"
	"testing"

	"socialrec/internal/dataset"
	"socialrec/internal/generator"
)

// buildSmall wires a two-community toy network through the public builder.
func buildSmall() *GraphBuilder {
	b := NewGraphBuilder(8, 6)
	// Two 4-cliques with a bridge.
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddFriendship(4*c+i, 4*c+j)
			}
		}
	}
	b.AddFriendship(3, 4)
	for _, e := range [][2]int{
		{0, 0}, {0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 2},
		{4, 3}, {4, 4}, {5, 3}, {5, 5}, {6, 4}, {6, 5},
	} {
		b.AddPreference(e[0], e[1])
	}
	return b
}

func TestEngineNonPrivateRecommends(t *testing.T) {
	e, err := NewEngine(buildSmall(), Config{Epsilon: NoPrivacy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := e.Recommend(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recs = %v", recs)
	}
	// User 3 sits in community A: its top recommendations must be the
	// community-A items 0-2, not B's 3-5. With community clustering the
	// utilities of items 0..2 dominate.
	topItems := map[int32]bool{recs[0].Item: true, recs[1].Item: true}
	for it := range topItems {
		if it > 2 {
			t.Errorf("user 3 recommended cross-community item %d; recs = %v", it, recs)
		}
	}
}

func TestEnginePrivateStillUseful(t *testing.T) {
	e, err := NewEngine(buildSmall(), Config{Epsilon: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := e.Recommend(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recs = %v", recs)
	}
}

func TestEngineDeterministicBySeed(t *testing.T) {
	mk := func() [][]Recommendation {
		e, err := NewEngine(buildSmall(), Config{Epsilon: 0.5, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.RecommendBatch([]int{0, 1, 2, 3, 4, 5, 6, 7}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := mk(), mk()
	for u := range a {
		if len(a[u]) != len(b[u]) {
			t.Fatal("same seed, different list lengths")
		}
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				t.Fatal("same seed, different recommendations")
			}
		}
	}
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := NewEngine(buildSmall(), Config{}); err == nil {
		t.Error("zero epsilon should fail loudly")
	}
	if _, err := NewEngine(buildSmall(), Config{Epsilon: -1}); err == nil {
		t.Error("negative epsilon should fail")
	}
	if _, err := NewEngine(buildSmall(), Config{Epsilon: 1, Measure: "nope"}); err == nil {
		t.Error("unknown measure should fail")
	}
}

func TestEngineBuilderErrorsAreSticky(t *testing.T) {
	b := NewGraphBuilder(2, 2)
	b.AddFriendship(0, 9) // out of range
	b.AddPreference(0, 0)
	if _, err := NewEngine(b, Config{Epsilon: 1}); err == nil {
		t.Error("builder error should surface in NewEngine")
	}
}

func TestEngineAllMeasures(t *testing.T) {
	for _, m := range []string{"CN", "GD", "AA", "KZ"} {
		e, err := NewEngine(buildSmall(), Config{Epsilon: NoPrivacy, Measure: m, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if _, err := e.Recommend(0, 2); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestEngineClusterIntrospection(t *testing.T) {
	e, err := NewEngine(buildSmall(), Config{Epsilon: NoPrivacy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumClusters() < 2 {
		t.Errorf("NumClusters = %d, want >= 2 (two cliques)", e.NumClusters())
	}
	if e.ClusterOf(0) == e.ClusterOf(4) {
		t.Error("the two cliques should be in different clusters")
	}
	if e.Modularity() <= 0 {
		t.Errorf("Modularity = %v, want > 0", e.Modularity())
	}
	if !math.IsInf(e.Epsilon(), 1) {
		t.Errorf("Epsilon = %v", e.Epsilon())
	}
}

func TestEngineFromGeneratedGraphs(t *testing.T) {
	social, _, prefs, err := generator.TinyTest(9).Generate()
	if err != nil {
		t.Fatal(err)
	}
	ds := &dataset.Dataset{Name: "t", Social: social, Prefs: prefs}
	e, err := NewEngineFromGraphs(ds.Social, ds.Prefs, Config{Epsilon: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lists, err := e.RecommendBatch([]int{0, 1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lists {
		if len(l) != 10 {
			t.Fatalf("list length = %d, want 10", len(l))
		}
		for i := 1; i < len(l); i++ {
			if l[i].Utility > l[i-1].Utility {
				t.Fatal("list not sorted by utility")
			}
		}
	}
}

func TestEngineSimilarityCacheEquivalence(t *testing.T) {
	e1, err := NewEngine(buildSmall(), Config{Epsilon: 0.5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(buildSmall(), Config{Epsilon: 0.5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	e2.EnableSimilarityCache(16)
	users := []int{0, 1, 2, 3, 0, 1} // repeats exercise cache hits
	a, err := e1.RecommendBatch(users, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.RecommendBatch(users, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		for i := range a[k] {
			if a[k][i] != b[k][i] {
				t.Fatal("cached engine disagrees with uncached engine")
			}
		}
	}
}

func TestEngineClustererOptions(t *testing.T) {
	for _, alg := range []string{"louvain", "labelprop", "cnm", ""} {
		e, err := NewEngine(buildSmall(), Config{Epsilon: NoPrivacy, Clusterer: alg, Seed: 2})
		if err != nil {
			t.Fatalf("%q: %v", alg, err)
		}
		// Every clusterer must separate the two cliques.
		if e.ClusterOf(0) == e.ClusterOf(4) {
			t.Errorf("%q: the two cliques share a cluster", alg)
		}
		if _, err := e.Recommend(0, 2); err != nil {
			t.Fatalf("%q: %v", alg, err)
		}
	}
	if _, err := NewEngine(buildSmall(), Config{Epsilon: 1, Clusterer: "bogus"}); err == nil {
		t.Error("unknown clusterer should fail")
	}
}

func TestEngineMinClusterSize(t *testing.T) {
	// A pendant pair next to the two cliques forms a tiny cluster that
	// MinClusterSize folds away.
	b := NewGraphBuilder(10, 6)
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddFriendship(4*c+i, 4*c+j)
			}
		}
	}
	b.AddFriendship(3, 4)
	b.AddFriendship(0, 8)
	b.AddFriendship(8, 9)
	b.AddPreference(1, 0)
	b.AddPreference(5, 3)
	small, err := NewEngine(b, Config{Epsilon: NoPrivacy, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b2 := NewGraphBuilder(10, 6)
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b2.AddFriendship(4*c+i, 4*c+j)
			}
		}
	}
	b2.AddFriendship(3, 4)
	b2.AddFriendship(0, 8)
	b2.AddFriendship(8, 9)
	b2.AddPreference(1, 0)
	b2.AddPreference(5, 3)
	merged, err := NewEngine(b2, Config{Epsilon: NoPrivacy, Seed: 2, MinClusterSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumClusters() >= small.NumClusters() {
		t.Errorf("MinClusterSize did not reduce clusters: %d vs %d",
			merged.NumClusters(), small.NumClusters())
	}
}

func TestEngineDimensions(t *testing.T) {
	e, err := NewEngine(buildSmall(), Config{Epsilon: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumUsers() != 8 || e.NumItems() != 6 {
		t.Errorf("dims = (%d, %d), want (8, 6)", e.NumUsers(), e.NumItems())
	}
}
