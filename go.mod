module socialrec

go 1.22
