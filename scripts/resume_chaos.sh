#!/usr/bin/env bash
# resume_chaos.sh — crash/resume matrix for the checkpointed offline
# pipeline.
#
# Two layers:
#   1. Race-enabled test sweeps that kill the pipeline at every filesystem
#      fault-injection point (and on panics/timeouts mid-stage) and prove
#      the resumed run converges to the byte-identical release with each
#      ε-spend journaled exactly once.
#   2. A CLI-level drill through cmd/experiments: arm a fault, watch the
#      run die mid-persist, resume, and assert the persisted release and
#      the durable ε ledger came out right — twice, so the second resume
#      also proves byte-identical idempotence (the release store refuses
#      to append a duplicate version).
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "fault-point sweep + crash/resume suites (-race)"
go test -race -run 'TestFaultPointSweep|TestStagePanicMidRunThenResume|TestStageTimeoutThenResume|TestOpenStoreSweepsTempDebris|TestSpendPersistedExactlyOnce' ./internal/pipeline
go test -race -run 'TestPipelineCrashMidPersistThenResume|TestPipelineResumeAndPersistIdempotent' ./internal/experiment
go test -race -run 'TestManagerRestartCannotRespend|TestManagerCrashDuringJournalWrite|TestJournal' ./internal/dynamic
go test -race -run 'TestWriteAtomic' ./internal/faults

step "CLI crash/resume drill (cmd/experiments -exp release)"
ckpt=$(mktemp -d)
reldir=$(mktemp -d)
cleanup() { rm -rf "$ckpt" "$reldir"; }
trap cleanup EXIT

args=(-exp release -preset tiny -sample 30 -runs 3 -seed 7
      -checkpoint-dir "$ckpt" -release-dir "$reldir")

echo "-- killing the run at fs.rename occurrence 6 --"
if go run ./cmd/experiments "${args[@]}" -faults fs.rename -fault-after 5 >/dev/null 2>&1; then
    echo "crash drill: the fault-armed run should have failed" >&2
    exit 1
fi

echo "-- resuming --"
out=$(go run ./cmd/experiments "${args[@]}")
echo "$out" | grep -q 'persisted as version 1 ' || {
    echo "resume did not persist version 1:" >&2; echo "$out" >&2; exit 1; }
echo "$out" | grep -q 'durable ε ledger: 1 record(s), Σε=0.5' || {
    echo "resume did not journal ε exactly once:" >&2; echo "$out" >&2; exit 1; }

echo "-- resuming again (idempotence: release must be byte-identical) --"
out2=$(go run ./cmd/experiments "${args[@]}")
echo "$out2" | grep -q 'persisted as version 1 ' || {
    echo "second resume appended a new version (release not byte-identical):" >&2
    echo "$out2" >&2; exit 1; }
echo "$out2" | grep -q 'stages: 0 run, ' || {
    echo "second resume re-ran stages instead of resuming:" >&2; echo "$out2" >&2; exit 1; }
echo "$out2" | grep -q 'durable ε ledger: 1 record(s), Σε=0.5' || {
    echo "second resume double-journaled ε:" >&2; echo "$out2" >&2; exit 1; }

printf '\nresume-chaos: all drills passed\n'
