#!/usr/bin/env bash
# router_chaos.sh — chaos-backed load story for the sharded serving tier.
#
# Builds a 3-shard release from a synthetic dataset, serves it as one
# router (cmd/recrouter) over three shard processes (cmd/recserve -shard),
# and drives open-loop Zipf load (cmd/loadgen) through four acts:
#
#   1. Baseline: all shards up — error rate must stay under 1%, and the
#      achieved throughput is recorded as the tier's capacity number.
#   2. SIGKILL one shard under load: the router must keep answering —
#      bounded error rate (only the dead shard's users fail), batch
#      responses labeled degraded (silent truncation always fails the
#      run), and the dead replica's circuit breaker observed OPEN in the
#      router's own telemetry.
#   3. Restart the shard: the breaker must close again and readiness
#      recover.
#   4. Recovered load: error rate back under the baseline bound.
#
# The fleet collector (cmd/socmon) watches the whole drill: it scrapes
# the router and all three shards, and the script asserts the collector's
# side of the story — the replica-down alert for the killed shard fires,
# the fleet view degrades with an explicit "stale" label instead of
# erroring, and the alert clears again after the restart.
#
# Everything runs on localhost with fixed seeds; `make router-chaos` is
# the entry point, and ci.sh runs it as the router chaos smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

PORT_ROUTER=19080
PORT_SHARD0=19081
PORT_SHARD1=19082
PORT_SHARD2=19083
PORT_SOCMON=19084
ROUTER_URL="http://127.0.0.1:${PORT_ROUTER}"
SOCMON_URL="http://127.0.0.1:${PORT_SOCMON}"

tmp=$(mktemp -d)
declare -a pids=()
shard1_pid=""
cleanup() {
    for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
    [[ -n "$shard1_pid" ]] && kill "$shard1_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

# wait_http <url> <attempts> — poll until the URL answers 200.
wait_http() {
    local url=$1 attempts=$2 i
    for ((i = 0; i < attempts; i++)); do
        if curl -fsS -o /dev/null "$url" 2>/dev/null; then return 0; fi
        sleep 0.2
    done
    echo "timed out waiting for $url" >&2
    return 1
}

# metric_line <regex> — grep the router's prometheus-format metrics.
metric_line() {
    curl -fsS "${ROUTER_URL}/metrics?format=prometheus" 2>/dev/null | grep -E "$1" || true
}

# alert_state <rule> — the collector's state for one alert rule.
alert_state() {
    curl -fsS "${SOCMON_URL}/fleet/alerts" 2>/dev/null |
        grep -A3 "\"name\": \"$1\"" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p'
}

# target_health <name> — the collector's health label for one target.
target_health() {
    curl -fsS "${SOCMON_URL}/fleet/metrics" 2>/dev/null |
        grep -A2 "\"target\": \"$1\"" | sed -n 's/.*"health": "\([a-z]*\)".*/\1/p' | head -1
}

# wait_alert <rule> <state> <attempts> — poll until the rule reaches state.
wait_alert() {
    local rule=$1 want=$2 attempts=$3 i
    for ((i = 0; i < attempts; i++)); do
        if [[ "$(alert_state "$rule")" == "$want" ]]; then return 0; fi
        sleep 0.2
    done
    echo "alert $rule never reached state $want:" >&2
    curl -fsS "${SOCMON_URL}/fleet/alerts" >&2 || true
    return 1
}

step "building binaries"
mkdir -p "$tmp/bin"
go build -o "$tmp/bin/" ./cmd/datagen ./cmd/recserve ./cmd/recrouter ./cmd/loadgen ./cmd/socmon

step "generating dataset and splitting a 3-shard release"
"$tmp/bin/datagen" -preset tiny -seed 7 -out "$tmp/data"
store="$tmp/store"
# The builder persists the release + sharded generation, then serves; we
# only need the artifacts, so terminate it once the manifest is durable.
"$tmp/bin/recserve" -social "$tmp/data/social.tsv" -prefs "$tmp/data/preferences.tsv" \
    -epsilon 0.5 -seed 7 -release-dir "$store" -shards 3 -addr 127.0.0.1:19099 \
    >"$tmp/build.log" 2>&1 &
builder=$!
for ((i = 0; i < 150; i++)); do
    compgen -G "$store/manifest-*.socman" >/dev/null && break
    sleep 0.2
done
compgen -G "$store/manifest-*.socman" >/dev/null || {
    echo "builder never persisted a sharded manifest" >&2
    cat "$tmp/build.log" >&2
    exit 1
}
kill "$builder" 2>/dev/null || true
wait "$builder" 2>/dev/null || true

start_shard() { # start_shard <id> <port> <logfile>
    "$tmp/bin/recserve" -social "$tmp/data/social.tsv" -release-dir "$store" \
        -shard "$1" -addr "127.0.0.1:$2" >"$3" 2>&1 &
}

step "starting 3 shard servers + router"
start_shard 0 "$PORT_SHARD0" "$tmp/shard0.log"; pids+=($!)
start_shard 1 "$PORT_SHARD1" "$tmp/shard1.log"; shard1_pid=$!
start_shard 2 "$PORT_SHARD2" "$tmp/shard2.log"; pids+=($!)
wait_http "http://127.0.0.1:${PORT_SHARD0}/readyz" 100
wait_http "http://127.0.0.1:${PORT_SHARD1}/readyz" 100
wait_http "http://127.0.0.1:${PORT_SHARD2}/readyz" 100

"$tmp/bin/recrouter" -social "$tmp/data/social.tsv" -store "$store" \
    -shard "http://127.0.0.1:${PORT_SHARD0}" \
    -shard "http://127.0.0.1:${PORT_SHARD1}" \
    -shard "http://127.0.0.1:${PORT_SHARD2}" \
    -addr "127.0.0.1:${PORT_ROUTER}" \
    -probe-interval 500ms -breaker-open-for 1s -retry-backoff 5ms \
    >"$tmp/router.log" 2>&1 &
pids+=($!)
wait_http "${ROUTER_URL}/readyz" 100

step "starting fleet collector (socmon)"
"$tmp/bin/socmon" -addr "127.0.0.1:${PORT_SOCMON}" \
    -target "router=router=${ROUTER_URL}" \
    -target "shard_0=shard=http://127.0.0.1:${PORT_SHARD0}" \
    -target "shard_1=shard=http://127.0.0.1:${PORT_SHARD1}" \
    -target "shard_2=shard=http://127.0.0.1:${PORT_SHARD2}" \
    -scrape-interval 300ms -scrape-timeout 500ms \
    -replica-down-after 2 -clear-after 2 \
    >"$tmp/socmon.log" 2>&1 &
pids+=($!)
wait_http "${SOCMON_URL}/readyz" 100
[[ "$(target_health shard_1)" == "ok" ]] || {
    echo "collector does not see shard 1 healthy at baseline:" >&2
    curl -fsS "${SOCMON_URL}/fleet/metrics" >&2 || true
    exit 1
}

step "act 1: baseline load (capacity number)"
"$tmp/bin/loadgen" -url "$ROUTER_URL" -rps 120 -duration 5s -zipf 1.1 \
    -batch 0.2 -batch-size 8 -seed 1 \
    -max-error-rate 0.01 -min-rate 0.9 | tee "$tmp/baseline.json"
capacity=$(sed -n 's/.*"achieved_rps": \([0-9.]*\).*/\1/p' "$tmp/baseline.json")
p99=$(sed -n 's/.*"p99_ms": \([0-9.]*\).*/\1/p' "$tmp/baseline.json")
echo "capacity: ${capacity} req/s at p99 ${p99} ms with 3 shards healthy"

step "act 2: SIGKILL shard 1 under load"
kill -9 "$shard1_pid"
wait "$shard1_pid" 2>/dev/null || true
shard1_pid=""
# The router must keep answering: bounded error rate (shard 1's share of
# the Zipf stream fails; the rest must not), degraded batches labeled
# (loadgen exits non-zero on any silent truncation), completions ongoing.
"$tmp/bin/loadgen" -url "$ROUTER_URL" -rps 120 -duration 5s -zipf 1.1 \
    -batch 0.2 -batch-size 8 -seed 2 \
    -max-error-rate 0.60 -min-rate 0.35 | tee "$tmp/killed.json"
grep -q '"degraded_responses": 0,' "$tmp/killed.json" && {
    echo "no batch response was labeled degraded with a shard dead" >&2
    exit 1
}

step "act 2b: breaker observed open in router telemetry"
if ! metric_line 'router_breaker_state_s1_r0 [12]' | grep -q .; then
    # The breaker may already be probing; opens_total proves it tripped.
    if ! metric_line 'router_breaker_opens_total\{shard="s1"\} [1-9]' | grep -q .; then
        echo "shard 1's breaker never opened in router telemetry:" >&2
        metric_line 'router_breaker' >&2
        exit 1
    fi
fi
echo "ok: breaker tripped for shard 1"

step "act 2c: collector pages and degrades explicitly"
# The replica-down alert must fire for the killed shard...
wait_alert replica_down_shard_1 firing 50
# ...the fleet view must keep answering with the dead shard labeled
# stale (last-good data still contributing), not turn into an error page...
health=$(target_health shard_1)
[[ "$health" == "stale" ]] || {
    echo "killed shard not labeled stale in the fleet view (got '$health'):" >&2
    curl -fsS "${SOCMON_URL}/fleet/metrics" >&2 || true
    exit 1
}
# ...and the surviving targets stay fresh.
[[ "$(target_health shard_0)" == "ok" && "$(target_health router)" == "ok" ]] || {
    echo "healthy targets mislabeled while shard 1 is down" >&2
    exit 1
}
echo "ok: replica_down_shard_1 firing, shard_1 stale, fleet view still serving"

step "act 3: restart shard 1, breaker must re-close"
start_shard 1 "$PORT_SHARD1" "$tmp/shard1b.log"
pids+=($!)
wait_http "http://127.0.0.1:${PORT_SHARD1}/readyz" 100
# Traffic drives the half-open probe; then the breaker must read closed.
"$tmp/bin/loadgen" -url "$ROUTER_URL" -rps 60 -duration 3s -zipf 1.1 -seed 3 \
    -quiet >/dev/null || true
recovered=false
for ((i = 0; i < 50; i++)); do
    if metric_line 'router_breaker_state_s1_r0 0' | grep -q . &&
        curl -fsS -o /dev/null "${ROUTER_URL}/readyz" 2>/dev/null; then
        recovered=true
        break
    fi
    # Cycle users so some requests land on shard 1 and drive its
    # half-open probe (tokens are numeric in the generated dataset).
    curl -fsS -o /dev/null "${ROUTER_URL}/recommend?user=$((i % 40))&n=5" 2>/dev/null || true
    sleep 0.2
done
if [[ "$recovered" != true ]]; then
    echo "breaker for shard 1 never re-closed after restart:" >&2
    metric_line 'router_breaker' >&2
    exit 1
fi
echo "ok: breaker closed and router ready again"

step "act 3b: collector un-pages after the restart"
wait_alert replica_down_shard_1 ok 50
[[ "$(target_health shard_1)" == "ok" ]] || {
    echo "restarted shard still not healthy in the fleet view" >&2
    exit 1
}
echo "ok: replica_down_shard_1 cleared, shard_1 healthy again"

step "act 4: recovered load"
"$tmp/bin/loadgen" -url "$ROUTER_URL" -rps 120 -duration 5s -zipf 1.1 \
    -batch 0.2 -batch-size 8 -seed 4 \
    -max-error-rate 0.01 -min-rate 0.9 >"$tmp/recovered.json"

printf '\nrouter-chaos: all acts passed (capacity %s req/s, p99 %s ms)\n' "$capacity" "$p99"
