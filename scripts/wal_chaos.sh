#!/usr/bin/env bash
# wal_chaos.sh — crash/recovery matrix for the streaming update path:
# durable mutation WAL, incremental re-release, exactly-once ε accounting.
#
# Two layers:
#   1. Race-enabled test sweeps: WAL recovery edges (torn tails truncated,
#      interior corruption quarantined — never silently skipped), and the
#      updater publish fault sweep, which kills the publish at every
#      filesystem fault point and proves the reopened updater converges to
#      the byte-identical store with Σε spent exactly once.
#   2. A CLI drill through cmd/experiments -exp stream: a reference run
#      builds the expected final store; then, per fault point, a fresh
#      directory's run is killed mid-stream and the resumed run must
#      converge to the byte-identical store digest, the same Σε, and zero
#      quarantined-record loss.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "WAL recovery + updater fault sweeps (-race)"
go test -race ./internal/wal
go test -race -run 'TestUpdater' ./internal/dynamic
go test -race -run 'TestDeltaRows|TestDelta|TestStoreDeltaChain' ./internal/mechanism ./internal/release
go test -race -run 'TestHotApplyDeltaAndRollback|TestReadyzReportsDeltaLineage' ./internal/server
go test -race -run 'TestReloadFromStore' ./cmd/recserve

step "CLI crash/resume drill (cmd/experiments -exp stream)"
ref=$(mktemp -d)
work=$(mktemp -d)
cleanup() { rm -rf "$ref" "$work"; }
trap cleanup EXIT

args=(-exp stream -runs 4 -stream-batches 8 -seed 7)

echo "-- reference run (clean, no faults) --"
go run ./cmd/experiments "${args[@]}" -stream-dir "$ref" | grep '^stream:' > "$ref/expected.txt"
cat "$ref/expected.txt"
grep -q 'quarantine files=0' "$ref/expected.txt" || {
    echo "reference run quarantined records" >&2; exit 1; }

# Each entry is point:after — where the armed fault fires. Together they
# kill the drill while journaling intent, while writing WAL records, and
# while making them durable.
for drill in fs.rename:2 fs.write:10 fs.sync:6; do
    point=${drill%%:*}; after=${drill##*:}
    dir="$work/$point-$after"
    mkdir -p "$dir"
    echo "-- killing the stream at $point occurrence $((after + 1)) --"
    if go run ./cmd/experiments "${args[@]}" -stream-dir "$dir" \
        -faults "$point" -fault-after "$after" >/dev/null 2>&1; then
        echo "wal-chaos: the fault-armed run should have failed ($drill)" >&2
        exit 1
    fi
    echo "-- resuming --"
    go run ./cmd/experiments "${args[@]}" -stream-dir "$dir" | grep '^stream:' > "$dir/got.txt"
    if ! diff "$ref/expected.txt" "$dir/got.txt"; then
        echo "wal-chaos: resumed run diverged from the reference ($drill)" >&2
        exit 1
    fi
    echo "converged: byte-identical store, Σε exactly once, no quarantined loss"
done

printf '\nwal-chaos: all drills passed\n'
