// Command benchdiff converts `go test -bench` text output into a stable
// JSON baseline and compares two such baselines, failing when a benchmark's
// ns/op regressed beyond a threshold. It exists so `make bench` can record
// a checked-in baseline (BENCH_PR2.json) and CI or a reviewer can ask "did
// this change make serving slower?" with one command, no external tooling.
//
// Usage:
//
//	go run ./scripts -parse bench.txt -out BENCH.json
//	go run ./scripts -old BENCH_PR2.json -new /tmp/bench_new.json [-threshold 10]
//
// Parsing keeps the MINIMUM ns/op across `-count` repetitions of each
// benchmark: minimum is the standard noise-robust statistic for
// wall-clock microbenchmarks (noise is strictly additive).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded performance.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Baseline is the file format: benchmark results keyed by
// "<package>.<BenchmarkName>".
type Baseline struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		parsePath = flag.String("parse", "", "go test -bench output to convert to JSON")
		outPath   = flag.String("out", "", "with -parse: where to write the JSON baseline (default stdout)")
		oldPath   = flag.String("old", "", "baseline JSON to compare against")
		newPath   = flag.String("new", "", "candidate JSON to compare")
		threshold = flag.Float64("threshold", 10, "max allowed ns/op regression, percent")
	)
	flag.Parse()

	switch {
	case *parsePath != "":
		if err := runParse(*parsePath, *outPath); err != nil {
			fatalf("%v", err)
		}
	case *oldPath != "" && *newPath != "":
		regressed, err := runDiff(*oldPath, *newPath, *threshold)
		if err != nil {
			fatalf("%v", err)
		}
		if regressed {
			os.Exit(1)
		}
	default:
		fatalf("need either -parse FILE or -old FILE -new FILE")
	}
}

func runParse(path, outPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	b, err := parseBench(f)
	if err != nil {
		return err
	}
	if len(b.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", path)
	}
	enc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(outPath, enc, 0o644)
}

// parseBench reads `go test -bench` text output. Lines look like:
//
//	pkg: socialrec/internal/server
//	BenchmarkRecommendHandler   31236   36505 ns/op   13363 B/op   176 allocs/op
func parseBench(f *os.File) (*Baseline, error) {
	b := &Baseline{Benchmarks: map[string]Result{}}
	pkg := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then unit pairs: <value> <unit> ...
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -<GOMAXPROCS> suffix go test appends (Benchmark-8).
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
				seen = true
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		if !seen {
			continue
		}
		key := name
		if pkg != "" {
			key = pkg + "." + name
		}
		if prev, ok := b.Benchmarks[key]; ok && prev.NsPerOp < r.NsPerOp {
			// Keep the fastest repetition.
			continue
		}
		b.Benchmarks[key] = r
	}
	return b, sc.Err()
}

func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &Baseline{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return b, nil
}

func runDiff(oldPath, newPath string, threshold float64) (regressed bool, err error) {
	oldB, err := readBaseline(oldPath)
	if err != nil {
		return false, err
	}
	newB, err := readBaseline(newPath)
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(oldB.Benchmarks))
	for name := range oldB.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-55s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o := oldB.Benchmarks[name]
		n, ok := newB.Benchmarks[name]
		if !ok {
			fmt.Printf("%-55s %12.0f %12s %8s\n", name, o.NsPerOp, "-", "gone")
			continue
		}
		if o.NsPerOp <= 0 {
			continue
		}
		pct := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		mark := ""
		if pct > threshold {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Printf("%-55s %12.0f %12.0f %+7.1f%%%s\n", name, o.NsPerOp, n.NsPerOp, pct, mark)
	}
	for name := range newB.Benchmarks {
		if _, ok := oldB.Benchmarks[name]; !ok {
			fmt.Printf("%-55s %12s %12.0f %8s\n", name, "-", newB.Benchmarks[name].NsPerOp, "new")
		}
	}
	if regressed {
		fmt.Printf("FAIL: at least one benchmark regressed more than %.0f%%\n", threshold)
	}
	return regressed, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
