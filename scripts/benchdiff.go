// Command benchdiff converts `go test -bench` text output into a stable
// JSON baseline and compares two such baselines as a two-axis budget gate:
//
//   - ns/op is a ratio threshold: regression beyond -threshold percent
//     fails. Wall-clock is noisy, so a tolerance band is the honest gate.
//   - allocs/op is a hard per-benchmark ceiling: ANY growth over the
//     baseline fails, regardless of ns/op. Allocation counts are
//     deterministic (no noise to tolerate), and the zero-allocation
//     serving path regresses one alloc at a time — a percentage gate
//     would wave every one of them through.
//
// It exists so `make bench` can record a checked-in baseline
// (BENCH_PR7.json) and CI or a reviewer can ask "did this change make
// serving slower or allocate more?" with one command, no external tooling.
//
// Usage:
//
//	go run ./scripts -parse bench.txt -out BENCH.json
//	go run ./scripts -old BENCH_PR7.json -new /tmp/bench_new.json [-threshold 10]
//
// Parsing keeps the MINIMUM of each metric independently across `-count`
// repetitions of a benchmark: minimum is the standard noise-robust
// statistic for wall-clock microbenchmarks (noise is strictly additive),
// and taking it per metric keeps a rep that was fast but happened to
// allocate (pool cold start) from polluting the alloc floor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded performance.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Baseline is the file format: benchmark results keyed by
// "<package>.<BenchmarkName>".
type Baseline struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		parsePath = flag.String("parse", "", "go test -bench output to convert to JSON")
		outPath   = flag.String("out", "", "with -parse: where to write the JSON baseline (default stdout)")
		oldPath   = flag.String("old", "", "baseline JSON to compare against")
		newPath   = flag.String("new", "", "candidate JSON to compare")
		threshold = flag.Float64("threshold", 10, "max allowed ns/op regression, percent")
	)
	flag.Parse()

	switch {
	case *parsePath != "":
		if err := runParse(*parsePath, *outPath); err != nil {
			fatalf("%v", err)
		}
	case *oldPath != "" && *newPath != "":
		regressed, err := runDiff(*oldPath, *newPath, *threshold)
		if err != nil {
			fatalf("%v", err)
		}
		if regressed {
			os.Exit(1)
		}
	default:
		fatalf("need either -parse FILE or -old FILE -new FILE")
	}
}

func runParse(path, outPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	b, err := parseBench(f)
	if err != nil {
		return err
	}
	if len(b.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", path)
	}
	enc, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(outPath, enc, 0o644)
}

// parseBench reads `go test -bench` text output. Lines look like:
//
//	pkg: socialrec/internal/server
//	BenchmarkRecommendHandler   31236   36505 ns/op   13363 B/op   176 allocs/op
func parseBench(f *os.File) (*Baseline, error) {
	b := &Baseline{Benchmarks: map[string]Result{}}
	pkg := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then unit pairs: <value> <unit> ...
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -<GOMAXPROCS> suffix go test appends (Benchmark-8).
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
				seen = true
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		if !seen {
			continue
		}
		key := name
		if pkg != "" {
			key = pkg + "." + name
		}
		if prev, ok := b.Benchmarks[key]; ok {
			// Per-metric minimum across repetitions (see package doc).
			r.NsPerOp = min(r.NsPerOp, prev.NsPerOp)
			r.BytesPerOp = min(r.BytesPerOp, prev.BytesPerOp)
			r.AllocsPerOp = min(r.AllocsPerOp, prev.AllocsPerOp)
		}
		b.Benchmarks[key] = r
	}
	return b, sc.Err()
}

func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &Baseline{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return b, nil
}

func runDiff(oldPath, newPath string, threshold float64) (regressed bool, err error) {
	oldB, err := readBaseline(oldPath)
	if err != nil {
		return false, err
	}
	newB, err := readBaseline(newPath)
	if err != nil {
		return false, err
	}
	names := make([]string, 0, len(oldB.Benchmarks))
	for name := range oldB.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	nsFail, allocFail := false, false
	fmt.Printf("%-55s %11s %11s %8s %10s %10s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	for _, name := range names {
		o := oldB.Benchmarks[name]
		n, ok := newB.Benchmarks[name]
		if !ok {
			fmt.Printf("%-55s %11.0f %11s %8s\n", name, o.NsPerOp, "-", "gone")
			continue
		}
		if o.NsPerOp <= 0 {
			continue
		}
		pct := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		mark := ""
		if pct > threshold {
			mark += "  REGRESSION(ns/op)"
			nsFail = true
		}
		// Hard ceiling: allocation counts are deterministic, so any growth
		// is a real regression — no tolerance band.
		if n.AllocsPerOp > o.AllocsPerOp {
			mark += "  REGRESSION(allocs/op)"
			allocFail = true
		}
		fmt.Printf("%-55s %11.0f %11.0f %+7.1f%% %10.0f %10.0f%s\n",
			name, o.NsPerOp, n.NsPerOp, pct, o.AllocsPerOp, n.AllocsPerOp, mark)
	}
	for name := range newB.Benchmarks {
		if _, ok := oldB.Benchmarks[name]; !ok {
			fmt.Printf("%-55s %11s %11.0f %8s\n", name, "-", newB.Benchmarks[name].NsPerOp, "new")
		}
	}
	if nsFail {
		fmt.Printf("FAIL: at least one benchmark regressed more than %.0f%% ns/op\n", threshold)
	}
	if allocFail {
		fmt.Printf("FAIL: at least one benchmark grew allocs/op over its baseline ceiling\n")
	}
	return nsFail || allocFail, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
