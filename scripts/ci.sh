#!/usr/bin/env bash
# ci.sh — the repository's standing correctness gate.
#
# Runs, in order: formatting check, go vet, build, race-enabled tests, the
# sociolint privacy-invariant analyzers, the deterministic fault-injection
# suite (crash-safe store recovery, reload degradation, panic containment,
# load shedding — under -race), the crash/resume matrix for the
# checkpointed offline pipeline and the budget journal (scripts/
# resume_chaos.sh), the crash/recovery matrix for the streaming update
# path (scripts/wal_chaos.sh), the router chaos smoke for the sharded
# serving tier (scripts/router_chaos.sh), and a short fuzz smoke over the dataset and
# release parsers. Every step must pass; the first failure aborts with a non-zero
# exit. `make ci` is the one-command entry point, locally and in any future
# pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "gofmt (check only)"
# testdata fixtures are excluded: they are analyzer inputs, not sources.
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "ok"

step "go vet"
go vet ./...

step "go build"
go build ./...

step "go test -race"
go test -race ./...

step "sociolint (privacy invariants, flow-sensitive; stale baseline entries fail)"
# Hard gate: any finding not justified in .sociolint-baseline.json or by an
# inline //sociolint:ignore fails CI, and so does a baseline entry that no
# longer matches anything (-check-stale), so suppressions can only shrink
# truthfully.
go run ./cmd/sociolint -baseline .sociolint-baseline.json -check-stale -v ./...

step "fault injection (crash safety, reload degradation, panic containment, shedding)"
# The full ./... -race run above already includes these; re-running the
# failure-path suites by name keeps them un-skippable and makes this gate's
# coverage explicit even if package lists change.
go test -race ./internal/faults
go test -race -run 'TestStore|TestReadCorruptCorpus' ./internal/release
go test -race -run 'TestHot|TestFailedReload|TestReload|TestPanicRecovery|TestChaos|TestLimiterSheds|TestDeadline' ./internal/server
go test -race -run 'TestManagerConcurrentPublishBudget' ./internal/dynamic

step "crash/resume matrix (checkpointed pipeline, budget journal)"
./scripts/resume_chaos.sh

step "wal chaos (streaming updates: crash anywhere, converge byte-identically)"
# Kills the WAL-driven streaming update path at filesystem fault points
# (journal rename, record write, sync) and asserts each resumed run
# converges to the byte-identical release store with Σε spent exactly
# once and zero quarantined-record loss.
./scripts/wal_chaos.sh

step "router chaos smoke (3 shards + router + loadgen, SIGKILL one shard)"
# Kills one of three shard servers under open-loop Zipf load and asserts
# the router keeps answering: bounded error rate, batch partials labeled
# degraded (silent truncation fails), breaker opens then re-closes after
# the shard restarts, and the capacity number lands in the CI log.
./scripts/router_chaos.sh

step "benchmark budget gate (ns/op >50% or ANY allocs/op growth vs BENCH_PR7.json fails)"
# Two quick passes against the recorded baseline. The ns/op threshold is
# deliberately generous — CI machines are noisy; that axis exists to catch
# order-of-magnitude mistakes (an accidental always-on sampler, a lock on
# the span hot path), not single-digit drift. allocs/op is the sharp axis:
# allocation counts are machine-independent, so the gate fails on any
# growth over the baseline even when ns/op is within threshold. `make
# benchdiff` with the defaults is the precise local check.
make benchdiff BENCH_COUNT=2 BENCH_THRESHOLD=50

step "fuzz smoke (10s per target)"
go test -run='^$' -fuzz='^FuzzReadSocialTSV$' -fuzztime=10s ./internal/dataset
go test -run='^$' -fuzz='^FuzzReadPreferenceTSV$' -fuzztime=10s ./internal/dataset
go test -run='^$' -fuzz='^FuzzRead$' -fuzztime=10s ./internal/release

printf '\nci: all gates passed\n'
